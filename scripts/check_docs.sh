#!/usr/bin/env bash
# Docs tree guard (run locally or as the CI `docs` job):
#
#   1. Every relative markdown link in docs/*.md and README.md must
#      resolve to an existing file (anchors stripped; http(s) links
#      ignored).
#   2. Every public header under include/leaplist/ (including the
#      net/ and store/ subtrees) must be referenced from
#      docs/architecture.md — new headers ship with documentation or
#      this check fails the build.
#
#   scripts/check_docs.sh [repo-root]     (default: the script's parent)
set -euo pipefail

ROOT="${1:-"$(cd "$(dirname "$0")/.." && pwd)"}"
fail=0

# --- 1. relative links resolve --------------------------------------
for md in "$ROOT"/docs/*.md "$ROOT/README.md"; do
  [[ -f "$md" ]] || continue
  dir="$(dirname "$md")"
  # Markdown inline links: capture the (...) target of [...](...).
  while IFS= read -r target; do
    [[ -z "$target" ]] && continue
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path="${target%%#*}"
    [[ -z "$path" ]] && continue
    if [[ ! -e "$dir/$path" && ! -e "$ROOT/$path" ]]; then
      echo "check_docs: broken link in ${md#"$ROOT"/}: $target" >&2
      fail=1
    fi
  # Strip fenced blocks (``` at any indent) and inline code spans
  # before extracting links, so C++ lambdas like `[&](Key k)` in code
  # never parse as markdown link targets.
  done < <(awk '/^[[:space:]]*```/ { fenced = !fenced; next } !fenced' "$md" \
             | sed 's/`[^`]*`//g' \
             | grep -oE '\]\([^)]+\)' | sed 's/^](//; s/)$//')
done

# --- 2. architecture.md references every public leaplist header -----
ARCH="$ROOT/docs/architecture.md"
if [[ ! -f "$ARCH" ]]; then
  echo "check_docs: docs/architecture.md is missing" >&2
  fail=1
else
  for header in "$ROOT"/include/leaplist/*.hpp \
                "$ROOT"/include/leaplist/net/*.hpp \
                "$ROOT"/include/leaplist/store/*.hpp; do
    [[ -f "$header" ]] || continue
    rel="${header#"$ROOT"/}"
    if ! grep -q "$rel" "$ARCH"; then
      echo "check_docs: $rel is not referenced from docs/architecture.md" >&2
      fail=1
    fi
  done
fi

if [[ "$fail" -ne 0 ]]; then
  echo "check_docs: FAILED" >&2
  exit 1
fi
echo "check_docs: ok (links resolve; all include/leaplist headers documented)"
