#!/usr/bin/env bash
# End-to-end loopback smoke for the serving layer: start leapd on an
# ephemeral port, run leap-loadgen against it for a few seconds, then
# SIGTERM the server and assert
#   1. the loadgen completed nonzero ops with no connection failures
#      (its own exit status), and
#   2. leapd exited 0 and printed its clean-shutdown stats line.
#
#   scripts/net_smoke.sh [build-dir]      (default: ./build)
#
# LEAP_BENCH_SMOKE=1 shrinks the run (ctest and the sanitizer jobs set
# it); otherwise the loadgen drives ~3 s of load.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-"$ROOT/build"}"
LOG="$(mktemp)"
SERVER_PID=""

cleanup() {
  if [[ -n "$SERVER_PID" ]] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill -9 "$SERVER_PID" 2>/dev/null || true
  fi
  rm -f "$LOG"
}
trap cleanup EXIT

for bin in leapd leap-loadgen; do
  if [[ ! -x "$BUILD/$bin" ]]; then
    echo "net_smoke: $BUILD/$bin not built (cmake --build $BUILD)" >&2
    exit 1
  fi
done

"$BUILD/leapd" --port 0 --workers 2 --shards 8 > "$LOG" &
SERVER_PID=$!

# Wait for the listen line and parse the ephemeral port out of it.
PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/^leapd: listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
          "$LOG" | head -n1)"
  [[ -n "$PORT" ]] && break
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "net_smoke: leapd died before listening:" >&2
    cat "$LOG" >&2
    exit 1
  fi
  sleep 0.1
done
if [[ -z "$PORT" ]]; then
  echo "net_smoke: leapd never printed its listen line" >&2
  exit 1
fi

SECONDS_ARG=()
[[ -z "${LEAP_BENCH_SMOKE:-}" ]] && SECONDS_ARG=(--seconds 3)

"$BUILD/leap-loadgen" --port "$PORT" --threads 2 --pipeline 8 \
  "${SECONDS_ARG[@]}"

kill -TERM "$SERVER_PID"
STATUS=0
wait "$SERVER_PID" || STATUS=$?
SERVER_PID=""
if [[ "$STATUS" -ne 0 ]]; then
  echo "net_smoke: leapd exited $STATUS (expected 0)" >&2
  cat "$LOG" >&2
  exit 1
fi
if ! grep -q "clean shutdown" "$LOG"; then
  echo "net_smoke: leapd never reported a clean shutdown:" >&2
  cat "$LOG" >&2
  exit 1
fi
SERVED="$(sed -n 's/^leapd: served \([0-9]*\) ops.*/\1/p' "$LOG" | head -n1)"
if [[ -z "$SERVED" || "$SERVED" -eq 0 ]]; then
  echo "net_smoke: leapd served 0 ops" >&2
  cat "$LOG" >&2
  exit 1
fi
echo "net_smoke: ok ($SERVED ops served, clean shutdown)"
