#!/usr/bin/env bash
# End-to-end loopback smoke for the serving layer, three phases:
#
#   1. start leapd on an ephemeral port, run leap-loadgen against it
#      for a few seconds, SIGTERM the server and assert the loadgen
#      completed nonzero ops with no connection failures (its own exit
#      status) and leapd exited 0 with its clean-shutdown stats line;
#   2. start a second leapd with a tiny admission cap and fire one
#      past-saturation open-loop burst at it — the server must SHED
#      (nonzero shed count, observed via the Stats opcode through the
#      loadgen's "server stats" line) instead of stalling, and still
#      shut down cleanly;
#   3. persistence: start leapd with --data-dir, write a deterministic
#      key range (every put acknowledged), kill -9 the server, restart
#      it on the same directory, and verify every key reads back its
#      oracle value from the fresh process — recovery proven over the
#      real wire, not in-process;
#   4. fault injection: start leapd with --fault-spec so the store's
#      WAL hits a sticky ENOSPC mid-write — the server must go
#      read-only fail-stop (writes shed with kStoreFailed, observed by
#      the loadgen's storefailed counter and the Stats opcode's
#      fail_stop field) while gets keep answering, and still shut
#      down cleanly.
#
#   scripts/net_smoke.sh [build-dir]      (default: ./build)
#
# LEAP_BENCH_SMOKE=1 shrinks the run (ctest and the sanitizer jobs set
# it); otherwise the phase-1 loadgen drives ~3 s of load. Every loadgen
# invocation runs under a hard timeout; a hung phase dumps the tail of
# the leapd log before failing, so a wedged server leaves evidence
# instead of a silent CI timeout.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-"$ROOT/build"}"
LOG="$(mktemp)"
DATADIR=""
DATADIR2=""
SERVER_PID=""

cleanup() {
  if [[ -n "$SERVER_PID" ]] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill -9 "$SERVER_PID" 2>/dev/null || true
  fi
  rm -f "$LOG"
  [[ -n "$DATADIR" ]] && rm -rf "$DATADIR"
  [[ -n "$DATADIR2" ]] && rm -rf "$DATADIR2"
}
trap cleanup EXIT

# Run a phase command under a hard timeout; on timeout or failure dump
# the tail of the server log so the failure is diagnosable from CI
# output alone.
PHASE_TIMEOUT="${LEAP_SMOKE_TIMEOUT:-120}"
run_phase() {
  local name="$1"
  shift
  local status=0
  timeout "$PHASE_TIMEOUT" "$@" || status=$?
  if [[ "$status" -ne 0 ]]; then
    if [[ "$status" -eq 124 ]]; then
      echo "net_smoke: phase '$name' TIMED OUT after ${PHASE_TIMEOUT}s" >&2
    else
      echo "net_smoke: phase '$name' failed (exit $status)" >&2
    fi
    echo "net_smoke: last 40 leapd log lines:" >&2
    tail -n 40 "$LOG" >&2
    exit 1
  fi
}

for bin in leapd leap-loadgen; do
  if [[ ! -x "$BUILD/$bin" ]]; then
    echo "net_smoke: $BUILD/$bin not built (cmake --build $BUILD)" >&2
    exit 1
  fi
done

# Start leapd with the given extra flags; sets SERVER_PID and PORT.
start_leapd() {
  : > "$LOG"
  "$BUILD/leapd" --port 0 --workers 2 --shards 8 "$@" > "$LOG" &
  SERVER_PID=$!
  PORT=""
  for _ in $(seq 1 100); do
    PORT="$(sed -n 's/^leapd: listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
            "$LOG" | head -n1)"
    [[ -n "$PORT" ]] && break
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
      echo "net_smoke: leapd died before listening:" >&2
      cat "$LOG" >&2
      exit 1
    fi
    sleep 0.1
  done
  if [[ -z "$PORT" ]]; then
    echo "net_smoke: leapd never printed its listen line" >&2
    exit 1
  fi
}

# SIGTERM the server and assert a clean exit + shutdown line.
stop_leapd() {
  kill -TERM "$SERVER_PID"
  local status=0
  wait "$SERVER_PID" || status=$?
  SERVER_PID=""
  if [[ "$status" -ne 0 ]]; then
    echo "net_smoke: leapd exited $status (expected 0)" >&2
    cat "$LOG" >&2
    exit 1
  fi
  if ! grep -q "clean shutdown" "$LOG"; then
    echo "net_smoke: leapd never reported a clean shutdown:" >&2
    cat "$LOG" >&2
    exit 1
  fi
}

# --- phase 1: normal load, clean serve + shutdown ---------------------
start_leapd --stats-interval 0

SECONDS_ARG=()
[[ -z "${LEAP_BENCH_SMOKE:-}" ]] && SECONDS_ARG=(--seconds 3)

run_phase "serve" "$BUILD/leap-loadgen" --port "$PORT" --threads 2 \
  --pipeline 8 "${SECONDS_ARG[@]}"

stop_leapd
SERVED="$(sed -n 's/^leapd: served \([0-9]*\) ops.*/\1/p' "$LOG" | head -n1)"
if [[ -z "$SERVED" || "$SERVED" -eq 0 ]]; then
  echo "net_smoke: leapd served 0 ops" >&2
  cat "$LOG" >&2
  exit 1
fi

# --- phase 2: past-saturation burst must SHED, not stall --------------
# A tiny per-worker cap makes shedding certain under an offered load no
# loopback server absorbs; --preload 0 so the measured burst (not the
# warm-up) meets the cap. The loadgen tolerates kOverloaded (shed ops
# are counted, not failures), so its exit status still gates the run,
# and its "server stats" line carries the server's own shed counter
# fetched via the Stats opcode.
start_leapd --max-queue 8 --stats-interval 0
GEN_STATUS=0
GEN_OUT="$(timeout "$PHASE_TIMEOUT" "$BUILD/leap-loadgen" --port "$PORT" \
  --threads 2 --seconds 1 --rate 400000 --preload 0 \
  --mix 30:60:10:0:0)" || GEN_STATUS=$?
echo "$GEN_OUT"
if [[ "$GEN_STATUS" -ne 0 ]]; then
  echo "net_smoke: phase 'shed' failed (exit $GEN_STATUS)" >&2
  echo "net_smoke: last 40 leapd log lines:" >&2
  tail -n 40 "$LOG" >&2
  exit 1
fi
SHED="$(printf '%s\n' "$GEN_OUT" | \
        sed -n 's/^leap-loadgen: server stats .*shed=\([0-9]*\) .*/\1/p' | \
        head -n1)"
if [[ -z "$SHED" || "$SHED" -eq 0 ]]; then
  echo "net_smoke: past-saturation burst shed nothing (shed='$SHED')" >&2
  cat "$LOG" >&2
  exit 1
fi
stop_leapd

# --- phase 3: write, kill -9, restart, read everything back -----------
# The loadgen's oracle modes make the verifier stateless: values are a
# pure function of the key, so the post-crash process needs nothing
# from the pre-crash one but the --data-dir.
DATADIR="$(mktemp -d)"
NKEYS=2000
[[ -n "${LEAP_BENCH_SMOKE:-}" ]] && NKEYS=500

start_leapd --data-dir "$DATADIR" --fsync-mode group --stats-interval 0
run_phase "persist-write" "$BUILD/leap-loadgen" --port "$PORT" \
  --putrange "0:$NKEYS"
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

start_leapd --data-dir "$DATADIR" --fsync-mode group --stats-interval 0
RECOVERED="$(sed -n 's/^leapd: store open .*recovered=\([0-9]*\).*/\1/p' \
             "$LOG" | head -n1)"
if [[ -z "$RECOVERED" ]]; then
  echo "net_smoke: restarted leapd printed no store-open line" >&2
  tail -n 40 "$LOG" >&2
  exit 1
fi
run_phase "persist-verify" "$BUILD/leap-loadgen" --port "$PORT" \
  --verifyrange "0:$NKEYS"
stop_leapd

# --- phase 4: injected ENOSPC → read-only fail-stop, writes shed ------
# A sticky ENOSPC on the 2nd store write makes the WAL flush fail
# mid-range (deep pipelining batches the whole range into a handful of
# group-commit flushes, so the fault index must be small): the server
# must shed every later put with kStoreFailed
# (never ack a non-durable write), keep serving reads, report
# fail_stop=1 through the Stats opcode, and still shut down cleanly.
DATADIR2="$(mktemp -d)"
start_leapd --data-dir "$DATADIR2" --fsync-mode group --stats-interval 0 \
  --fault-spec "write:2:enospc:sticky"
FAULT_STATUS=0
FAULT_OUT="$(timeout "$PHASE_TIMEOUT" "$BUILD/leap-loadgen" --port "$PORT" \
  --putrange 0:600 --tolerate-storefail)" || FAULT_STATUS=$?
echo "$FAULT_OUT"
if [[ "$FAULT_STATUS" -ne 0 ]]; then
  echo "net_smoke: phase 'fault-put' failed (exit $FAULT_STATUS)" >&2
  echo "net_smoke: last 40 leapd log lines:" >&2
  tail -n 40 "$LOG" >&2
  exit 1
fi
STOREFAILED="$(printf '%s\n' "$FAULT_OUT" | \
  sed -n 's/^leap-loadgen: putrange .*storefailed=\([0-9]*\).*/\1/p' | \
  head -n1)"
if [[ -z "$STOREFAILED" || "$STOREFAILED" -eq 0 ]]; then
  echo "net_smoke: injected ENOSPC shed no writes" \
       "(storefailed='$STOREFAILED')" >&2
  tail -n 40 "$LOG" >&2
  exit 1
fi
# Reads must still be served by the fail-stopped server, and its Stats
# opcode must report the fail-stop (via the loadgen's stats probe).
FAULT_GET_STATUS=0
FAULT_GET_OUT="$(timeout "$PHASE_TIMEOUT" "$BUILD/leap-loadgen" \
  --port "$PORT" --threads 1 --pipeline 4 --preload 0 \
  --mix 100:0:0:0:0)" || FAULT_GET_STATUS=$?
echo "$FAULT_GET_OUT"
if [[ "$FAULT_GET_STATUS" -ne 0 ]]; then
  echo "net_smoke: phase 'fault-get' failed (exit $FAULT_GET_STATUS)" >&2
  echo "net_smoke: last 40 leapd log lines:" >&2
  tail -n 40 "$LOG" >&2
  exit 1
fi
if ! printf '%s\n' "$FAULT_GET_OUT" | \
     grep -q '^leap-loadgen: server stats .*fail_stop=[1-9]'; then
  echo "net_smoke: fail-stopped server did not report fail_stop>0" >&2
  tail -n 40 "$LOG" >&2
  exit 1
fi
stop_leapd

echo "net_smoke: ok ($SERVED ops served phase 1, $SHED shed phase 2," \
     "$NKEYS keys survived kill -9 phase 3," \
     "$STOREFAILED writes shed under ENOSPC phase 4)"
