// Harness layer tests: formatting, mixes, sweeps, histogram math, and
// a miniature end-to-end run of the throughput/latency drivers.
#include <chrono>
#include <cstdlib>

#include "harness/adapters.hpp"
#include "harness/driver.hpp"
#include "harness/table.hpp"
#include "harness/workload.hpp"
#include "test_common.hpp"

using namespace leap::harness;

namespace {

void test_formatting() {
  CHECK_EQ(Table::format_ops(12345678.0), std::string("12.35M"));
  CHECK_EQ(Table::format_ops(4560.0), std::string("4.6K"));
  CHECK_EQ(Table::format_ops(42.0), std::string("42"));
  CHECK_EQ(Table::format_ratio(2.204), std::string("2.20x"));
}

void test_mixes() {
  CHECK_EQ(Mix::modify_only().lookup_pct, 0);
  CHECK_EQ(Mix::modify_only().range_pct, 0);
  CHECK_EQ(Mix::lookup_only().lookup_pct, 100);
  CHECK_EQ(Mix::range_only().range_pct, 100);
  CHECK_EQ(Mix::read_dominated().lookup_pct, 40);
  CHECK_EQ(Mix::read_dominated().range_pct, 40);
  CHECK_EQ(Mix::lookup_modify(70).lookup_pct, 70);
  CHECK_EQ(Mix::range_modify(30).range_pct, 30);
}

void test_sweeps() {
  const auto sweep = thread_sweep();
  CHECK(!sweep.empty());
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    CHECK(sweep[i] > sweep[i - 1]);
  }
  CHECK(bench_duration(std::chrono::milliseconds(200)).count() > 0);
  CHECK(bench_repeats(3) >= 1);
  CHECK(warmup_duration(std::chrono::milliseconds(200)).count() > 0);
}

void test_histogram() {
  LatencyHistogram hist;
  CHECK_EQ(hist.percentile(0.5), 0u);
  for (std::uint64_t v = 1; v <= 1000; ++v) hist.record(v * 1000);
  CHECK_EQ(hist.samples(), 1000u);
  const std::uint64_t p50 = hist.percentile(0.50);
  const std::uint64_t p99 = hist.percentile(0.99);
  // Log-bucket bounds: within one sub-bucket (~6%) below the true value.
  CHECK(p50 >= 450000 && p50 <= 500000);
  CHECK(p99 >= 900000 && p99 <= 990000);
  CHECK(p99 > p50);
  LatencyHistogram other;
  other.record(5);
  other.merge(hist);
  CHECK_EQ(other.samples(), 1001u);
}

void test_driver_end_to_end() {
  WorkloadConfig cfg;
  cfg.lists = 2;
  cfg.params = leap::core::Params{.node_size = 32, .max_level = 8};
  cfg.key_range = 4000;
  cfg.initial_size = 2000;
  cfg.rq_span_min = 10;
  cfg.rq_span_max = 50;
  cfg.mix = Mix::read_dominated();
  cfg.threads = 2;
  cfg.duration = std::chrono::milliseconds(50);
  using LTMap = leap::Map<std::int64_t, std::int64_t, leap::policy::LT>;
  using COPMap = leap::Map<std::int64_t, std::int64_t, leap::policy::COP>;
  using SkipCASMap =
      leap::Map<std::int64_t, std::int64_t, leap::policy::SkipCAS>;
  const ThroughputResult result = run_workload<MapAdapter<LTMap>>(cfg, 1);
  CHECK(result.total_ops > 0);
  CHECK(result.ops_per_sec > 0);

  MapAdapter<COPMap> adapter(cfg);
  const LatencyResult latency = run_latency(adapter, cfg);
  CHECK(latency.lookup.samples() > 0);
  CHECK(latency.range.samples() > 0);
  CHECK(latency.update.samples() > 0);

  const ThroughputResult skip_result =
      run_workload<MapAdapter<SkipCASMap>>(cfg, 1);
  CHECK(skip_result.total_ops > 0);
}

}  // namespace

int main() {
  test_formatting();
  test_mixes();
  test_sweeps();
  test_histogram();
  test_driver_end_to_end();
  return leap::test::finish("test_harness");
}
