// Bundled-reference battery: the scan-linearizability proof for the
// non-TM policies (the tentpole of the bundling PR).
//
// 1. Cross-shard scan-linearizability stress for LT/COP/RW — movers
//    bounce logical keys between slots in different shards
//    (insert-destination-then-erase-source, each key owned by one
//    mover) while stitched for_range / bounded scan / snapshot-Cursor
//    readers assert every logical key is present EXACTLY ONCE OR TWICE
//    at every instant. Zero copies is precisely the per-shard-
//    consistency anomaly bundling eliminates: a non-linearizable
//    stitch can read the source shard after the erase and the
//    destination shard before the insert. Mirrors the TM battery in
//    test_sharded.cpp.
// 2. Per-policy bundle fuzz: randomized insert/erase/scan churn at
//    node_size=4 (split storm — bundle publication races node
//    replacement on nearly every update) against a timestamp-annotated
//    std::map oracle; afterwards, as-of walks at sampled historical
//    timestamps must reproduce the oracle's state at each timestamp
//    exactly.
// 3. Erase-visibility regression: a key erased at commit timestamp T
//    stays visible to a scan pinned before T and invisible at >= T,
//    across a node split of its cover node and after EBR bundle
//    reclamation (bundle_prune_all + collect) runs.
//
// LEAP_STRESS_MS scales the stress window; the file runs in the ASan
// and TSan CI jobs.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <optional>
#include <thread>
#include <vector>

#include "leaplist/bundle.hpp"
#include "leaplist/map.hpp"
#include "leaplist/sharded.hpp"
#include "stm/stm.hpp"
#include "test_common.hpp"
#include "util/ebr.hpp"
#include "util/random.hpp"
#include "util/spin_barrier.hpp"

namespace policy = leap::policy;
using leap::ShardOptions;
using leap::core::Params;

namespace {

// --- 1. Cross-shard scan-linearizability stress ----------------------
// Each logical key 1..kLogical lives at slot k (low shards) or
// k + kOffset (high shards). Non-TM movers cannot swap atomically, so
// they insert the destination BEFORE erasing the source: at every
// instant a key has one or two copies, never zero. A reader observing
// zero copies has produced a non-linearizable stitch.

constexpr std::int64_t kLogical = 96;
constexpr std::int64_t kOffset = 10000;

std::int64_t value_for(std::int64_t key) { return key * 7 + 3; }

/// One observed stitched snapshot: ascending keys, correct values,
/// every logical key seen once or twice.
void check_snapshot(
    const std::vector<std::pair<std::int64_t, std::int64_t>>& snap,
    std::vector<int>& seen) {
  CHECK(snap.size() >= static_cast<std::size_t>(kLogical));
  CHECK(snap.size() <= static_cast<std::size_t>(2 * kLogical));
  std::fill(seen.begin(), seen.end(), 0);
  for (std::size_t i = 0; i < snap.size(); ++i) {
    if (i > 0) CHECK(snap[i].first > snap[i - 1].first);
    const std::int64_t logical = snap[i].first > kOffset
                                     ? snap[i].first - kOffset
                                     : snap[i].first;
    CHECK(logical >= 1 && logical <= kLogical);
    CHECK_EQ(snap[i].second, value_for(logical));
    ++seen[static_cast<std::size_t>(logical)];
  }
  for (std::int64_t k = 1; k <= kLogical; ++k) {
    const int copies = seen[static_cast<std::size_t>(k)];
    CHECK(copies == 1 || copies == 2);  // zero = torn stitch
  }
}

template <typename P>
void test_scan_linearizability(const char* name) {
  constexpr unsigned kMovers = 4;
  constexpr unsigned kRangeReaders = 2;
  constexpr unsigned kScanReaders = 1;
  constexpr unsigned kCursorReaders = 1;
  using M = leap::ShardedMap<std::int64_t, std::int64_t, P>;
  M map(ShardOptions{.shards = 8,
                     .params = Params{.node_size = 16, .max_level = 6}},
        1, kOffset + kLogical);
  for (std::int64_t k = 1; k <= kLogical; ++k) {
    CHECK(map.shard_of(k) != map.shard_of(k + kOffset));
  }
  {
    std::vector<std::pair<std::int64_t, std::int64_t>> pairs;
    for (std::int64_t k = 1; k <= kLogical; ++k) {
      pairs.push_back({k, value_for(k)});
    }
    map.bulk_load(pairs);
  }
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> moves{0};
  leap::util::SpinBarrier barrier(kMovers + kRangeReaders + kScanReaders +
                                  kCursorReaders + 1);
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kMovers; ++t) {
    threads.emplace_back([&, t] {
      // Each mover owns the keys congruent to its index: without
      // transactions, two movers racing one key could strand it with
      // zero copies on their own — ownership keeps the 1-or-2
      // invariant a property of the data structure, not luck.
      leap::util::Xoshiro256 rng(2500 + t);
      std::uint64_t local = 0;
      barrier.arrive_and_wait();
      while (!stop.load(std::memory_order_relaxed)) {
        const auto owned =
            static_cast<std::int64_t>(1 + t + kMovers * rng.next_below(
                static_cast<std::uint64_t>(kLogical) / kMovers));
        const std::int64_t src =
            map.get(owned).has_value() ? owned : owned + kOffset;
        const std::int64_t dst =
            src == owned ? owned + kOffset : owned;
        map.insert(dst, value_for(owned));  // destination first...
        map.erase(src);                     // ...so copies never hit 0
        ++local;
      }
      moves.fetch_add(local, std::memory_order_relaxed);
    });
  }
  for (unsigned t = 0; t < kRangeReaders; ++t) {
    threads.emplace_back([&] {
      std::vector<std::pair<std::int64_t, std::int64_t>> snap;
      std::vector<int> seen(static_cast<std::size_t>(kLogical) + 1, 0);
      barrier.arrive_and_wait();
      while (!stop.load(std::memory_order_relaxed)) {
        snap.clear();
        map.for_range(1, kOffset + kLogical, leap::append_to(snap));
        check_snapshot(snap, seen);
      }
    });
  }
  for (unsigned t = 0; t < kScanReaders; ++t) {
    threads.emplace_back([&] {
      std::vector<std::pair<std::int64_t, std::int64_t>> snap;
      std::vector<int> seen(static_cast<std::size_t>(kLogical) + 1, 0);
      barrier.arrive_and_wait();
      while (!stop.load(std::memory_order_relaxed)) {
        // Bounded stitched scan with a limit past the worst-case
        // population: the same exactly-once-or-twice snapshot must
        // come back through the scan path.
        snap.clear();
        map.scan(1, static_cast<std::size_t>(2 * kLogical) + 8, snap);
        check_snapshot(snap, seen);
      }
    });
  }
  for (unsigned t = 0; t < kCursorReaders; ++t) {
    threads.emplace_back([&] {
      std::vector<int> seen(static_cast<std::size_t>(kLogical) + 1, 0);
      std::vector<std::pair<std::int64_t, std::int64_t>> snap;
      barrier.arrive_and_wait();
      while (!stop.load(std::memory_order_relaxed)) {
        auto cursor = map.snapshot(1, kOffset + kLogical);
        snap.assign(cursor.begin(), cursor.end());
        check_snapshot(snap, seen);
      }
    });
  }
  barrier.arrive_and_wait();
  std::this_thread::sleep_for(
      leap::test::stress_duration(std::chrono::milliseconds(400)));
  stop.store(true, std::memory_order_release);
  for (auto& thread : threads) thread.join();
  // Quiescent agreement: movers finish their insert+erase pairs, so
  // every key settles at exactly one slot.
  CHECK(map.debug_validate());
  CHECK_EQ(map.size_slow(), static_cast<std::size_t>(kLogical));
  for (std::int64_t k = 1; k <= kLogical; ++k) {
    const auto at_low = map.get(k);
    const auto at_high = map.get(k + kOffset);
    CHECK(at_low.has_value() != at_high.has_value());
    CHECK_EQ(at_low ? *at_low : *at_high, value_for(k));
  }
  std::printf("  scan linearizability %s ok (%llu moves)\n", name,
              static_cast<unsigned long long>(moves.load()));
}

// --- 2. Per-policy bundle fuzz vs timestamp-annotated oracle ---------
// Single-threaded churn at node_size=4 (every few updates split or
// merge a node, so bundle publication races node replacement on the
// structural path) with every committed mutation recorded as
// (commit timestamp, key, value-or-erase). Scans during the churn
// check the live view; afterwards, as-of walks at sampled historical
// timestamps must reproduce the oracle replayed to that timestamp. A
// ScanPin held across the whole churn keeps the history alive.

struct OracleEvent {
  std::uint64_t ts;
  std::int64_t key;
  std::optional<std::int64_t> value;  // nullopt = erase
};

std::map<std::int64_t, std::int64_t> replay_oracle(
    const std::vector<OracleEvent>& events, std::uint64_t ts) {
  std::map<std::int64_t, std::int64_t> state;
  for (const OracleEvent& e : events) {
    if (e.ts > ts) break;  // events are appended in commit order
    if (e.value) {
      state[e.key] = *e.value;
    } else {
      state.erase(e.key);
    }
  }
  return state;
}

template <typename P>
void test_bundle_fuzz(const char* name) {
  using M = leap::Map<std::int64_t, std::int64_t, P>;
  M map(Params{.node_size = 4, .max_level = 4});
  leap::bundle::ScanPin pin;  // hold the full history window
  std::vector<OracleEvent> events;
  std::map<std::int64_t, std::int64_t> reference;
  leap::util::Xoshiro256 rng(0xb0bb1e);
  constexpr std::int64_t kKeyRange = 160;
  for (int op = 0; op < 6000; ++op) {
    const auto key = static_cast<std::int64_t>(1 + rng.next_below(kKeyRange));
    const int dial = static_cast<int>(rng.next_below(100));
    if (dial < 45) {
      const auto value = static_cast<std::int64_t>(rng.next() >> 1);
      CHECK_EQ(map.insert(key, value),
               reference.find(key) == reference.end());
      reference[key] = value;
      events.push_back({leap::stm::clock_now(), key, value});
    } else if (dial < 80) {
      const bool erased = map.erase(key);
      CHECK_EQ(erased, reference.erase(key) > 0);
      if (erased) events.push_back({leap::stm::clock_now(), key, {}});
    } else {
      // Live scan over a random window vs the current reference.
      const auto span = static_cast<std::int64_t>(rng.next_below(60));
      const std::int64_t high = std::min(kKeyRange, key + span);
      std::vector<std::pair<std::int64_t, std::int64_t>> got;
      map.for_range(key, high, leap::append_to(got));
      auto it = reference.lower_bound(key);
      std::size_t n = 0;
      for (; it != reference.end() && it->first <= high; ++it, ++n) {
        CHECK(n < got.size());
        CHECK_EQ(got[n].first, it->first);
        CHECK_EQ(got[n].second, it->second);
      }
      CHECK_EQ(got.size(), n);
    }
  }
  CHECK(map.debug_validate());

  // As-of walks at sampled historical timestamps: each must match the
  // oracle replayed to exactly that timestamp, and none may fail (the
  // pin held their history).
  const std::uint64_t now = leap::stm::clock_now();
  CHECK(pin.ts() < now);
  leap::util::Xoshiro256 sample_rng(0x5eed);
  for (int probe = 0; probe < 64; ++probe) {
    const std::uint64_t ts =
        pin.ts() + sample_rng.next_below(now - pin.ts() + 1);
    const auto expected = replay_oracle(events, ts);
    std::vector<std::pair<std::int64_t, std::int64_t>> got;
    auto sink = leap::append_to(got);
    std::size_t delivered = 0;
    bool stopped = false;
    CHECK(map.try_for_range_at(ts, std::int64_t{1}, kKeyRange, sink,
                               delivered, stopped));
    CHECK(!stopped);
    CHECK_EQ(delivered, expected.size());
    CHECK_EQ(got.size(), expected.size());
    auto it = expected.begin();
    for (std::size_t i = 0; i < got.size(); ++i, ++it) {
      CHECK_EQ(got[i].first, it->first);
      CHECK_EQ(got[i].second, it->second);
    }
  }
  std::printf("  bundle fuzz %s ok (%zu events, max bundle %zu)\n", name,
              events.size(), map.engine().debug_max_bundle());
}

// --- 3. Erase-visibility regression ----------------------------------
// The key erased at commit timestamp T must stay visible to scans at
// T-1 and be invisible at T and T+1 — before and after its cover node
// splits, and after bundle reclamation runs.

template <typename P>
void test_erase_visibility(const char* name) {
  using M = leap::Map<std::int64_t, std::int64_t, P>;
  M map(Params{.node_size = 4, .max_level = 4});
  leap::bundle::ScanPin pin;  // announced before T: protects T-1 reads

  for (std::int64_t k = 1; k <= 3; ++k) map.insert(k, k * 100);
  CHECK(map.erase(2));
  const std::uint64_t erase_ts = leap::stm::clock_now();

  const auto keys_at = [&](std::uint64_t ts) {
    std::vector<std::pair<std::int64_t, std::int64_t>> got;
    auto sink = leap::append_to(got);
    std::size_t delivered = 0;
    bool stopped = false;
    CHECK(map.try_for_range_at(ts, std::int64_t{1}, std::int64_t{1000},
                               sink, delivered, stopped));
    std::vector<std::int64_t> keys;
    for (const auto& [k, v] : got) keys.push_back(k);
    return keys;
  };

  const auto contains = [](const std::vector<std::int64_t>& keys,
                           std::int64_t key) {
    return std::find(keys.begin(), keys.end(), key) != keys.end();
  };

  // Before any structural churn.
  CHECK(contains(keys_at(erase_ts - 1), 2));
  CHECK(!contains(keys_at(erase_ts), 2));
  CHECK(!contains(keys_at(erase_ts + 1), 2));

  // Split the cover node: at node_size=4 a burst of neighbors forces
  // the node holding the history through copy-node-and-swap splits.
  for (std::int64_t k = 4; k <= 40; ++k) map.insert(k, k * 100);
  CHECK(map.debug_validate());
  CHECK(contains(keys_at(erase_ts - 1), 2));
  CHECK(!contains(keys_at(erase_ts), 2));
  CHECK(!contains(keys_at(erase_ts + 1), 2));

  // Run bundle reclamation. The pin predates T, so pruning must keep
  // every entry the T-1 walk needs; EBR collect cycles recycle what
  // was legitimately retired.
  map.engine().bundle_prune_all();
  for (int i = 0; i < 4; ++i) leap::util::ebr::collect();
  CHECK(contains(keys_at(erase_ts - 1), 2));
  CHECK(!contains(keys_at(erase_ts), 2));
  CHECK(!contains(keys_at(erase_ts + 1), 2));

  // The live view agrees with the latest timestamp.
  CHECK(!map.get(2).has_value());
  CHECK_EQ(*map.get(1), 100);
  std::printf("  erase visibility %s ok (T=%llu)\n", name,
              static_cast<unsigned long long>(erase_ts));
}

}  // namespace

int main() {
  test_scan_linearizability<policy::LT>("LT");
  test_scan_linearizability<policy::COP>("COP");
  test_scan_linearizability<policy::RW>("RW");
  test_bundle_fuzz<policy::LT>("LT");
  test_bundle_fuzz<policy::COP>("COP");
  test_bundle_fuzz<policy::RW>("RW");
  test_bundle_fuzz<policy::TM>("TM");
  test_erase_visibility<policy::LT>("LT");
  test_erase_visibility<policy::COP>("COP");
  test_erase_visibility<policy::RW>("RW");
  test_erase_visibility<policy::TM>("TM");
  return leap::test::finish("test_bundles");
}
