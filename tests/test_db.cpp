// Table layer tests: LeapTable and LockedTreeTable against a naive
// reference, a concurrent smoke over LeapTable, and the multi-index
// consistency battery for the one-transaction index maintenance.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "db/leap_table.hpp"
#include "db/locked_table.hpp"
#include "leaplist/txn.hpp"
#include "test_common.hpp"
#include "util/random.hpp"

using namespace leap::db;
namespace stm = leap::stm;

namespace {

std::chrono::milliseconds stress_duration() {
  return leap::test::stress_duration(std::chrono::milliseconds(400));
}

Schema test_schema() {
  Schema schema;
  schema.columns = {"price", "stock", "category"};
  schema.indexed_columns = {0, 1, 2};
  return schema;
}

Row make_row(RowId id, leap::util::Xoshiro256& rng) {
  return Row{id,
             {static_cast<ColumnValue>(rng.next_below(10000)),
              static_cast<ColumnValue>(rng.next_below(1000)),
              static_cast<ColumnValue>(rng.next_below(16))}};
}

/// `stride` spreads row ids across the primary's [0, 2^24) id space —
/// ids are 1, 1 + stride, 1 + 2*stride, … — so a sharded primary is
/// exercised ACROSS its partition boundaries, not bunched into shard 0
/// (boundary for 4 shards: id 2^22). stride 1 keeps the dense layout.
template <typename TableT, typename... Args>
void test_functional(const char* name, RowId stride, Args&&... args) {
  TableT table(test_schema(), std::forward<Args>(args)...);
  std::vector<Row> reference;  // ordinal-indexed shadow
  constexpr RowId kRows = 2000;
  const auto id_of = [&](RowId ordinal) { return 1 + (ordinal - 1) * stride; };
  const auto ordinal_of = [&](RowId id) { return 1 + (id - 1) / stride; };
  leap::util::Xoshiro256 rng(4321);
  for (RowId ordinal = 1; ordinal <= kRows; ++ordinal) {
    const Row row = make_row(id_of(ordinal), rng);
    table.insert(row);
    reference.push_back(row);
  }
  // Point reads.
  for (RowId ordinal = 1; ordinal <= kRows; ++ordinal) {
    const auto row = table.get(id_of(ordinal));
    CHECK(row.has_value());
    CHECK_EQ(row->id, id_of(ordinal));
    CHECK(row->values == reference[ordinal - 1].values);
  }
  CHECK(!table.get(id_of(kRows) + 1).has_value());
  // Overwrite updates the secondary indexes.
  Row replacement = reference[9];
  replacement.values[0] = 424242;
  table.insert(replacement);
  reference[9] = replacement;
  // Erase.
  CHECK(table.erase(id_of(5)));
  CHECK(!table.erase(id_of(5)));
  CHECK(!table.get(id_of(5)).has_value());
  // Scans per indexed column vs the shadow.
  std::vector<Row> out;
  for (std::size_t col = 0; col < 3; ++col) {
    const ColumnValue low = 100;
    const ColumnValue high = col == 2 ? 7 : 5000;
    table.scan(col, low, high, out);
    std::size_t expected = 0;
    for (const Row& row : reference) {
      if (row.id == id_of(5)) continue;
      const ColumnValue v = row.values[col];
      if (v >= low && v <= high) ++expected;
    }
    CHECK_EQ(out.size(), expected);
    for (const Row& row : out) {
      CHECK(row.values[col] >= low);
      CHECK(row.values[col] <= high);
      CHECK(row.values == reference[ordinal_of(row.id) - 1].values);
    }
  }
  std::printf("  functional %s ok\n", name);
}

void test_concurrent_smoke() {
  LeapTable table(test_schema());
  constexpr RowId kRows = 1000;
  {
    leap::util::Xoshiro256 rng(1);
    for (RowId id = 1; id <= kRows; ++id) table.insert(make_row(id, rng));
  }
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      leap::util::Xoshiro256 rng(50 + t);
      std::vector<Row> out;
      for (int op = 0; op < 20000; ++op) {
        const RowId id = 1 + rng.next_below(kRows);
        switch (rng.next_below(4)) {
          case 0:
            table.insert(make_row(id, rng));
            break;
          case 1: {
            const auto row = table.get(id);
            if (row) CHECK_EQ(row->id, id);
            break;
          }
          case 2: {
            const ColumnValue low =
                static_cast<ColumnValue>(rng.next_below(9000));
            table.scan(0, low, low + 500, out);
            for (const Row& row : out) {
              CHECK(row.values.size() == 3);
            }
            break;
          }
          default:
            table.erase(id);
            table.insert(make_row(id, rng));
            break;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  stop.store(true);
  std::printf("  concurrent smoke ok\n");
}

// Writers keep every row's two indexed columns equal; multi-index read
// transactions must never see the indexes disagree — about membership
// (a row reachable through one index but not the other at the same
// value) or about content (a scan hit whose indexed column disagrees
// with the primary row read in the same transaction). Per-index
// maintenance fails this battery in the half-updated window; the
// one-transaction maintenance must hold it at every instant.
void test_multi_index_consistency(std::size_t primary_shards) {
  Schema schema;
  schema.columns = {"a", "b"};
  schema.indexed_columns = {0, 1};
  LeapTable table(schema, primary_shards);
  constexpr RowId kRows = 128;
  constexpr ColumnValue kValues = 8;
  // Spread ids across the primary's [0, 2^24) window so a sharded
  // primary sees cross-boundary traffic (see test_functional).
  constexpr RowId kStride = (RowId{1} << LeapTable::kIdBits) / kRows;
  const auto id_of = [](RowId ordinal) {
    return 1 + (ordinal - 1) * kStride;
  };
  {
    leap::util::Xoshiro256 rng(77);
    for (RowId ordinal = 1; ordinal <= kRows; ++ordinal) {
      const auto v = static_cast<ColumnValue>(rng.next_below(kValues));
      table.insert(Row{id_of(ordinal), {v, v}});
    }
  }
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      leap::util::Xoshiro256 rng(500 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        const RowId id = id_of(1 + rng.next_below(kRows));
        if (rng.next_below(8) == 0) {
          table.erase(id);
        } else {
          const auto v = static_cast<ColumnValue>(rng.next_below(kValues));
          table.insert(Row{id, {v, v}});
        }
      }
    });
  }
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      leap::util::Xoshiro256 rng(600 + t);
      std::vector<Row> by_a;
      std::vector<Row> by_b;
      std::vector<RowId> ids_a;
      std::vector<RowId> ids_b;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto v = static_cast<ColumnValue>(rng.next_below(kValues));
        leap::txn([&](stm::Tx& tx) {
          table.scan_in(tx, 0, v, v, by_a);
          table.scan_in(tx, 1, v, v, by_b);
          // Scan hits must agree with the primary inside the same
          // transaction (no stale or phantom secondary entries).
          for (const Row& row : by_a) {
            const auto primary = table.get_in(tx, row.id);
            CHECK(primary.has_value());
            CHECK(primary->values == row.values);
          }
        });
        ids_a.clear();
        ids_b.clear();
        for (const Row& row : by_a) {
          CHECK_EQ(row.values[0], v);
          CHECK_EQ(row.values[1], v);  // writer invariant, atomic indexes
          ids_a.push_back(row.id);
        }
        for (const Row& row : by_b) ids_b.push_back(row.id);
        std::sort(ids_a.begin(), ids_a.end());
        std::sort(ids_b.begin(), ids_b.end());
        CHECK(ids_a == ids_b);  // both indexes see the same rows
      }
    });
  }
  std::this_thread::sleep_for(stress_duration());
  stop.store(true, std::memory_order_release);
  for (auto& thread : threads) thread.join();
  std::printf("  multi-index consistency ok (primary shards %zu)\n",
              primary_shards);
}

// Targeted regression for the old per-index maintenance: one row
// flapping between (7,7) and (9,9) while a reader scans both indexes at
// value 7 in one transaction. The old path updated the indexes one at a
// time, so the reader could catch row 1 indexed under a=7 but not under
// b=7 (or through a stale entry disagreeing with the primary).
void test_partial_index_update_regression() {
  Schema schema;
  schema.columns = {"a", "b"};
  schema.indexed_columns = {0, 1};
  LeapTable table(schema);
  table.insert(Row{1, {7, 7}});
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (int flip = 0; flip < 3000; ++flip) {
      const ColumnValue v = (flip & 1) != 0 ? 7 : 9;
      table.insert(Row{1, {v, v}});
    }
    done.store(true, std::memory_order_release);
  });
  std::vector<Row> by_a;
  std::vector<Row> by_b;
  while (!done.load(std::memory_order_acquire)) {
    leap::txn([&](stm::Tx& tx) {
      table.scan_in(tx, 0, 7, 7, by_a);
      table.scan_in(tx, 1, 7, 7, by_b);
    });
    CHECK_EQ(by_a.size(), by_b.size());  // both indexes or neither
    if (!by_a.empty()) {
      CHECK_EQ(by_a[0].values[0], 7);
      CHECK_EQ(by_a[0].values[1], 7);
      CHECK_EQ(by_b[0].values[0], 7);
    }
  }
  writer.join();
  std::printf("  partial-index-update regression ok\n");
}

}  // namespace

int main() {
  test_functional<LeapTable>("LeapTable", 1);
  // Sharded primary: row ops still commit primary + secondaries in one
  // transaction, now with the primary partitioned over 4 shards — ids
  // spread across the whole [0, 2^24) window so every shard and every
  // boundary sees traffic.
  test_functional<LeapTable>("LeapTable (sharded primary)",
                             (RowId{1} << LeapTable::kIdBits) / 2048,
                             std::size_t{4});
  test_functional<LockedTreeTable>("LockedTreeTable", 1);
  test_concurrent_smoke();
  test_multi_index_consistency(1);
  test_multi_index_consistency(4);
  test_partial_index_update_regression();
  return leap::test::finish("test_db");
}
