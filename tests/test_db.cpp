// Table layer tests: LeapTable and LockedTreeTable against a naive
// reference, plus a concurrent smoke over LeapTable.
#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "db/leap_table.hpp"
#include "db/locked_table.hpp"
#include "test_common.hpp"
#include "util/random.hpp"

using namespace leap::db;

namespace {

Schema test_schema() {
  Schema schema;
  schema.columns = {"price", "stock", "category"};
  schema.indexed_columns = {0, 1, 2};
  return schema;
}

Row make_row(RowId id, leap::util::Xoshiro256& rng) {
  return Row{id,
             {static_cast<ColumnValue>(rng.next_below(10000)),
              static_cast<ColumnValue>(rng.next_below(1000)),
              static_cast<ColumnValue>(rng.next_below(16))}};
}

template <typename TableT>
void test_functional(const char* name) {
  TableT table(test_schema());
  std::vector<Row> reference;  // id-indexed shadow (id - 1)
  constexpr RowId kRows = 2000;
  leap::util::Xoshiro256 rng(4321);
  for (RowId id = 1; id <= kRows; ++id) {
    const Row row = make_row(id, rng);
    table.insert(row);
    reference.push_back(row);
  }
  // Point reads.
  for (RowId id = 1; id <= kRows; ++id) {
    const auto row = table.get(id);
    CHECK(row.has_value());
    CHECK_EQ(row->id, id);
    CHECK(row->values == reference[id - 1].values);
  }
  CHECK(!table.get(kRows + 1).has_value());
  // Overwrite updates the secondary indexes.
  Row replacement = reference[9];
  replacement.values[0] = 424242;
  table.insert(replacement);
  reference[9] = replacement;
  // Erase.
  CHECK(table.erase(5));
  CHECK(!table.erase(5));
  CHECK(!table.get(5).has_value());
  // Scans per indexed column vs the shadow.
  std::vector<Row> out;
  for (std::size_t col = 0; col < 3; ++col) {
    const ColumnValue low = 100;
    const ColumnValue high = col == 2 ? 7 : 5000;
    table.scan(col, low, high, out);
    std::size_t expected = 0;
    for (const Row& row : reference) {
      if (row.id == 5) continue;
      const ColumnValue v = row.values[col];
      if (v >= low && v <= high) ++expected;
    }
    CHECK_EQ(out.size(), expected);
    for (const Row& row : out) {
      CHECK(row.values[col] >= low);
      CHECK(row.values[col] <= high);
      CHECK(row.values == reference[row.id - 1].values);
    }
  }
  std::printf("  functional %s ok\n", name);
}

void test_concurrent_smoke() {
  LeapTable table(test_schema());
  constexpr RowId kRows = 1000;
  {
    leap::util::Xoshiro256 rng(1);
    for (RowId id = 1; id <= kRows; ++id) table.insert(make_row(id, rng));
  }
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      leap::util::Xoshiro256 rng(50 + t);
      std::vector<Row> out;
      for (int op = 0; op < 20000; ++op) {
        const RowId id = 1 + rng.next_below(kRows);
        switch (rng.next_below(4)) {
          case 0:
            table.insert(make_row(id, rng));
            break;
          case 1: {
            const auto row = table.get(id);
            if (row) CHECK_EQ(row->id, id);
            break;
          }
          case 2: {
            const ColumnValue low =
                static_cast<ColumnValue>(rng.next_below(9000));
            table.scan(0, low, low + 500, out);
            for (const Row& row : out) {
              CHECK(row.values.size() == 3);
            }
            break;
          }
          default:
            table.erase(id);
            table.insert(make_row(id, rng));
            break;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  stop.store(true);
  std::printf("  concurrent smoke ok\n");
}

}  // namespace

int main() {
  test_functional<LeapTable>("LeapTable");
  test_functional<LockedTreeTable>("LockedTreeTable");
  test_concurrent_smoke();
  return leap::test::finish("test_db");
}
