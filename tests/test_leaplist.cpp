// Single-threaded functional tests for all four leap-list variants,
// checked against a std::map reference model.
#include <map>
#include <optional>
#include <vector>

#include "leaplist/leaplist.hpp"
#include "test_common.hpp"
#include "util/random.hpp"

using namespace leap::core;

namespace {

template <typename ListT>
void check_against_reference(const ListT& list,
                             const std::map<Key, Value>& reference,
                             Key key_range) {
  for (Key k = 1; k <= key_range; ++k) {
    const auto expected = reference.find(k);
    const auto actual = list.get(k);
    if (expected == reference.end()) {
      CHECK(!actual.has_value());
    } else {
      CHECK(actual.has_value());
      CHECK_EQ(*actual, expected->second);
    }
  }
}

template <typename ListT>
void check_range(const ListT& list, const std::map<Key, Value>& reference,
                 Key low, Key high) {
  std::vector<KV> out;
  list.range_query(low, high, out);
  auto it = reference.lower_bound(low);
  std::size_t n = 0;
  for (; it != reference.end() && it->first <= high; ++it, ++n) {
    CHECK(n < out.size());
    CHECK_EQ(out[n].key, it->first);
    CHECK_EQ(out[n].value, it->second);
  }
  CHECK_EQ(out.size(), n);
}

template <typename ListT>
void test_variant(const char* name, Params params) {
  // Empty list behavior.
  {
    ListT list(params);
    CHECK(!list.get(10).has_value());
    CHECK(!list.erase(10));
    std::vector<KV> out;
    CHECK_EQ(list.range_query(1, 1000, out), 0u);
    CHECK(list.debug_validate());
  }
  // Random op fuzz vs reference model. Small node_size forces splits.
  {
    constexpr Key kRange = 2000;
    ListT list(params);
    std::map<Key, Value> reference;
    leap::util::Xoshiro256 rng(1234);
    for (int op = 0; op < 20000; ++op) {
      const Key key = static_cast<Key>(1 + rng.next_below(kRange));
      const int dial = static_cast<int>(rng.next_below(100));
      if (dial < 50) {
        const Value value = static_cast<Value>(rng.next());
        const bool inserted = list.insert(key, value);
        CHECK_EQ(inserted, reference.find(key) == reference.end());
        reference[key] = value;
      } else if (dial < 80) {
        const bool erased = list.erase(key);
        CHECK_EQ(erased, reference.erase(key) > 0);
      } else if (dial < 90) {
        const auto expected = reference.find(key);
        const auto actual = list.get(key);
        CHECK_EQ(actual.has_value(), expected != reference.end());
        if (actual) CHECK_EQ(*actual, expected->second);
      } else {
        const Key span = static_cast<Key>(rng.next_below(200));
        check_range(list, reference, key, key + span);
      }
    }
    CHECK(list.debug_validate());
    CHECK_EQ(list.size_slow(), reference.size());
    check_against_reference(list, reference, kRange);
    check_range(list, reference, 1, kRange);
  }
  // bulk_load then point/range reads.
  {
    ListT list(params);
    std::vector<KV> pairs;
    std::map<Key, Value> reference;
    for (Key k = 2; k <= 3000; k += 3) {
      pairs.push_back(KV{k, k * 7});
      reference[k] = k * 7;
    }
    list.bulk_load(pairs);
    CHECK(list.debug_validate());
    CHECK_EQ(list.size_slow(), reference.size());
    check_against_reference(list, reference, 3000);
    check_range(list, reference, 500, 1500);
    // Updates over a preloaded list.
    CHECK(!list.insert(2, 99));  // overwrite
    CHECK_EQ(*list.get(2), 99);
    CHECK(list.insert(3, 33));   // fresh key
    CHECK(list.erase(5));
    CHECK(!list.get(5).has_value());
    CHECK(list.debug_validate());
  }
  std::printf("  variant %s ok\n", name);
}

}  // namespace

int main() {
  const Params small{.node_size = 8, .max_level = 6};
  test_variant<LeapListLT>("LT", small);
  test_variant<LeapListCOP>("COP", small);
  test_variant<LeapListTM>("TM", small);
  test_variant<LeapListRW>("RW", small);
  // A paper-sized configuration, lighter op count.
  const Params paper{.node_size = 300, .max_level = 10};
  test_variant<LeapListLT>("LT/300", paper);
  return leap::test::finish("test_leaplist");
}
