// Typed facade tests: codec round-trip/order-preservation properties,
// OrderedMap concept conformance for every policy, Map functional fuzz
// against std::map (negative keys included), append-vs-replace
// semantics, bounded scans, snapshot cursors, composable typed
// transactions, and early-exit visitor semantics under concurrent
// splits.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <map>
#include <thread>
#include <vector>

#include "leaplist/codec.hpp"
#include "leaplist/map.hpp"
#include "leaplist/skiplist.hpp"
#include "leaplist/txn.hpp"
#include "test_common.hpp"
#include "util/random.hpp"

namespace codec = leap::codec;
namespace policy = leap::policy;
using leap::core::Params;

namespace {

// --- Concept conformance (compile-time) ------------------------------

template <typename P>
using I64Map = leap::Map<std::int64_t, std::int64_t, P>;

static_assert(leap::OrderedMap<I64Map<policy::LT>>);
static_assert(leap::OrderedMap<I64Map<policy::COP>>);
static_assert(leap::OrderedMap<I64Map<policy::TM>>);
static_assert(leap::OrderedMap<I64Map<policy::RW>>);
static_assert(leap::OrderedMap<I64Map<policy::SkipCAS>>);
static_assert(leap::OrderedMap<I64Map<policy::SkipTM>>);
static_assert(
    leap::OrderedMap<leap::Map<std::uint32_t, double, policy::LT>>);
static_assert(!leap::OrderedMap<int>);
static_assert(!leap::OrderedMap<std::map<int, int>>);

// Only the TM policy composes.
template <typename M>
constexpr bool kHasComposable = requires(M m, leap::stm::Tx& tx) {
  m.insert_in(tx, typename M::key_type{}, typename M::mapped_type{});
};
static_assert(kHasComposable<I64Map<policy::TM>>);
static_assert(!kHasComposable<I64Map<policy::LT>>);
static_assert(!kHasComposable<I64Map<policy::SkipCAS>>);

// Codec trait checks.
static_assert(codec::KeyCodecFor<codec::Default<std::int32_t>, std::int32_t>);
static_assert(
    codec::KeyCodecFor<codec::Default<std::uint64_t>, std::uint64_t>);
static_assert(codec::ValueCodecFor<codec::BitcastValue<double>, double>);
static_assert(codec::ValueCodecFor<codec::BitcastValue<void*>, void*>);

// --- Codec properties ------------------------------------------------

template <typename K>
void check_roundtrip_and_order(const std::vector<K>& keys) {
  using C = codec::Default<K>;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    CHECK(C::decode(C::encode(keys[i])) == keys[i]);
    for (std::size_t j = 0; j < keys.size(); ++j) {
      CHECK_EQ(keys[i] < keys[j], C::encode(keys[i]) < C::encode(keys[j]));
    }
  }
}

void test_codecs() {
  check_roundtrip_and_order<std::int64_t>(
      {std::numeric_limits<std::int64_t>::min() + 1, -1000000, -1, 0, 1,
       42, std::numeric_limits<std::int64_t>::max() - 1});
  check_roundtrip_and_order<std::int32_t>(
      {std::numeric_limits<std::int32_t>::min(), -7, 0, 7,
       std::numeric_limits<std::int32_t>::max()});
  check_roundtrip_and_order<std::uint32_t>(
      {0u, 1u, 1u << 31, std::numeric_limits<std::uint32_t>::max()});
  // uint64: the full word, crossing the signed midpoint (top two values
  // are reserved for the engine sentinels).
  check_roundtrip_and_order<std::uint64_t>(
      {0ull, 1ull, (1ull << 63) - 1, 1ull << 63, (1ull << 63) + 1,
       std::numeric_limits<std::uint64_t>::max() - 2});

  // Packed pairs order by (hi, lo), negative hi included.
  using PK = codec::PackedPair<std::int64_t, std::uint64_t, 24>;
  using PC = codec::Default<PK>;
  const std::vector<PK> pairs = {{-5000, 0}, {-5000, 77},
                                 {-1, (1ull << 24) - 1}, {0, 0}, {0, 1},
                                 {123456, 9}, {123457, 0}};
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const PK back = PC::decode(PC::encode(pairs[i]));
    CHECK(back == pairs[i]);
    for (std::size_t j = 0; j < pairs.size(); ++j) {
      CHECK_EQ(pairs[i] < pairs[j],
               PC::encode(pairs[i]) < PC::encode(pairs[j]));
    }
  }

  // Value codecs: bit-exact round trips for word-sized PODs.
  struct Pod {
    std::int32_t a;
    std::uint16_t b;
    bool operator==(const Pod&) const = default;
  };
  const Pod pod{-77, 999};
  CHECK(codec::BitcastValue<Pod>::decode(
            codec::BitcastValue<Pod>::encode(pod)) == pod);
  const double d = -3.75e18;
  CHECK_EQ(codec::BitcastValue<double>::decode(
               codec::BitcastValue<double>::encode(d)),
           d);
  int dummy = 0;
  int* const p = &dummy;
  CHECK(codec::BitcastValue<int*>::decode(
            codec::BitcastValue<int*>::encode(p)) == p);
}

// --- Functional fuzz vs std::map (negative keys) ---------------------

template <typename P>
void test_map_fuzz(const char* name) {
  using M = leap::Map<std::int32_t, std::int64_t, P>;
  M map(Params{.node_size = 8, .max_level = 6});
  std::map<std::int32_t, std::int64_t> reference;
  leap::util::Xoshiro256 rng(2024);
  constexpr std::int32_t kHalf = 500;  // keys in [-kHalf, kHalf]
  for (int op = 0; op < 12000; ++op) {
    const auto key = static_cast<std::int32_t>(
        rng.next_below(2 * kHalf + 1) - kHalf);
    const int dial = static_cast<int>(rng.next_below(100));
    if (dial < 45) {
      const auto value = static_cast<std::int64_t>(rng.next());
      const bool inserted = map.insert(key, value);
      CHECK_EQ(inserted, reference.find(key) == reference.end());
      reference[key] = value;
    } else if (dial < 75) {
      CHECK_EQ(map.erase(key), reference.erase(key) > 0);
    } else if (dial < 85) {
      const auto expected = reference.find(key);
      const auto actual = map.get(key);
      CHECK_EQ(actual.has_value(), expected != reference.end());
      if (actual) CHECK_EQ(*actual, expected->second);
    } else {
      const auto span =
          static_cast<std::int32_t>(rng.next_below(200));
      const std::int32_t low = key;
      const auto high = static_cast<std::int32_t>(
          std::min<std::int64_t>(kHalf, std::int64_t{low} + span));
      std::vector<std::pair<std::int32_t, std::int64_t>> got;
      map.for_range(low, high, leap::append_to(got));
      auto it = reference.lower_bound(low);
      std::size_t n = 0;
      for (; it != reference.end() && it->first <= high; ++it, ++n) {
        CHECK(n < got.size());
        CHECK_EQ(got[n].first, it->first);
        CHECK_EQ(got[n].second, it->second);
      }
      CHECK_EQ(got.size(), n);
    }
  }
  CHECK_EQ(map.size_slow(), reference.size());
  CHECK(map.debug_validate());

  // Bounded scan is explicit APPEND: the prefix survives.
  std::vector<std::pair<std::int32_t, std::int64_t>> out = {{-9999, -9999}};
  const std::size_t appended = map.scan(-kHalf, 10, out);
  CHECK(appended <= 10);
  CHECK_EQ(out.size(), 1 + appended);
  CHECK_EQ(out[0].first, -9999);
  auto it = reference.begin();
  for (std::size_t i = 0; i < appended; ++i, ++it) {
    CHECK_EQ(out[1 + i].first, it->first);
  }

  // Early exit: visit exactly 3 pairs of a wide range.
  if (reference.size() >= 3) {
    std::size_t seen = 0;
    const std::size_t visited =
        map.for_range(-kHalf, kHalf, [&](std::int32_t, std::int64_t) {
          return ++seen < 3;
        });
    CHECK_EQ(seen, 3u);
    CHECK_EQ(visited, 3u);
  }

  // Snapshot cursor: materialized once, stable across later updates.
  auto cursor = map.snapshot(-kHalf, kHalf);
  CHECK_EQ(cursor.size(), reference.size());
  map.insert(kHalf, 1);
  map.erase(reference.begin()->first);
  std::size_t walked = 0;
  for (auto ref = reference.begin(); cursor.valid();
       cursor.next(), ++ref, ++walked) {
    CHECK_EQ(cursor.key(), ref->first);
    CHECK_EQ(cursor.value(), ref->second);
  }
  CHECK_EQ(walked, reference.size());
  std::printf("  fuzz %s ok\n", name);
}

// --- Typed maps compose in leap::txn ---------------------------------

void test_typed_txn() {
  using M = leap::Map<std::uint32_t, std::int64_t, policy::TM>;
  M a(Params{.node_size = 8, .max_level = 6});
  M b(Params{.node_size = 8, .max_level = 6});
  for (std::uint32_t k = 1; k <= 100; ++k) a.insert(k, k);
  // Atomic move of the odd keys from a to b.
  leap::txn([&](leap::stm::Tx& tx) {
    for (std::uint32_t k = 1; k <= 100; k += 2) {
      const auto v = a.get_in(tx, k);
      CHECK(v.has_value());
      a.erase_in(tx, k);
      b.insert_in(tx, k, *v);
    }
  });
  CHECK_EQ(a.size_slow(), 50u);
  CHECK_EQ(b.size_slow(), 50u);
  // One transaction stacks both maps' ranges into one buffer (the
  // append-vs-replace footgun this API retires).
  std::vector<std::pair<std::uint32_t, std::int64_t>> both;
  leap::txn([&](leap::stm::Tx& tx) {
    both.clear();
    a.for_range_in(tx, 1, 100, leap::append_to(both));
    b.for_range_in(tx, 1, 100, leap::append_to(both));
  });
  CHECK_EQ(both.size(), 100u);
  for (std::size_t i = 0; i < 50; ++i) {
    // Evens stayed in a; odds moved to b.
    CHECK_EQ(both[i].first, 2 * (i + 1));
    CHECK_EQ(both[50 + i].first, 2 * i + 1);
  }
  // Read-your-writes through the typed facade: an uncommitted insert is
  // visible to a later range in the same transaction. The counter rolls
  // back on restart (the hybrid walk falls back to the instrumented
  // search when it meets this transaction's own buffered writes).
  leap::txn([&](leap::stm::Tx& tx) {
    b.insert_in(tx, 101, 101);
    struct Counter {
      std::size_t hits = 0;
      void operator()(std::uint32_t k, std::int64_t) {
        CHECK_EQ(k, 101u);
        ++hits;
      }
      void on_restart() { hits = 0; }
    } counter;
    b.for_range_in(tx, 101, 200, counter);
    CHECK_EQ(counter.hits, 1u);
    b.erase_in(tx, 101);
  });
  CHECK(!b.contains(101));
}

// --- Early-exit visitation under concurrent splits -------------------

template <typename P>
void test_early_exit_concurrent(const char* name) {
  using M = leap::Map<std::int64_t, std::int64_t, P>;
  // Tiny nodes so inserts split constantly under the readers' feet.
  M map(Params{.node_size = 4, .max_level = 8});
  constexpr std::int64_t kRange = 20000;
  {
    std::vector<std::pair<std::int64_t, std::int64_t>> seed;
    for (std::int64_t k = 2; k <= kRange; k += 2) seed.push_back({k, k});
    map.bulk_load(seed);
  }
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    leap::util::Xoshiro256 rng(7);
    while (!stop.load(std::memory_order_relaxed)) {
      const auto key =
          static_cast<std::int64_t>(1 + rng.next_below(kRange));
      if ((rng.next() & 1) != 0) {
        map.insert(key, key);
      } else {
        map.erase(key);
      }
    }
  });
  const auto deadline = std::chrono::steady_clock::now() +
                        leap::test::stress_duration(
                            std::chrono::milliseconds(300));
  leap::util::Xoshiro256 rng(11);
  while (std::chrono::steady_clock::now() < deadline) {
    const auto low = static_cast<std::int64_t>(1 + rng.next_below(kRange));
    const std::size_t limit = 1 + rng.next_below(64);
    std::vector<std::int64_t> keys;
    struct Probe {
      std::vector<std::int64_t>& keys;
      std::size_t limit;
      bool operator()(std::int64_t k, std::int64_t v) {
        CHECK_EQ(k, v);  // values always mirror keys in this workload
        keys.push_back(k);
        return keys.size() < limit;
      }
      void on_restart() { keys.clear(); }
    } probe{keys, limit};
    const std::size_t visited = map.for_range(low, kRange, probe);
    CHECK_EQ(visited, keys.size());
    CHECK(keys.size() <= limit);
    // The committed visitation is a sorted prefix of [low, kRange].
    for (std::size_t i = 0; i < keys.size(); ++i) {
      CHECK(keys[i] >= low && keys[i] <= kRange);
      if (i > 0) CHECK(keys[i] > keys[i - 1]);
    }
  }
  stop.store(true, std::memory_order_release);
  writer.join();
  CHECK(map.debug_validate());
  std::printf("  early-exit %s ok\n", name);
}

}  // namespace

int main() {
  test_codecs();
  test_map_fuzz<policy::LT>("LT");
  test_map_fuzz<policy::COP>("COP");
  test_map_fuzz<policy::TM>("TM");
  test_map_fuzz<policy::RW>("RW");
  test_typed_txn();
  test_early_exit_concurrent<policy::LT>("LT");
  test_early_exit_concurrent<policy::TM>("TM");
  return leap::test::finish("test_map");
}
