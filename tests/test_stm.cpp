// STM unit + concurrency tests: read-your-writes, isolation/abort on
// conflicting commits, raw vs transactional interplay, and the
// 8-thread counter-increment linearizability check from the issue.
#include <atomic>
#include <thread>
#include <vector>

#include "stm/stm.hpp"
#include "test_common.hpp"
#include "util/random.hpp"

using namespace leap::stm;

namespace {

void test_basic_commit() {
  TxField<std::uint64_t> field;
  CHECK_EQ(field.load(), 0u);
  Tx& tx = tls_tx();
  atomically(tx, [&](Tx& t) { field.tx_write(t, 41u); });
  CHECK_EQ(field.load(), 41u);
  field.store(7u);
  CHECK_EQ(field.load(), 7u);
}

void test_read_your_writes() {
  TxField<std::uint64_t> a;
  TxField<std::uint64_t> b;
  Tx& tx = tls_tx();
  atomically(tx, [&](Tx& t) {
    a.tx_write(t, 10u);
    CHECK_EQ(a.tx_read(t), 10u);  // uncommitted write visible to self
    a.tx_write(t, 20u);
    CHECK_EQ(a.tx_read(t), 20u);  // last write wins
    b.tx_write(t, a.tx_read(t) + 1);
  });
  CHECK_EQ(a.load(), 20u);
  CHECK_EQ(b.load(), 21u);
}

void test_explicit_abort() {
  TxField<std::uint64_t> field;
  Tx& tx = tls_tx();
  const bool committed = try_atomically(tx, [&](Tx& t) {
    field.tx_write(t, 99u);
    t.abort();
  });
  CHECK(!committed);
  CHECK_EQ(field.load(), 0u);  // aborted writes never publish
}

void test_conflict_abort_and_retry() {
  // 8 threads × N increments of one counter: every successful commit
  // must see the latest value, so lost updates mean a broken STM.
  constexpr unsigned kThreads = 8;
  constexpr std::uint64_t kIncrements = 5000;
  TxField<std::uint64_t> counter;
  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> total_aborts{0};
  for (unsigned i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      Tx& tx = tls_tx();
      const std::uint64_t aborts_before = tx.aborts();
      for (std::uint64_t n = 0; n < kIncrements; ++n) {
        atomically(tx, [&](Tx& t) {
          counter.tx_write(t, counter.tx_read(t) + 1);
        });
      }
      total_aborts.fetch_add(tx.aborts() - aborts_before);
    });
  }
  for (auto& thread : threads) thread.join();
  CHECK_EQ(counter.load(), kThreads * kIncrements);
}

void test_isolation_invariant() {
  // Writers keep a + b constant; transactional readers must never
  // observe a torn pair (TL2 opacity).
  TxField<std::uint64_t> a(1000u);
  TxField<std::uint64_t> b(0u);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Tx& tx = tls_tx();
    leap::util::Xoshiro256 rng(3);
    while (!stop.load()) {
      const std::uint64_t delta = rng.next_below(10);
      atomically(tx, [&](Tx& t) {
        const std::uint64_t va = a.tx_read(t);
        const std::uint64_t vb = b.tx_read(t);
        a.tx_write(t, va - delta);
        b.tx_write(t, vb + delta);
      });
    }
  });
  std::vector<std::thread> readers;
  for (int i = 0; i < 3; ++i) {
    readers.emplace_back([&] {
      Tx& tx = tls_tx();
      for (int n = 0; n < 20000; ++n) {
        std::uint64_t sum = 0;
        atomically(tx, [&](Tx& t) {
          sum = a.tx_read(t) + b.tx_read(t);
        });
        CHECK_EQ(sum, 1000u);
      }
    });
  }
  for (auto& reader : readers) reader.join();
  stop.store(true);
  writer.join();
  CHECK_EQ(a.load() + b.load(), 1000u);
}

void test_typed_fields() {
  TxField<std::int64_t> signed_field(-5);
  CHECK_EQ(signed_field.load(), -5);
  Tx& tx = tls_tx();
  atomically(tx, [&](Tx& t) {
    signed_field.tx_write(t, signed_field.tx_read(t) - 10);
  });
  CHECK_EQ(signed_field.load(), -15);
}

void test_deferred_actions() {
  // Commit actions run exactly once after the committing attempt; abort
  // actions run per aborted attempt. Force one abort by raw-storing to
  // a field after the transaction read it (the raw store bumps the
  // clock, so the next in-tx read sees a too-new version).
  TxField<std::uint64_t> a;
  TxField<std::uint64_t> b;
  Tx& tx = tls_tx();
  int commits = 0;
  int aborts = 0;
  int attempts = 0;
  atomically(tx, [&](Tx& t) {
    t.defer_on_commit([&] { ++commits; });
    t.defer_on_abort([&] { ++aborts; });
    (void)a.tx_read(t);
    if (attempts++ == 0) b.store(1u);
    (void)b.tx_read(t);  // first attempt: version > rv_, aborts
    a.tx_write(t, 7u);
  });
  CHECK_EQ(attempts, 2);
  CHECK_EQ(commits, 1);
  CHECK_EQ(aborts, 1);
  CHECK_EQ(a.load(), 7u);
  // A failed try_atomically runs abort actions, not commit actions.
  commits = 0;
  aborts = 0;
  const bool committed = try_atomically(tx, [&](Tx& t) {
    t.defer_on_commit([&] { ++commits; });
    t.defer_on_abort([&] { ++aborts; });
    t.abort();
  });
  CHECK(!committed);
  CHECK_EQ(commits, 0);
  CHECK_EQ(aborts, 1);
}

void test_flat_nesting() {
  // atomically on an already-active Tx enlists in the enclosing
  // transaction: one commit publishes both closures' writes, and inner
  // deferred actions run at the outer outcome.
  TxField<std::uint64_t> a;
  TxField<std::uint64_t> b;
  Tx& tx = tls_tx();
  int inner_commits = 0;
  const std::uint64_t commits_before = tx.commits();
  atomically(tx, [&](Tx& t) {
    a.tx_write(t, 1u);
    atomically(t, [&](Tx& inner) {
      CHECK(&inner == &t);
      CHECK(inner.in_tx());
      inner.defer_on_commit([&] { ++inner_commits; });
      b.tx_write(inner, a.tx_read(inner) + 1);
    });
    CHECK(try_atomically(t, [&](Tx& inner) { a.tx_write(inner, 5u); }));
  });
  CHECK_EQ(tx.commits(), commits_before + 1);  // one flat transaction
  CHECK_EQ(inner_commits, 1);
  CHECK_EQ(a.load(), 5u);
  CHECK_EQ(b.load(), 2u);
  // has_write exposes the buffered write set to composable ops.
  atomically(tx, [&](Tx& t) {
    CHECK(!t.has_write(a));
    a.tx_write(t, 9u);
    CHECK(t.has_write(a));
    CHECK(!t.has_write(b));
  });
}

}  // namespace

int main() {
  test_basic_commit();
  test_read_your_writes();
  test_explicit_abort();
  test_conflict_abort_and_retry();
  test_isolation_invariant();
  test_typed_fields();
  test_deferred_actions();
  test_flat_nesting();
  return leap::test::finish("test_stm");
}
