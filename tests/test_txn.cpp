// Multi-list transaction battery: leap::txn composing LeapListTM ops
// across several lists must be one atomic unit.
//
// Functional: multi-list inserts/moves/range snapshots in single
// transactions, same-list multi-op transactions (read-your-writes
// through the hybrid search fallback), split-inducing bulk updates
// inside one transaction, and return-value plumbing.
//
// Stress (the cross-list atomicity test TSan runs): writer threads
// atomically rotate keys between three lists while reader threads
// assert — from point reads and from multi-list range snapshots taken
// in one transaction — that every key is in exactly one list at every
// instant: never two, never none. LEAP_STRESS_MS scales the window.
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "leaplist/leaplist.hpp"
#include "leaplist/txn.hpp"
#include "test_common.hpp"
#include "util/random.hpp"
#include "util/spin_barrier.hpp"

using namespace leap::core;
namespace stm = leap::stm;

namespace {

constexpr Key kKeyRange = 192;

Value value_for(Key key) { return key * 3 + 1; }

std::chrono::milliseconds stress_duration() {
  return leap::test::stress_duration(std::chrono::milliseconds(400));
}

void test_multilist_functional() {
  const Params params{.node_size = 8, .max_level = 4};
  LeapListTM a(params);
  LeapListTM b(params);
  LeapListTM c(params);
  // One transaction populating three lists — far beyond one node's
  // capacity, so the same transaction splits nodes it created itself.
  leap::txn([&](stm::Tx& tx) {
    for (Key k = 1; k <= 40; ++k) {
      CHECK(a.insert_in(tx, k, value_for(k)));
      CHECK(b.insert_in(tx, k + 100, value_for(k)));
      CHECK(c.insert_in(tx, k + 200, value_for(k)));
    }
  });
  CHECK(a.debug_validate());
  CHECK(b.debug_validate());
  CHECK(c.debug_validate());
  CHECK_EQ(a.size_slow(), 40u);
  CHECK_EQ(b.size_slow(), 40u);
  CHECK_EQ(c.size_slow(), 40u);
  CHECK_EQ(*a.get(7), value_for(7));
  CHECK_EQ(*b.get(107), value_for(7));

  // Value update (insert of an existing key) returns false and is
  // visible to the same transaction's reads.
  const bool inserted = leap::txn([&](stm::Tx& tx) {
    const bool fresh = a.insert_in(tx, 7, 777);
    CHECK_EQ(*a.get_in(tx, 7), 777);
    return fresh;
  });
  CHECK(!inserted);
  CHECK_EQ(*a.get(7), 777);
  leap::txn([&](stm::Tx& tx) { a.insert_in(tx, 7, value_for(7)); });

  // Atomic move: erase from one list + insert into another, plus an
  // absent-key erase riding along (must stay false and harmless).
  leap::txn([&](stm::Tx& tx) {
    const auto value = a.get_in(tx, 1);
    CHECK(value.has_value());
    CHECK(a.erase_in(tx, 1));
    CHECK(b.insert_in(tx, 1, *value));
    CHECK(!c.erase_in(tx, 1));
  });
  CHECK(!a.get(1).has_value());
  CHECK_EQ(*b.get(1), value_for(1));

  // Same-list erase + reinsert in one transaction (read-your-writes:
  // the second op must see the first's buffered structural change).
  leap::txn([&](stm::Tx& tx) {
    CHECK(a.erase_in(tx, 2));
    CHECK(!a.get_in(tx, 2).has_value());
    CHECK(a.insert_in(tx, 2, 222));
    CHECK_EQ(*a.get_in(tx, 2), 222);
  });
  CHECK_EQ(*a.get(2), 222);
  CHECK(a.debug_validate());

  // Multi-list range snapshot in one transaction.
  std::vector<KV> ra;
  std::vector<KV> rb;
  std::vector<KV> rc;
  leap::txn([&](stm::Tx& tx) {
    a.range_in(tx, 1, 300, ra);
    b.range_in(tx, 1, 300, rb);
    c.range_in(tx, 1, 300, rc);
  });
  CHECK_EQ(ra.size(), 39u);  // key 1 moved to b
  CHECK_EQ(rb.size(), 41u);
  CHECK_EQ(rc.size(), 40u);

  // Mixed update + snapshot: the snapshot taken inside the transaction
  // sees the transaction's own earlier writes.
  leap::txn([&](stm::Tx& tx) {
    a.insert_in(tx, 50, value_for(50));
    a.range_in(tx, 1, 300, ra);
  });
  CHECK_EQ(ra.size(), 40u);

  // Single-op forms flat-nest inside an open transaction.
  leap::txn([&](stm::Tx& tx) {
    (void)tx;
    CHECK(a.insert(51, value_for(51)));
    CHECK_EQ(*a.get(51), value_for(51));
    CHECK(a.erase(51));
  });
  CHECK(!a.get(51).has_value());
  std::printf("  multilist functional ok\n");
}

// Writers rotate keys a->b->c->a; every key lives in exactly one list.
void test_cross_list_atomicity_stress() {
  constexpr unsigned kMovers = 4;
  constexpr unsigned kPointReaders = 2;
  constexpr unsigned kSnapshotReaders = 2;
  const Params params{.node_size = 16, .max_level = 6};
  LeapListTM lists[3] = {LeapListTM(params), LeapListTM(params),
                         LeapListTM(params)};
  {
    std::vector<KV> pairs;
    for (Key k = 1; k <= kKeyRange; ++k) pairs.push_back(KV{k, value_for(k)});
    lists[0].bulk_load(pairs);
  }
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> moves{0};
  leap::util::SpinBarrier barrier(kMovers + kPointReaders +
                                  kSnapshotReaders + 1);
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kMovers; ++t) {
    threads.emplace_back([&, t] {
      leap::util::Xoshiro256 rng(700 + t);
      std::uint64_t local = 0;
      barrier.arrive_and_wait();
      while (!stop.load(std::memory_order_relaxed)) {
        const Key key = static_cast<Key>(1 + rng.next_below(kKeyRange));
        leap::txn([&](stm::Tx& tx) {
          // Opacity makes in-transaction invariant checks safe: an
          // inconsistent read set aborts before values are returned.
          int holder = -1;
          for (int i = 0; i < 3; ++i) {
            const auto value = lists[i].get_in(tx, key);
            if (value.has_value()) {
              CHECK_EQ(*value, value_for(key));
              CHECK_EQ(holder, -1);  // never in two lists
              holder = i;
            }
          }
          CHECK(holder >= 0);  // never in none
          CHECK(lists[holder].erase_in(tx, key));
          CHECK(lists[(holder + 1) % 3].insert_in(tx, key, value_for(key)));
        });
        ++local;
      }
      moves.fetch_add(local, std::memory_order_relaxed);
    });
  }
  for (unsigned t = 0; t < kPointReaders; ++t) {
    threads.emplace_back([&, t] {
      leap::util::Xoshiro256 rng(800 + t);
      barrier.arrive_and_wait();
      while (!stop.load(std::memory_order_relaxed)) {
        const Key key = static_cast<Key>(1 + rng.next_below(kKeyRange));
        const int holders = leap::txn([&](stm::Tx& tx) {
          int count = 0;
          for (int i = 0; i < 3; ++i) {
            const auto value = lists[i].get_in(tx, key);
            if (value.has_value()) {
              CHECK_EQ(*value, value_for(key));
              ++count;
            }
          }
          return count;
        });
        CHECK_EQ(holders, 1);  // exactly one list holds the key
      }
    });
  }
  for (unsigned t = 0; t < kSnapshotReaders; ++t) {
    threads.emplace_back([&, t] {
      leap::util::Xoshiro256 rng(900 + t);
      std::vector<KV> snaps[3];
      std::vector<int> seen(kKeyRange + 1, 0);
      barrier.arrive_and_wait();
      while (!stop.load(std::memory_order_relaxed)) {
        // One transaction snapshots all three lists: together they must
        // hold every key exactly once.
        leap::txn([&](stm::Tx& tx) {
          for (int i = 0; i < 3; ++i) {
            lists[i].range_in(tx, 1, kKeyRange, snaps[i]);
          }
        });
        std::fill(seen.begin(), seen.end(), 0);
        std::size_t total = 0;
        for (const auto& snap : snaps) {
          total += snap.size();
          for (const KV& kv : snap) {
            CHECK(kv.key >= 1 && kv.key <= kKeyRange);
            CHECK_EQ(kv.value, value_for(kv.key));
            ++seen[static_cast<std::size_t>(kv.key)];
          }
        }
        CHECK_EQ(total, static_cast<std::size_t>(kKeyRange));
        for (Key k = 1; k <= kKeyRange; ++k) {
          CHECK_EQ(seen[static_cast<std::size_t>(k)], 1);
        }
      }
    });
  }
  barrier.arrive_and_wait();
  std::this_thread::sleep_for(stress_duration());
  stop.store(true, std::memory_order_release);
  for (auto& thread : threads) thread.join();
  // Quiescent agreement: structures valid, population conserved.
  std::size_t total = 0;
  for (auto& list : lists) {
    CHECK(list.debug_validate());
    total += list.size_slow();
  }
  CHECK_EQ(total, static_cast<std::size_t>(kKeyRange));
  for (Key k = 1; k <= kKeyRange; ++k) {
    int holders = 0;
    for (auto& list : lists) {
      const auto value = list.get(k);
      if (value.has_value()) {
        CHECK_EQ(*value, value_for(k));
        ++holders;
      }
    }
    CHECK_EQ(holders, 1);
  }
  std::printf("  cross-list atomicity ok (%llu moves)\n",
              static_cast<unsigned long long>(moves.load()));
}

}  // namespace

int main() {
  test_multilist_functional();
  test_cross_list_atomicity_stress();
  return leap::test::finish("test_txn");
}
