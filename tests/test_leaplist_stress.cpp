// Concurrency stress for all four variants — the test TSan exists for.
//
// Writers churn insert(key, key * 3 + 1) / erase over a small hot key
// range (maximizing node replacement races); readers run lookups and
// range queries. Every range query must be a consistent snapshot of
// complete operations: sorted, duplicate-free, in-bounds keys whose
// values obey the writer invariant. Afterwards the structure must pass
// the full invariant walk and agree with a sequential re-check.
//
// LEAP_STRESS_MS scales the run (default 400 ms per variant; CI TSan
// uses a shorter window).
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "leaplist/leaplist.hpp"
#include "test_common.hpp"
#include "util/ebr.hpp"
#include "util/random.hpp"
#include "util/spin_barrier.hpp"

using namespace leap::core;

namespace {

constexpr Key kKeyRange = 512;

Value value_for(Key key) { return key * 3 + 1; }

std::chrono::milliseconds stress_duration() {
  return leap::test::stress_duration(std::chrono::milliseconds(400));
}

template <typename ListT>
void stress_variant(const char* name) {
  constexpr unsigned kWriters = 4;
  constexpr unsigned kReaders = 2;
  constexpr unsigned kScanners = 2;
  ListT list(Params{.node_size = 16, .max_level = 6});
  {
    std::vector<KV> pairs;
    for (Key k = 1; k <= kKeyRange; k += 2) {
      pairs.push_back(KV{k, value_for(k)});
    }
    list.bulk_load(pairs);
  }
  std::atomic<bool> stop{false};
  leap::util::SpinBarrier barrier(kWriters + kReaders + kScanners + 1);
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      leap::util::Xoshiro256 rng(100 + t);
      barrier.arrive_and_wait();
      while (!stop.load(std::memory_order_relaxed)) {
        const Key key = static_cast<Key>(1 + rng.next_below(kKeyRange));
        if ((rng.next() & 1) != 0) {
          list.insert(key, value_for(key));
        } else {
          list.erase(key);
        }
      }
    });
  }
  for (unsigned t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      leap::util::Xoshiro256 rng(200 + t);
      barrier.arrive_and_wait();
      while (!stop.load(std::memory_order_relaxed)) {
        const Key key = static_cast<Key>(1 + rng.next_below(kKeyRange));
        const auto value = list.get(key);
        if (value) CHECK_EQ(*value, value_for(key));
      }
    });
  }
  for (unsigned t = 0; t < kScanners; ++t) {
    threads.emplace_back([&, t] {
      leap::util::Xoshiro256 rng(300 + t);
      std::vector<KV> out;
      barrier.arrive_and_wait();
      while (!stop.load(std::memory_order_relaxed)) {
        const Key low = static_cast<Key>(1 + rng.next_below(kKeyRange));
        const Key high = low + static_cast<Key>(rng.next_below(64));
        list.range_query(low, high, out);
        Key prev = low - 1;
        for (const KV& kv : out) {
          CHECK(kv.key >= low);
          CHECK(kv.key <= high);
          CHECK(kv.key > prev);  // sorted, no duplicates
          CHECK_EQ(kv.value, value_for(kv.key));
          prev = kv.key;
        }
      }
    });
  }
  barrier.arrive_and_wait();
  std::this_thread::sleep_for(stress_duration());
  stop.store(true, std::memory_order_release);
  for (auto& thread : threads) thread.join();
  CHECK(list.debug_validate());
  // Sequential agreement: point reads match a full scan.
  std::vector<KV> all;
  list.range_query(1, kKeyRange, all);
  CHECK_EQ(all.size(), list.size_slow());
  for (const KV& kv : all) {
    const auto value = list.get(kv.key);
    CHECK(value.has_value());
    CHECK_EQ(*value, kv.value);
  }
  std::printf("  stress %s ok (%zu keys at rest)\n", name, all.size());
}

/// Recycling churn (PR 4): tiny nodes so nearly every insert splits and
/// every erase shrinks — maximal node replacement through the EBR-fed
/// block pool, with readers racing the recycled blocks. A stale-node
/// resurrection (a reclaimed block reused while a search could still
/// see it) shows up as a value/invariant violation here, as a poison
/// failure in Debug (pool_debug_verify / the abort in pool_alloc), and
/// as a use-after-free under ASan, where the pool is pass-through.
template <typename ListT>
void churn_variant(const char* name) {
  constexpr unsigned kWriters = 4;
  constexpr unsigned kReaders = 2;
  constexpr Key kChurnRange = 2048;
  ListT list(Params{.node_size = 4, .max_level = 6});
  {
    std::vector<KV> pairs;
    for (Key k = 1; k <= kChurnRange; k += 3) {
      pairs.push_back(KV{k, value_for(k)});
    }
    list.bulk_load(pairs);
  }
  std::atomic<bool> stop{false};
  leap::util::SpinBarrier barrier(kWriters + kReaders + 1);
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      leap::util::Xoshiro256 rng(400 + t);
      barrier.arrive_and_wait();
      while (!stop.load(std::memory_order_relaxed)) {
        // Insert bursts drive splits; erase bursts re-feed the pool.
        const Key base = static_cast<Key>(1 + rng.next_below(kChurnRange));
        for (Key k = base; k < base + 6 && k <= kChurnRange; ++k) {
          list.insert(k, value_for(k));
        }
        for (Key k = base; k < base + 6 && k <= kChurnRange; ++k) {
          if ((rng.next() & 1) != 0) list.erase(k);
        }
      }
      // Each writer's own cached blocks must hold their poison — they
      // were filled on reclamation and nothing may touch them since.
      CHECK(leap::util::ebr::pool_debug_verify());
    });
  }
  for (unsigned t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      leap::util::Xoshiro256 rng(500 + t);
      std::vector<KV> out;
      barrier.arrive_and_wait();
      while (!stop.load(std::memory_order_relaxed)) {
        const Key key = static_cast<Key>(1 + rng.next_below(kChurnRange));
        const auto value = list.get(key);
        if (value) CHECK_EQ(*value, value_for(key));
        const Key low = key;
        const Key high = low + 64;
        list.range_query(low, high, out);
        Key prev = low - 1;
        for (const KV& kv : out) {
          CHECK(kv.key >= low && kv.key <= high && kv.key > prev);
          CHECK_EQ(kv.value, value_for(kv.key));
          prev = kv.key;
        }
      }
    });
  }
  barrier.arrive_and_wait();
  std::this_thread::sleep_for(stress_duration());
  stop.store(true, std::memory_order_release);
  for (auto& thread : threads) thread.join();
  CHECK(list.debug_validate());
  // Debug builds: every block cached for reuse must still carry its
  // full poison fill — a single overwritten byte means some thread
  // wrote into a node after it was reclaimed.
  CHECK(leap::util::ebr::pool_debug_verify());
  std::printf("  churn %s ok (%zu keys at rest, pool %s)\n", name,
              list.size_slow(),
              leap::util::ebr::pool_enabled() ? "recycling" : "pass-through");
}

/// Bundle reclamation (PR 10): a long-pinned scanner announces the
/// oldest timestamp in the system and holds it across a writer churn —
/// its as-of view must stay frozen (identical on every re-walk) and
/// its walks must never fail (the announced slot blocks pruning of the
/// history it needs). After the pin releases, one reclamation sweep
/// must collapse every bundle back to a single entry — the long
/// scanner caused growth, not a leak — and the recycled entry blocks
/// must hold their poison (pool_debug_verify).
template <typename ListT>
void bundle_reclaim_variant(const char* name) {
  constexpr unsigned kWriters = 4;
  constexpr Key kRange = 256;
  ListT list(Params{.node_size = 8, .max_level = 6});
  {
    std::vector<KV> pairs;
    for (Key k = 1; k <= kRange; k += 2) pairs.push_back(KV{k, value_for(k)});
    list.bulk_load(pairs);
  }
  std::atomic<bool> stop{false};
  leap::util::SpinBarrier barrier(kWriters + 1);
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      leap::util::Xoshiro256 rng(600 + t);
      barrier.arrive_and_wait();
      while (!stop.load(std::memory_order_relaxed)) {
        const Key key = static_cast<Key>(1 + rng.next_below(kRange));
        if ((rng.next() & 1) != 0) {
          list.insert(key, value_for(key));
        } else {
          list.erase(key);
        }
      }
    });
  }
  const auto walk_at = [&](std::uint64_t ts, std::vector<KV>& out) {
    out.clear();
    auto sink = [&](Key k, Value v) { out.push_back(KV{k, v}); };
    std::size_t count = 0;
    bool stopped = false;
    return list.try_for_range_asof(ts, 1, kRange, sink, count, stopped);
  };
  {
    leap::bundle::ScanPin pin;  // the long-pinned scanner
    std::vector<KV> baseline;
    CHECK(walk_at(pin.ts(), baseline));
    barrier.arrive_and_wait();
    const auto deadline =
        std::chrono::steady_clock::now() + stress_duration();
    std::vector<KV> again;
    while (std::chrono::steady_clock::now() < deadline) {
      // The pinned view is frozen: same pairs, same order, every time,
      // no matter how much history the writers pile up meanwhile.
      CHECK(walk_at(pin.ts(), again));
      CHECK_EQ(again.size(), baseline.size());
      for (std::size_t i = 0; i < again.size(); ++i) {
        CHECK_EQ(again[i].key, baseline[i].key);
        CHECK_EQ(again[i].value, baseline[i].value);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }  // pin released: nothing protects the old history anymore
  stop.store(true, std::memory_order_release);
  for (auto& thread : threads) thread.join();
  CHECK(list.debug_validate());
  const std::size_t held = list.debug_max_bundle();
  // One explicit sweep with no announced scans collapses every bundle
  // to its single newest entry — growth under the pin was retention,
  // not a leak.
  list.bundle_prune_all();
  for (int i = 0; i < 4; ++i) leap::util::ebr::collect();
  CHECK_EQ(list.debug_max_bundle(), std::size_t{1});
  CHECK(leap::util::ebr::pool_debug_verify());
  std::printf("  bundle reclaim %s ok (max held %zu -> 1)\n", name, held);
}

}  // namespace

int main() {
  stress_variant<LeapListLT>("LT");
  stress_variant<LeapListCOP>("COP");
  stress_variant<LeapListTM>("TM");
  stress_variant<LeapListRW>("RW");
  churn_variant<LeapListLT>("LT");
  churn_variant<LeapListCOP>("COP");
  churn_variant<LeapListTM>("TM");
  bundle_reclaim_variant<LeapListLT>("LT");
  bundle_reclaim_variant<LeapListCOP>("COP");
  bundle_reclaim_variant<LeapListTM>("TM");
  bundle_reclaim_variant<LeapListRW>("RW");
  return leap::test::finish("test_leaplist_stress");
}
