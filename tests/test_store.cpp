// Durable-tier battery (leaplist/store/): the WAL record codec
// including the torn-tail and preallocated-zero-tail cases, the bloom
// filter's no-false-negative contract, RunWriter/Run round trips with
// tombstones and invalid-file rejection, Wal segment append/replay
// with a simulated crash tearing the final record, and the Store
// itself — log_batch + checkpoint eviction + cold gets + merged scans
// against a std::map oracle, reopen recovery (runs + WAL replay), and
// torn-WAL-tail tolerance across a reopen. Everything runs in a fresh
// mkdtemp directory and cleans up after itself; the file is in the
// ASan and TSan CI jobs.
#include <stdlib.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "leaplist/sharded.hpp"
#include "leaplist/store/format.hpp"
#include "leaplist/store/io.hpp"
#include "leaplist/store/run.hpp"
#include "leaplist/store/store.hpp"
#include "leaplist/store/wal.hpp"
#include "leaplist/txn.hpp"
#include "test_common.hpp"

namespace store = leap::store;
using store::Entry;
using store::kEntryTombstone;
using store::kEntryValue;

namespace {

using MapType = store::Store::MapType;
using Oracle = std::map<std::int64_t, std::int64_t>;

/// Fresh scratch directory under /tmp; removed (with contents) by
/// remove_dir below. Aborts the test on failure — nothing downstream
/// can run without it.
std::string make_dir() {
  char buf[] = "/tmp/leapstore-test-XXXXXX";
  CHECK(::mkdtemp(buf) != nullptr);
  return buf;
}

void remove_dir(const std::string& dir) {
  const std::string cmd = "rm -rf '" + dir + "'";
  (void)std::system(cmd.c_str());
}

/// The deterministic value oracle shared with the loadgen verify mode:
/// a key's expected value is a pure function of the key and a round
/// tag, so verification never needs client-side bookkeeping.
std::int64_t value_of(std::int64_t key, std::int64_t round = 0) {
  return key * 31 + 7 + round * 1'000'003;
}

/// Apply a LogOp batch through Store::log_batch with the same STM
/// closure shape the server uses, mirroring it into `oracle`.
void apply_batch(store::Store& st, MapType& map, Oracle& oracle,
                 const std::vector<store::LogOp>& ops) {
  CHECK(st.log_batch(ops.data(), ops.size(), [&] {
    leap::txn([&](leap::stm::Tx& tx) {
      for (const auto& op : ops) {
        if (op.erase) {
          map.erase_in(tx, op.key);
        } else {
          map.insert_in(tx, op.key, op.value);
        }
      }
    });
  }));
  for (const auto& op : ops) {
    if (op.erase) {
      oracle.erase(op.key);
    } else {
      oracle[op.key] = op.value;
    }
  }
}

/// The server's read path: memtable first, then the cold tier.
std::optional<std::int64_t> lookup(store::Store& st, MapType& map,
                                   std::int64_t key) {
  if (auto hot = map.get(key)) return hot;
  return st.get_cold(key);
}

/// Every oracle key readable with the oracle's value, a sample of
/// absent keys absent, and a full merged scan equal to the oracle.
void check_against_oracle(store::Store& st, MapType& map,
                          const Oracle& oracle) {
  for (const auto& [key, value] : oracle) {
    const auto got = lookup(st, map, key);
    CHECK(got.has_value());
    CHECK_EQ(*got, value);
  }
  for (std::int64_t key = 1'000'000; key < 1'000'050; ++key) {
    CHECK(!lookup(st, map, key).has_value());
  }
  std::vector<store::Store::ScanPair> out;
  const std::size_t n = st.scan_merged(-1, oracle.size() + 64, out);
  CHECK_EQ(n, oracle.size());
  CHECK_EQ(out.size(), oracle.size());
  auto it = oracle.begin();
  for (const auto& [key, value] : out) {
    CHECK(it != oracle.end());
    CHECK_EQ(key, it->first);
    CHECK_EQ(value, it->second);
    ++it;
  }
}

// --- WAL record codec -------------------------------------------------

void test_wal_codec() {
  std::vector<Entry> in = {
      {kEntryValue, 1, 10},
      {kEntryTombstone, 2, 0},
      {kEntryValue, -5'000'000'000LL, 123'456'789'012LL},
  };
  std::vector<std::uint8_t> buf;
  store::encode_wal_record(buf, in.data(), in.size());
  store::encode_wal_record(buf, in.data(), 1);  // second record

  // Decode both records back, byte-exactly.
  std::vector<Entry> out;
  std::size_t at = 0, consumed = 0;
  CHECK(store::parse_wal_record(buf.data(), buf.size(), consumed, out) ==
        store::WalParse::kRecord);
  at += consumed;
  CHECK_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    CHECK_EQ(out[i].kind, in[i].kind);
    CHECK_EQ(out[i].key, in[i].key);
    CHECK_EQ(out[i].value, in[i].value);
  }
  CHECK(store::parse_wal_record(buf.data() + at, buf.size() - at, consumed,
                                out) == store::WalParse::kRecord);
  at += consumed;
  CHECK_EQ(at, buf.size());
  CHECK(store::parse_wal_record(buf.data() + at, 0, consumed, out) ==
        store::WalParse::kEnd);

  // A preallocated segment's zero tail is a CLEAN end, not a tear.
  std::vector<std::uint8_t> zeros(64, 0);
  out.clear();
  CHECK(store::parse_wal_record(zeros.data(), zeros.size(), consumed, out) ==
        store::WalParse::kEnd);
  CHECK(out.empty());

  // Torn tails: short header, truncated payload, corrupt payload byte,
  // corrupt CRC, absurd length prefix — all stop replay, none decode.
  CHECK(store::parse_wal_record(buf.data(), 5, consumed, out) ==
        store::WalParse::kTorn);
  CHECK(store::parse_wal_record(buf.data(), buf.size() / 2, consumed, out) ==
        store::WalParse::kTorn);
  std::vector<std::uint8_t> bad = buf;
  bad[12] ^= 0xff;  // payload byte
  CHECK(store::parse_wal_record(bad.data(), bad.size(), consumed, out) ==
        store::WalParse::kTorn);
  bad = buf;
  bad[4] ^= 0x01;  // crc byte
  CHECK(store::parse_wal_record(bad.data(), bad.size(), consumed, out) ==
        store::WalParse::kTorn);
  bad = buf;
  bad[3] = 0x7f;  // length prefix far beyond kMaxWalRecordBytes
  CHECK(store::parse_wal_record(bad.data(), bad.size(), consumed, out) ==
        store::WalParse::kTorn);
  leap::test::finish("store wal codec");
}

// --- bloom filter -----------------------------------------------------

void test_bloom() {
  constexpr std::int64_t kKeys = 2000;
  store::Bloom bloom(kKeys);
  for (std::int64_t k = 0; k < kKeys; ++k) bloom.add(k * 7 + 1);
  // No false negatives, ever.
  for (std::int64_t k = 0; k < kKeys; ++k) {
    CHECK(bloom.maybe_contains(k * 7 + 1));
  }
  // False-positive rate is bounded: at 10 bits/key and 6 hashes the
  // theoretical rate is under 1%; allow 5% for slack.
  std::int64_t positives = 0;
  for (std::int64_t k = 0; k < 10'000; ++k) {
    if (bloom.maybe_contains(-k - 1)) ++positives;
  }
  CHECK(positives < 500);
  // An empty (default) filter claims nothing.
  store::Bloom empty;
  CHECK(!empty.maybe_contains(42));
  leap::test::finish("store bloom");
}

// --- run files --------------------------------------------------------

void test_run_round_trip() {
  const std::string dir = make_dir();
  const std::string path = dir + "/run-0-1.run";

  // Multiple blocks (> kRunBlockEntries entries), values + tombstones,
  // added in strictly ascending key order as the flush path does.
  constexpr std::int64_t kKeys = 1000;
  store::RunWriter writer(store::real_io(), path, kKeys);
  for (std::int64_t k = 0; k < kKeys; ++k) {
    Entry e;
    e.kind = (k % 10 == 3) ? kEntryTombstone : kEntryValue;
    e.key = k * 2;  // leave odd keys absent
    e.value = value_of(k * 2);
    writer.add(e);
  }
  std::string err;
  CHECK(writer.finish(&err));
  CHECK_EQ(writer.entry_count(), static_cast<std::uint64_t>(kKeys));

  auto run = store::Run::load(store::real_io(), path, 1, &err);
  CHECK(run != nullptr);
  CHECK_EQ(run->entry_count(), static_cast<std::uint64_t>(kKeys));
  CHECK_EQ(run->min_key(), std::int64_t{0});
  CHECK_EQ(run->max_key(), (kKeys - 1) * 2);
  CHECK_EQ(run->seq(), std::uint64_t{1});

  bool io_ok = true;
  for (std::int64_t k = 0; k < kKeys; ++k) {
    const auto hit = run->get(k * 2, &io_ok);
    CHECK(io_ok);
    CHECK(hit.has_value());
    if (k % 10 == 3) {
      CHECK(hit->tombstone);
    } else {
      CHECK(!hit->tombstone);
      CHECK_EQ(hit->value, value_of(k * 2));
    }
  }
  // Absent keys: inside the fence (odd) and outside it.
  CHECK(!run->get(1, &io_ok).has_value());
  CHECK(!run->get(-10, &io_ok).has_value());
  CHECK(!run->get(kKeys * 2 + 100, &io_ok).has_value());
  CHECK(!run->fence_contains(-1));
  CHECK(run->fence_contains(500));
  CHECK(run->fence_overlaps(-100, 0));
  CHECK(!run->fence_overlaps(-100, -1));

  // read_range returns values AND tombstones, in key order, capped.
  std::vector<Entry> range;
  const std::size_t got = run->read_range(10, 29, 100, range, &io_ok);
  CHECK(io_ok);
  CHECK_EQ(got, std::size_t{10});  // keys 10,12,...,28
  for (std::size_t i = 0; i < range.size(); ++i) {
    CHECK_EQ(range[i].key, 10 + static_cast<std::int64_t>(i) * 2);
  }
  std::vector<Entry> capped;
  CHECK_EQ(run->read_range(0, kKeys * 2, 7, capped, &io_ok),
           std::size_t{7});

  // A truncated file (no valid footer — crash mid-flush) must refuse
  // to load; recovery deletes such files.
  const std::string torn = dir + "/run-0-2.run";
  CHECK(std::system(("head -c 200 '" + path + "' > '" + torn + "'")
                        .c_str()) == 0);
  CHECK(store::Run::load(store::real_io(), torn, 2, &err) == nullptr);

  remove_dir(dir);
  leap::test::finish("store run round trip");
}

// --- WAL segments -----------------------------------------------------

void test_wal_segment_replay_and_tear() {
  const std::string dir = make_dir();
  const std::string path = dir + "/wal-0-1.log";

  store::Wal wal;
  std::string err;
  CHECK(wal.open_fresh(store::real_io(), path, 1, 0, 1u << 20, &err));
  std::vector<std::uint8_t> rec;
  constexpr int kRecords = 8;
  std::size_t rec_bytes = 0;
  for (int r = 0; r < kRecords; ++r) {
    rec.clear();
    Entry e{kEntryValue, r, value_of(r)};
    store::encode_wal_record(rec, &e, 1);
    rec_bytes = rec.size();
    const std::uint64_t end = wal.append(rec.data(), rec.size());
    CHECK_EQ(end, static_cast<std::uint64_t>(r + 1) * rec_bytes);
  }
  CHECK_EQ(wal.durable(), std::uint64_t{0});
  CHECK(wal.sync_flush(true));
  CHECK_EQ(wal.durable(), wal.appended());
  CHECK_EQ(wal.segment_bytes(), wal.appended());

  // Clean replay reads every record and stops at the preallocated
  // zero tail without reporting a tear.
  std::vector<Entry> ops;
  bool torn = true;
  CHECK(store::replay_wal_file(store::real_io(), path, ops, &torn, &err));
  CHECK(!torn);
  CHECK_EQ(ops.size(), static_cast<std::size_t>(kRecords));
  for (int r = 0; r < kRecords; ++r) {
    CHECK_EQ(ops[static_cast<std::size_t>(r)].key,
             static_cast<std::int64_t>(r));
    CHECK_EQ(ops[static_cast<std::size_t>(r)].value, value_of(r));
  }

  // Tear 5 bytes off the CONTENT end (not the preallocated file end):
  // the final record is now mid-append; replay keeps the prefix.
  CHECK(wal.truncate_tail_for_test(5));
  ops.clear();
  CHECK(store::replay_wal_file(store::real_io(), path, ops, &torn, &err));
  CHECK(torn);
  CHECK_EQ(ops.size(), static_cast<std::size_t>(kRecords - 1));
  wal.close_fd();

  // An empty fresh segment replays as zero ops, clean.
  store::Wal fresh;
  const std::string path2 = dir + "/wal-0-2.log";
  CHECK(fresh.open_fresh(store::real_io(), path2, 2, 0, 1u << 20, &err));
  CHECK(fresh.sync_flush(true));
  ops.clear();
  CHECK(store::replay_wal_file(store::real_io(), path2, ops, &torn, &err));
  CHECK(!torn);
  CHECK(ops.empty());
  fresh.close_fd();

  remove_dir(dir);
  leap::test::finish("store wal segment");
}

// --- Store: hot path, checkpoint, cold reads --------------------------

void test_store_basic() {
  const std::string dir = make_dir();
  MapType map({.shards = 4});
  store::StoreOptions opts;
  opts.data_dir = dir;
  opts.fsync_mode = store::FsyncMode::kGroup;
  opts.flush_poll_ms = 0;  // tests drive checkpoint() explicitly
  Oracle oracle;
  {
    store::Store st(map, opts);
    std::string err;
    CHECK(st.open(&err));
    CHECK_EQ(st.shard_count(), std::size_t{4});

    // Batches of puts, then spot erases, mirrored into the oracle.
    std::vector<store::LogOp> batch;
    for (std::int64_t k = 0; k < 400; ++k) {
      batch.push_back({false, k, value_of(k)});
      if (batch.size() == 32) {
        apply_batch(st, map, oracle, batch);
        batch.clear();
      }
    }
    if (!batch.empty()) apply_batch(st, map, oracle, batch);
    batch.clear();
    for (std::int64_t k = 0; k < 400; k += 5) {
      batch.push_back({true, k, 0});
    }
    apply_batch(st, map, oracle, batch);
    check_against_oracle(st, map, oracle);
    CHECK(st.stats().wal_appends > 0);
    CHECK(st.stats().wal_fsyncs > 0);

    // Checkpoint: contents freeze into runs, flushed keys leave the
    // memtable, reads fall through to the cold tier with the same
    // answers. Erased keys stay absent (tombstones shadow).
    st.checkpoint();
    CHECK(st.stats().flushes >= 1);
    CHECK(st.stats().runs >= 1);
    check_against_oracle(st, map, oracle);
    CHECK(st.stats().cold_hits > 0);

    // Overwrite some flushed keys, erase others, add fresh ones: the
    // memtable shadows the runs and the merge keeps one winner per
    // key. A second checkpoint stacks newer runs over older.
    batch.clear();
    for (std::int64_t k = 1; k < 100; k += 2) {
      batch.push_back({false, k, value_of(k, 1)});
    }
    batch.push_back({true, 2, 0});
    batch.push_back({false, 1'000, value_of(1'000)});
    apply_batch(st, map, oracle, batch);
    check_against_oracle(st, map, oracle);
    st.checkpoint();
    check_against_oracle(st, map, oracle);
    const auto s = st.stats();
    CHECK(s.flushes >= 2);
    CHECK(s.bloom_negatives + s.cold_hits > 0);
    st.close();
  }
  remove_dir(dir);
  leap::test::finish("store basic");
}

// --- Store: reopen recovery (runs + WAL replay) -----------------------

void test_store_reopen_recovery() {
  const std::string dir = make_dir();
  store::StoreOptions opts;
  opts.data_dir = dir;
  opts.fsync_mode = store::FsyncMode::kGroup;
  opts.flush_poll_ms = 0;
  Oracle oracle;

  // Round 1: puts, a checkpoint (so recovery exercises run loading),
  // then MORE writes that only the WAL holds, then a clean close.
  {
    MapType map({.shards = 4});
    store::Store st(map, opts);
    std::string err;
    CHECK(st.open(&err));
    std::vector<store::LogOp> batch;
    for (std::int64_t k = 0; k < 300; ++k) {
      batch.push_back({false, k, value_of(k)});
    }
    apply_batch(st, map, oracle, batch);
    st.checkpoint();
    batch.clear();
    for (std::int64_t k = 250; k < 320; ++k) {
      batch.push_back({false, k, value_of(k, 2)});
    }
    for (std::int64_t k = 0; k < 50; k += 7) batch.push_back({true, k, 0});
    apply_batch(st, map, oracle, batch);
    st.close();
  }

  // Round 2: a fresh map + store over the same directory must replay
  // to exactly the oracle: runs for the checkpointed prefix, WAL
  // entries for everything after.
  {
    MapType map({.shards = 4});
    store::Store st(map, opts);
    std::string err;
    CHECK(st.open(&err));
    CHECK(st.stats().recovered_ops > 0);
    CHECK(st.stats().runs >= 1);
    check_against_oracle(st, map, oracle);

    // Keep writing after recovery, checkpoint, reopen once more: the
    // replay-then-flush cycle must compose.
    std::vector<store::LogOp> batch;
    for (std::int64_t k = 500; k < 600; ++k) {
      batch.push_back({false, k, value_of(k, 3)});
    }
    apply_batch(st, map, oracle, batch);
    st.checkpoint();
    st.close();
  }
  {
    MapType map({.shards = 4});
    store::Store st(map, opts);
    std::string err;
    CHECK(st.open(&err));
    check_against_oracle(st, map, oracle);
    st.close();
  }
  remove_dir(dir);
  leap::test::finish("store reopen recovery");
}

// --- Store: torn WAL tail across reopen -------------------------------

void test_store_torn_tail() {
  const std::string dir = make_dir();
  store::StoreOptions opts;
  opts.data_dir = dir;
  opts.fsync_mode = store::FsyncMode::kGroup;
  opts.flush_poll_ms = 0;
  constexpr std::int64_t kBatches = 10;

  // One shard → one WAL, so the torn record is exactly the last batch.
  {
    MapType map({.shards = 1});
    store::Store st(map, opts);
    std::string err;
    CHECK(st.open(&err));
    for (std::int64_t b = 0; b < kBatches; ++b) {
      const std::vector<store::LogOp> batch = {{false, b, value_of(b)}};
      CHECK(st.log_batch(batch.data(), batch.size(), [&] {
        leap::txn([&](leap::stm::Tx& tx) {
          map.insert_in(tx, batch[0].key, batch[0].value);
        });
      }));
    }
    // Chop 5 bytes off the shard's WAL content: the final record is
    // now torn, exactly as a crash mid-append would leave it.
    CHECK(st.tear_wal_tail_for_test(0, 5));
    st.close();
  }

  // Reopen: every batch except the last replays; the torn record is
  // dropped without failing recovery.
  {
    MapType map({.shards = 1});
    store::Store st(map, opts);
    std::string err;
    CHECK(st.open(&err));
    CHECK_EQ(st.stats().recovered_ops,
             static_cast<std::uint64_t>(kBatches - 1));
    for (std::int64_t b = 0; b < kBatches - 1; ++b) {
      const auto got = lookup(st, map, b);
      CHECK(got.has_value());
      CHECK_EQ(*got, value_of(b));
    }
    CHECK(!lookup(st, map, kBatches - 1).has_value());
    st.close();
  }
  remove_dir(dir);
  leap::test::finish("store torn wal tail");
}

// --- Store: fsync modes share one durability contract -----------------

void test_store_fsync_modes() {
  for (const auto mode :
       {store::FsyncMode::kAlways, store::FsyncMode::kOff}) {
    const std::string dir = make_dir();
    store::StoreOptions opts;
    opts.data_dir = dir;
    opts.fsync_mode = mode;
    opts.flush_poll_ms = 0;
    Oracle oracle;
    {
      MapType map({.shards = 2});
      store::Store st(map, opts);
      std::string err;
      CHECK(st.open(&err));
      std::vector<store::LogOp> batch;
      for (std::int64_t k = 0; k < 100; ++k) {
        batch.push_back({false, k, value_of(k)});
      }
      apply_batch(st, map, oracle, batch);
      // Clean close flushes buffered bytes in every mode, so a reopen
      // recovers everything (kOff only risks data on a CRASH).
      st.close();
    }
    {
      MapType map({.shards = 2});
      store::Store st(map, opts);
      std::string err;
      CHECK(st.open(&err));
      check_against_oracle(st, map, oracle);
      st.close();
    }
    remove_dir(dir);
  }
  CHECK(store::parse_fsync_mode("always").has_value());
  CHECK(store::parse_fsync_mode("group").has_value());
  CHECK(store::parse_fsync_mode("off").has_value());
  CHECK(!store::parse_fsync_mode("sometimes").has_value());
  leap::test::finish("store fsync modes");
}

// --- fault-spec parsing and open-time ENOSPC --------------------------

void test_fault_spec_parse() {
  auto spec = store::parse_fault_spec("write:10:enospc:sticky");
  CHECK(spec.has_value());
  CHECK(spec->point == store::FaultPoint::kWrite);
  CHECK_EQ(spec->nth, std::uint64_t{10});
  CHECK(spec->kind == store::FaultKind::kEnospc);
  CHECK(spec->sticky);
  spec = store::parse_fault_spec("sync:1:syncfail");
  CHECK(spec.has_value());
  CHECK(spec->point == store::FaultPoint::kSync);
  CHECK(spec->kind == store::FaultKind::kSyncFail);
  CHECK(!spec->sticky);
  CHECK(store::parse_fault_spec("any:3:eio").has_value());
  CHECK(store::parse_fault_spec("fallocate:1:enospc").has_value());
  CHECK(store::parse_fault_spec("write:2:bitflip").has_value());
  // Malformed or impossible specs are rejected, never half-armed.
  CHECK(!store::parse_fault_spec("").has_value());
  CHECK(!store::parse_fault_spec("write").has_value());
  CHECK(!store::parse_fault_spec("write:0:eio").has_value());
  CHECK(!store::parse_fault_spec("write:1:nope").has_value());
  CHECK(!store::parse_fault_spec("elsewhere:1:eio").has_value());
  CHECK(!store::parse_fault_spec("write:1:eio:maybe").has_value());
  CHECK(!store::parse_fault_spec("sync:1:shortwrite").has_value());
  CHECK(!store::parse_fault_spec("any:1:bitflip").has_value());
  CHECK(!store::parse_fault_spec("write:1:syncfail").has_value());
  leap::test::finish("store fault spec parse");
}

void test_store_open_enospc() {
  // Preallocation failing at open (a full disk) must surface a clear
  // error from Store::open, not a silent degraded store.
  const std::string dir = make_dir();
  store::FaultIo fio(store::real_io());
  fio.arm(*store::parse_fault_spec("fallocate:1:enospc:sticky"));
  MapType map({.shards = 2});
  store::StoreOptions opts;
  opts.data_dir = dir;
  opts.flush_poll_ms = 0;
  opts.io = &fio;
  store::Store st(map, opts);
  std::string err;
  CHECK(!st.open(&err));
  CHECK(err.find("fallocate") != std::string::npos);
  CHECK(fio.faults_injected() >= 1);
  remove_dir(dir);
  leap::test::finish("store open enospc");
}

}  // namespace

int main() {
  test_wal_codec();
  test_bloom();
  test_run_round_trip();
  test_wal_segment_replay_and_tear();
  test_store_basic();
  test_store_reopen_recovery();
  test_store_torn_tail();
  test_store_fsync_modes();
  test_fault_spec_parse();
  test_store_open_enospc();
  return leap::test::failure_count() == 0 ? 0 : 1;
}
