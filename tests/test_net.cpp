// Loopback battery for the net serving layer: protocol framing
// round-trips, the epoll server's pipelining/burst batching, chunked
// scan streaming, multi-key txn atomicity observed across connections,
// a concurrent-clients fuzz against std::map oracles, the overload
// battery (admission-control shedding in FIFO position, the Stats
// opcode, EMFILE recovery under a lowered RLIMIT_NOFILE), and the
// robustness cases — truncated/partial frames, oversized length
// prefixes, garbage opcodes, mid-request disconnects — all of which
// must error out one connection without crashing, leaking, or
// disturbing the others.
#include <fcntl.h>
#include <sys/resource.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "leaplist/net/client.hpp"
#include "leaplist/net/protocol.hpp"
#include "leaplist/net/server.hpp"
#include "test_common.hpp"
#include "util/random.hpp"

namespace {

using namespace leap::net;

ServerOptions test_options() {
  ServerOptions opts;
  opts.port = 0;
  opts.workers = 2;
  opts.shards = 4;
  opts.key_hi = 1'000'000;
  return opts;
}

// --- framing / codec round-trips (no sockets) -------------------------

void test_request_round_trip() {
  std::vector<std::uint8_t> buf;
  append_get(buf, -5);
  append_put(buf, 42, -99);
  append_erase(buf, 7);
  append_scan(buf, 10, 20, 3);
  const std::vector<TxnOp> ops = {
      {Op::kGet, 1, 0}, {Op::kPut, 2, 22}, {Op::kErase, 3, 0}};
  append_txn(buf, ops);

  std::size_t at = 0;
  auto pull = [&]() {
    std::size_t len = 0;
    CHECK(split_frame(buf.data() + at, buf.size() - at, len) ==
          FrameState::kReady);
    auto req = parse_request(buf.data() + at + 4, len);
    at += 4 + len;
    CHECK(req.has_value());
    return *req;
  };
  const Request get = pull();
  CHECK(get.op == Op::kGet);
  CHECK_EQ(get.key, -5);
  const Request put = pull();
  CHECK(put.op == Op::kPut);
  CHECK_EQ(put.key, 42);
  CHECK_EQ(put.value, -99);
  const Request erase = pull();
  CHECK(erase.op == Op::kErase);
  CHECK_EQ(erase.key, 7);
  const Request scan = pull();
  CHECK(scan.op == Op::kScan);
  CHECK_EQ(scan.low, 10);
  CHECK_EQ(scan.high, 20);
  CHECK_EQ(scan.limit, 3u);
  const Request txn = pull();
  CHECK(txn.op == Op::kTxn);
  CHECK_EQ(txn.txn.size(), std::size_t{3});
  CHECK(txn.txn[1].op == Op::kPut);
  CHECK_EQ(txn.txn[1].value, 22);
  CHECK_EQ(at, buf.size());
}

void test_response_round_trip() {
  std::vector<std::uint8_t> buf;
  append_ok(buf, true);
  append_found(buf, -12345);
  append_miss(buf);
  const std::pair<std::int64_t, std::int64_t> chunk_pairs[] = {{1, 10},
                                                               {2, 20}};
  append_scan_pairs(buf, chunk_pairs, 2, false);
  append_scan_pairs(buf, nullptr, 0, true);
  const std::vector<TxnOp> ops = {{Op::kGet, 1, 0}, {Op::kPut, 2, 5}};
  const std::vector<TxnResult> results = {{1, 77}, {0, 0}};
  append_txn_done(buf, ops, results);
  append_error(buf, Err::kBadOpcode);

  std::size_t at = 0;
  auto pull = [&](const std::vector<TxnOp>* txn_ops) {
    std::size_t len = 0;
    CHECK(split_frame(buf.data() + at, buf.size() - at, len) ==
          FrameState::kReady);
    auto resp = parse_response(buf.data() + at + 4, len, txn_ops);
    at += 4 + len;
    CHECK(resp.has_value());
    return *resp;
  };
  const Response ok = pull(nullptr);
  CHECK(ok.status == Status::kOk);
  CHECK_EQ(ok.flag, 1);
  const Response found = pull(nullptr);
  CHECK(found.status == Status::kFound);
  CHECK_EQ(found.value, -12345);
  CHECK(pull(nullptr).status == Status::kMiss);
  const Response chunk = pull(nullptr);
  CHECK(chunk.status == Status::kScanChunk);
  CHECK_EQ(chunk.pairs.size(), std::size_t{2});
  CHECK_EQ(chunk.pairs[1].second, 20);
  const Response done = pull(nullptr);
  CHECK(done.status == Status::kScanDone);
  CHECK(done.pairs.empty());
  const Response txn = pull(&ops);
  CHECK(txn.status == Status::kTxnDone);
  CHECK_EQ(txn.results.size(), std::size_t{2});
  CHECK_EQ(txn.results[0].flag, 1);
  CHECK_EQ(txn.results[0].value, 77);
  CHECK_EQ(txn.results[1].flag, 0);
  const Response error = pull(nullptr);
  CHECK(error.status == Status::kError);
  CHECK_EQ(error.error, static_cast<std::uint8_t>(Err::kBadOpcode));
  CHECK_EQ(at, buf.size());
}

void test_parser_rejects_malformed() {
  // Truncated bodies: every strict prefix of a valid put payload fails.
  std::vector<std::uint8_t> frame;
  append_put(frame, 1, 2);
  const std::uint8_t* payload = frame.data() + 4;
  const std::size_t payload_len = frame.size() - 4;
  for (std::size_t n = 0; n < payload_len; ++n) {
    CHECK(!parse_request(payload, n).has_value());
  }
  CHECK(parse_request(payload, payload_len).has_value());
  // Trailing garbage fails too: a frame decodes exactly or not at all.
  std::vector<std::uint8_t> fat(payload, payload + payload_len);
  fat.push_back(0);
  CHECK(!parse_request(fat.data(), fat.size()).has_value());
  // Unknown opcode.
  const std::uint8_t garbage[] = {0x7f, 0, 0, 0, 0, 0, 0, 0, 0};
  CHECK(!parse_request(garbage, sizeof(garbage)).has_value());
  // Oversized and zero length prefixes poison the stream.
  std::vector<std::uint8_t> huge;
  put_u32(huge, kMaxFrameBytes + 1);
  std::size_t len = 0;
  CHECK(split_frame(huge.data(), huge.size(), len) == FrameState::kBad);
  std::vector<std::uint8_t> zero;
  put_u32(zero, 0);
  CHECK(split_frame(zero.data(), zero.size(), len) == FrameState::kBad);
  // A txn claiming more sub-ops than it carries.
  std::vector<std::uint8_t> short_txn;
  put_u8(short_txn, static_cast<std::uint8_t>(Op::kTxn));
  put_u16(short_txn, 5);
  put_u8(short_txn, static_cast<std::uint8_t>(Op::kGet));
  put_i64(short_txn, 1);
  CHECK(!parse_request(short_txn.data(), short_txn.size()).has_value());
  // A txn smuggling a non-point sub-op.
  std::vector<std::uint8_t> nested;
  put_u8(nested, static_cast<std::uint8_t>(Op::kTxn));
  put_u16(nested, 1);
  put_u8(nested, static_cast<std::uint8_t>(Op::kScan));
  put_i64(nested, 1);
  CHECK(!parse_request(nested.data(), nested.size()).has_value());
}

// --- loopback: basic semantics ---------------------------------------

void test_point_ops(Server& server) {
  Client client;
  CHECK(client.connect("127.0.0.1", server.port()));
  CHECK(!client.get(111).has_value());
  CHECK(client.put(111, 1000));
  CHECK(!client.put(111, 2000));  // overwrite reports "not inserted"
  const auto hit = client.get(111);
  CHECK(hit.has_value());
  CHECK_EQ(*hit, 2000);
  CHECK(client.erase(111));
  CHECK(!client.erase(111));
  CHECK(!client.get(111).has_value());
  CHECK(!client.failed());
}

void test_pipelined_burst(Server& server) {
  // One syscall burst of mixed point ops. The server fuses the burst
  // into single-txn batches, so responses must come back in order AND
  // read-your-writes must hold within the burst — both checkable
  // against a sequential std::map replay.
  Client client;
  CHECK(client.connect("127.0.0.1", server.port()));
  std::map<std::int64_t, std::int64_t> oracle;
  leap::util::Xoshiro256 rng(123);
  struct Sent {
    Op op;
    std::int64_t key;
    bool flag;
    std::int64_t value;
  };
  std::vector<Sent> sent;
  for (int i = 0; i < 300; ++i) {
    const std::int64_t key =
        5000 + static_cast<std::int64_t>(rng.next_below(64));
    const int dial = static_cast<int>(rng.next_below(3));
    if (dial == 0) {
      const std::int64_t value = static_cast<std::int64_t>(rng.next());
      const bool inserted = oracle.insert_or_assign(key, value).second;
      client.queue_put(key, value);
      sent.push_back({Op::kPut, key, inserted, 0});
    } else if (dial == 1) {
      const bool erased = oracle.erase(key) > 0;
      client.queue_erase(key);
      sent.push_back({Op::kErase, key, erased, 0});
    } else {
      const auto it = oracle.find(key);
      const bool found = it != oracle.end();
      client.queue_get(key);
      sent.push_back({Op::kGet, key, found, found ? it->second : 0});
    }
  }
  CHECK(client.flush());
  for (const Sent& s : sent) {
    const auto resp = client.read_response();
    CHECK(resp.has_value());
    if (s.op == Op::kGet) {
      if (s.flag) {
        CHECK(resp->status == Status::kFound);
        CHECK_EQ(resp->value, s.value);
      } else {
        CHECK(resp->status == Status::kMiss);
      }
    } else {
      CHECK(resp->status == Status::kOk);
      CHECK_EQ(resp->flag, s.flag ? 1 : 0);
    }
  }
  // Clean the stripe so later tests see a predictable map.
  for (const auto& entry : oracle) CHECK(client.erase(entry.first));
  CHECK(!client.failed());
}

void test_scan_streams_chunks(Server& server) {
  Client client;
  CHECK(client.connect("127.0.0.1", server.port()));
  const std::int64_t base = 200'000;
  const std::int64_t count = 2000;  // > kScanChunkPairs → several chunks
  for (std::int64_t i = 0; i < count; ++i) client.queue_put(base + 2 * i, i);
  CHECK(client.flush());
  for (std::int64_t i = 0; i < count; ++i) {
    const auto resp = client.read_response();
    CHECK(resp.has_value());
    CHECK(resp->status == Status::kOk);
  }
  // Unlimited scan: every pair, in order, across multiple chunk frames.
  std::vector<std::pair<std::int64_t, std::int64_t>> pairs;
  CHECK_EQ(client.scan(base, base + 2 * count, 0, pairs),
           static_cast<std::ptrdiff_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    CHECK_EQ(pairs[static_cast<std::size_t>(i)].first, base + 2 * i);
    CHECK_EQ(pairs[static_cast<std::size_t>(i)].second, i);
  }
  // A bounded scan honors the limit exactly (limit > one chunk, so the
  // remaining-count must survive across chunk transactions).
  pairs.clear();
  CHECK_EQ(client.scan(base, base + 2 * count, 700, pairs),
           static_cast<std::ptrdiff_t>(700));
  CHECK_EQ(pairs[699].first, base + 2 * 699);
  // An inverted range answers an empty ScanDone, not an error.
  pairs.clear();
  CHECK_EQ(client.scan(base + 100, base, 0, pairs),
           static_cast<std::ptrdiff_t>(0));
  // The range is inclusive on both ends: a singleton scan hits.
  pairs.clear();
  CHECK_EQ(client.scan(base + 2, base + 2, 0, pairs),
           static_cast<std::ptrdiff_t>(1));
  CHECK_EQ(pairs[0].first, base + 2);
  for (std::int64_t i = 0; i < count; ++i) client.queue_erase(base + 2 * i);
  CHECK(client.flush());
  for (std::int64_t i = 0; i < count; ++i) {
    CHECK(client.read_response().has_value());
  }
  CHECK(!client.failed());
}

// --- loopback: concurrency -------------------------------------------

void test_concurrent_clients_vs_oracle(Server& server) {
  // Each thread owns a disjoint key stripe on its own connection, so
  // every response is checkable against a thread-local std::map oracle
  // even under full concurrency; a final scan cross-checks the union.
  const auto window =
      leap::test::stress_duration(std::chrono::milliseconds(300));
  constexpr int kThreads = 4;
  constexpr std::int64_t kStripe = 4096;
  std::vector<std::map<std::int64_t, std::int64_t>> oracles(kThreads);
  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Client client;
      if (!client.connect("127.0.0.1", server.port())) {
        failed.store(true);
        return;
      }
      std::map<std::int64_t, std::int64_t>& oracle = oracles[t];
      // Stripes sit far apart so several map shards see traffic.
      const std::int64_t base = 300'000 + t * 150'000;
      leap::util::Xoshiro256 rng(0xace0 + t);
      const auto deadline = std::chrono::steady_clock::now() + window;
      while (std::chrono::steady_clock::now() < deadline) {
        // A pipelined window of 32 ops, then verify all 32 responses.
        struct Sent {
          Op op;
          bool flag;
          std::int64_t value;
        };
        std::vector<Sent> sent;
        for (int i = 0; i < 32; ++i) {
          const std::int64_t key =
              base + static_cast<std::int64_t>(rng.next_below(kStripe));
          const int dial = static_cast<int>(rng.next_below(4));
          if (dial == 0) {
            const auto it = oracle.find(key);
            const bool found = it != oracle.end();
            client.queue_get(key);
            sent.push_back({Op::kGet, found, found ? it->second : 0});
          } else if (dial == 3) {
            const bool erased = oracle.erase(key) > 0;
            client.queue_erase(key);
            sent.push_back({Op::kErase, erased, 0});
          } else {
            const std::int64_t value = static_cast<std::int64_t>(rng.next());
            const bool inserted = oracle.insert_or_assign(key, value).second;
            client.queue_put(key, value);
            sent.push_back({Op::kPut, inserted, 0});
          }
        }
        if (!client.flush()) {
          failed.store(true);
          return;
        }
        for (const Sent& s : sent) {
          const auto resp = client.read_response();
          bool ok = resp.has_value();
          if (ok && s.op == Op::kGet) {
            ok = s.flag ? (resp->status == Status::kFound &&
                           resp->value == s.value)
                        : resp->status == Status::kMiss;
          } else if (ok) {
            ok = resp->status == Status::kOk &&
                 resp->flag == (s.flag ? 1 : 0);
          }
          if (!ok) {
            failed.store(true);
            return;
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  CHECK(!failed.load());
  // Cross-check the union of oracles through a fresh connection.
  std::map<std::int64_t, std::int64_t> want;
  for (const auto& oracle : oracles) {
    want.insert(oracle.begin(), oracle.end());
  }
  Client checker;
  CHECK(checker.connect("127.0.0.1", server.port()));
  std::vector<std::pair<std::int64_t, std::int64_t>> got;
  CHECK(checker.scan(300'000, 300'000 + kThreads * 150'000, 0, got) >= 0);
  CHECK_EQ(got.size(), want.size());
  auto it = want.begin();
  for (const auto& [key, value] : got) {
    CHECK_EQ(key, it->first);
    CHECK_EQ(value, it->second);
    ++it;
  }
  for (const auto& entry : want) CHECK(checker.erase(entry.first));
}

void test_txn_atomicity_across_connections(Server& server) {
  // A token bounces between two keys in different map shards via the
  // Txn opcode; reader connections snapshot both keys in one txn and
  // must see the token in EXACTLY one place at every instant.
  const std::int64_t key_a = 1'000;
  const std::int64_t key_b = 900'000;  // other end of the key window
  CHECK(server.map().shard_of(key_a) != server.map().shard_of(key_b));
  {
    Client setup;
    CHECK(setup.connect("127.0.0.1", server.port()));
    CHECK(setup.put(key_a, 7777));
  }
  const auto window =
      leap::test::stress_duration(std::chrono::milliseconds(300));
  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::atomic<std::uint64_t> moves{0};
  std::thread mover([&] {
    Client client;
    if (!client.connect("127.0.0.1", server.port())) {
      failed.store(true);
      return;
    }
    std::int64_t from = key_a;
    std::int64_t to = key_b;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::vector<TxnOp> ops = {
          {Op::kErase, from, 0},
          {Op::kPut, to, 7777},
      };
      const auto results = client.txn(ops);
      if (!results || !(*results)[0].flag || !(*results)[1].flag) {
        failed.store(true);
        return;
      }
      moves.fetch_add(1, std::memory_order_relaxed);
      std::swap(from, to);
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      Client client;
      if (!client.connect("127.0.0.1", server.port())) {
        failed.store(true);
        return;
      }
      const std::vector<TxnOp> probe = {
          {Op::kGet, key_a, 0},
          {Op::kGet, key_b, 0},
      };
      while (!stop.load(std::memory_order_relaxed)) {
        const auto results = client.txn(probe);
        if (!results) {
          failed.store(true);
          return;
        }
        const int present =
            ((*results)[0].flag ? 1 : 0) + ((*results)[1].flag ? 1 : 0);
        const std::int64_t value =
            (*results)[0].flag ? (*results)[0].value : (*results)[1].value;
        if (present != 1 || value != 7777) {
          failed.store(true);  // both, neither, or torn: not atomic
          return;
        }
      }
    });
  }
  std::this_thread::sleep_for(window);
  stop.store(true);
  mover.join();
  for (auto& reader : readers) reader.join();
  CHECK(!failed.load());
  CHECK(moves.load() > 0);
  Client cleanup;
  CHECK(cleanup.connect("127.0.0.1", server.port()));
  cleanup.erase(key_a);
  cleanup.erase(key_b);
}

// --- loopback: robustness --------------------------------------------

void expect_connection_dies(Client& client) {
  // The server answers an Error frame when the stream is still framed,
  // then closes; either way the reads must terminate — no hang, no
  // crash, and nothing after an Error.
  for (int hops = 0; hops < 8; ++hops) {
    const auto resp = client.read_response();
    if (!resp) return;  // closed
    if (resp->status == Status::kError) {
      CHECK(!client.read_response().has_value());
      return;
    }
  }
  CHECK(false);  // the connection never died
}

void test_robustness(Server& server) {
  const ServerStats before = server.stats();
  {
    // Oversized length prefix — nothing that big may even allocate.
    Client client;
    CHECK(client.connect("127.0.0.1", server.port()));
    std::vector<std::uint8_t> evil;
    put_u32(evil, kMaxFrameBytes + 7);
    evil.push_back(1);
    client.queue_raw(evil);
    CHECK(client.flush());
    expect_connection_dies(client);
  }
  {
    // Zero-length frame.
    Client client;
    CHECK(client.connect("127.0.0.1", server.port()));
    std::vector<std::uint8_t> evil;
    put_u32(evil, 0);
    client.queue_raw(evil);
    CHECK(client.flush());
    expect_connection_dies(client);
  }
  {
    // Garbage opcode after a sound request: the sound one is answered,
    // then the stream errors out.
    Client client;
    CHECK(client.connect("127.0.0.1", server.port()));
    client.queue_put(31337, 1);
    std::vector<std::uint8_t> evil;
    put_u32(evil, 1);
    evil.push_back(0xEE);
    client.queue_raw(evil);
    CHECK(client.flush());
    const auto first = client.read_response();
    CHECK(first.has_value());
    CHECK(first->status == Status::kOk);
    expect_connection_dies(client);
  }
  {
    // Malformed body (a get with a short key).
    Client client;
    CHECK(client.connect("127.0.0.1", server.port()));
    std::vector<std::uint8_t> evil;
    put_u32(evil, 3);
    evil.push_back(static_cast<std::uint8_t>(Op::kGet));
    evil.push_back(1);
    evil.push_back(2);
    client.queue_raw(evil);
    CHECK(client.flush());
    expect_connection_dies(client);
  }
  {
    // Mid-request disconnect: a frame promising 12 bytes delivers 3,
    // then the peer vanishes. The server just drops the half frame.
    Client client;
    CHECK(client.connect("127.0.0.1", server.port()));
    std::vector<std::uint8_t> partial;
    put_u32(partial, 12);
    partial.push_back(static_cast<std::uint8_t>(Op::kGet));
    partial.push_back(0);
    partial.push_back(0);
    client.queue_raw(partial);
    CHECK(client.flush());
    client.close();
  }
  {
    // Disconnect mid-scan: request a big stream, read one frame, bail
    // while the server still has chunks queued for this connection.
    Client seeder;
    CHECK(seeder.connect("127.0.0.1", server.port()));
    for (int i = 0; i < 1500; ++i) seeder.queue_put(600'000 + i, i);
    CHECK(seeder.flush());
    for (int i = 0; i < 1500; ++i) {
      CHECK(seeder.read_response().has_value());
    }
    Client client;
    CHECK(client.connect("127.0.0.1", server.port()));
    client.queue_scan(600'000, 602'000, 0);
    CHECK(client.flush());
    CHECK(client.read_response().has_value());  // first chunk only
    client.close();
    for (int i = 0; i < 1500; ++i) seeder.queue_erase(600'000 + i);
    CHECK(seeder.flush());
    for (int i = 0; i < 1500; ++i) {
      CHECK(seeder.read_response().has_value());
    }
  }
  {
    // A request split across many tiny writes still parses — the
    // server must buffer partial frames indefinitely, not error them.
    Client client;
    CHECK(client.connect("127.0.0.1", server.port()));
    std::vector<std::uint8_t> frame;
    append_put(frame, 777, 888);
    for (const std::uint8_t byte : frame) {
      client.queue_raw({byte});
      CHECK(client.flush());
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const auto resp = client.read_response();
    CHECK(resp.has_value());
    CHECK(resp->status == Status::kOk);
    CHECK(client.erase(777));
  }
  // The abuse above errored out connections but never the server:
  // fresh connections still serve, and the error counter moved.
  Client survivor;
  CHECK(survivor.connect("127.0.0.1", server.port()));
  CHECK(survivor.put(1, 2));
  CHECK(survivor.erase(1));
  CHECK(server.stats().errored >= before.errored + 4);
}

// --- loopback: overload / observability -------------------------------

void test_stats_codec_round_trip() {
  StatsSnapshot in;
  in.ops = 1;
  in.accepted = 2;
  in.errored = 3;
  in.shed = 4;
  in.stm_retries = 5;
  in.batches = 6;
  in.batch_ops = 7;
  in.queued_now = 8;
  in.queue_hwm = 9;
  in.accept_pauses = 10;
  in.emfile_sheds = 11;
  in.wal_appends = 12;
  in.wal_fsyncs = 13;
  in.wal_group_ops = 14;
  in.store_flushes = 15;
  in.store_runs = 16;
  in.bloom_negatives = 17;
  in.cold_hits = 18;
  in.recovered_ops = 19;
  in.store_fail_stop = 20;
  in.corrupt_blocks = 21;
  in.checkpoint_retries = 22;
  for (std::size_t i = 0; i < kBatchHistBuckets; ++i) {
    in.batch_hist[i] = 100 + i;
  }
  std::vector<std::uint8_t> buf;
  append_stats(buf, in);
  std::size_t len = 0;
  CHECK(split_frame(buf.data(), buf.size(), len) == FrameState::kReady);
  const auto resp = parse_response(buf.data() + 4, len, nullptr);
  CHECK(resp.has_value());
  CHECK(resp->status == Status::kStats);
  const StatsSnapshot& out = resp->stats;
  CHECK_EQ(out.ops, in.ops);
  CHECK_EQ(out.accepted, in.accepted);
  CHECK_EQ(out.errored, in.errored);
  CHECK_EQ(out.shed, in.shed);
  CHECK_EQ(out.stm_retries, in.stm_retries);
  CHECK_EQ(out.batches, in.batches);
  CHECK_EQ(out.batch_ops, in.batch_ops);
  CHECK_EQ(out.queued_now, in.queued_now);
  CHECK_EQ(out.queue_hwm, in.queue_hwm);
  CHECK_EQ(out.accept_pauses, in.accept_pauses);
  CHECK_EQ(out.emfile_sheds, in.emfile_sheds);
  CHECK_EQ(out.wal_appends, in.wal_appends);
  CHECK_EQ(out.wal_fsyncs, in.wal_fsyncs);
  CHECK_EQ(out.wal_group_ops, in.wal_group_ops);
  CHECK_EQ(out.store_flushes, in.store_flushes);
  CHECK_EQ(out.store_runs, in.store_runs);
  CHECK_EQ(out.bloom_negatives, in.bloom_negatives);
  CHECK_EQ(out.cold_hits, in.cold_hits);
  CHECK_EQ(out.recovered_ops, in.recovered_ops);
  CHECK_EQ(out.store_fail_stop, in.store_fail_stop);
  CHECK_EQ(out.corrupt_blocks, in.corrupt_blocks);
  CHECK_EQ(out.checkpoint_retries, in.checkpoint_retries);
  for (std::size_t i = 0; i < kBatchHistBuckets; ++i) {
    CHECK_EQ(out.batch_hist[i], in.batch_hist[i]);
  }
  // A Stats response whose word count disagrees with kStatsWords fails
  // to parse (forward-compat is explicit, not silent).
  buf[5] = static_cast<std::uint8_t>(kStatsWords - 1);
  CHECK(!parse_response(buf.data() + 4, len, nullptr).has_value());
  // Bucketing: floor(log2), clamped to the last bucket.
  CHECK_EQ(batch_hist_bucket(1), std::size_t{0});
  CHECK_EQ(batch_hist_bucket(2), std::size_t{1});
  CHECK_EQ(batch_hist_bucket(3), std::size_t{1});
  CHECK_EQ(batch_hist_bucket(128), std::size_t{7});
  CHECK_EQ(batch_hist_bucket(1 << 12), kBatchHistBuckets - 1);
}

void test_stats_opcode(Server& server) {
  // Delta-based: the shared server has served other tests already, so
  // only growth is asserted, against traffic this test generates.
  Client client;
  CHECK(client.connect("127.0.0.1", server.port()));
  const auto before = client.stats();
  CHECK(before.has_value());
  constexpr int kOps = 64;
  for (int i = 0; i < kOps; ++i) client.queue_put(700'000 + i, i);
  CHECK(client.flush());
  for (int i = 0; i < kOps; ++i) {
    const auto resp = client.read_response();
    CHECK(resp.has_value());
    CHECK(resp->status == Status::kOk);
  }
  Client extra;  // accepted between the snapshots
  CHECK(extra.connect("127.0.0.1", server.port()));
  CHECK(extra.put(700'100, 1));
  CHECK(extra.erase(700'100));
  const auto after = client.stats();
  CHECK(after.has_value());
  CHECK(after->ops >= before->ops + kOps);
  CHECK(after->accepted >= before->accepted + 1);
  // The pipelined window commits as batches; both batch counters and
  // the histogram must have moved.
  CHECK(after->batches > before->batches);
  CHECK(after->batch_ops >= before->batch_ops + kOps);
  std::uint64_t hist_before = 0;
  std::uint64_t hist_after = 0;
  for (std::size_t i = 0; i < kBatchHistBuckets; ++i) {
    hist_before += before->batch_hist[i];
    hist_after += after->batch_hist[i];
  }
  CHECK(hist_after > hist_before);
  // Stats itself counts as an op but never as shed.
  CHECK_EQ(after->shed, before->shed);
  for (int i = 0; i < kOps; ++i) client.queue_erase(700'000 + i);
  CHECK(client.flush());
  for (int i = 0; i < kOps; ++i) {
    CHECK(client.read_response().has_value());
  }
  CHECK(!client.failed());
}

void test_shed_battery() {
  // A dedicated single-worker server with a tiny admission cap: a
  // large single-flush burst must shed most of the window as
  // kOverloaded IN FIFO POSITION while every admitted op executes
  // exactly once — both checkable by replaying the op sequence
  // against a std::map oracle that applies only the non-shed ops.
  ServerOptions opts = test_options();
  opts.workers = 1;
  opts.max_queue = 4;
  Server server(opts);
  CHECK(server.start());
  Client client;
  CHECK(client.connect("127.0.0.1", server.port()));

  constexpr int kBurst = 2048;
  leap::util::Xoshiro256 rng(0x0e11);
  struct Sent {
    Op op;
    std::int64_t key;
    std::int64_t value;
  };
  std::vector<Sent> sent;
  sent.reserve(kBurst);
  for (int i = 0; i < kBurst; ++i) {
    const std::int64_t key =
        10'000 + static_cast<std::int64_t>(rng.next_below(64));
    const int dial = static_cast<int>(rng.next_below(3));
    if (dial == 0) {
      const std::int64_t value = static_cast<std::int64_t>(rng.next());
      client.queue_put(key, value);
      sent.push_back({Op::kPut, key, value});
    } else if (dial == 1) {
      client.queue_erase(key);
      sent.push_back({Op::kErase, key, 0});
    } else {
      client.queue_get(key);
      sent.push_back({Op::kGet, key, 0});
    }
  }
  CHECK(client.flush());

  // Replay: response i answers request i. Shed responses leave the
  // oracle untouched; everything else must match the oracle exactly —
  // which also proves admitted ops ran exactly once and in order.
  std::map<std::int64_t, std::int64_t> oracle;
  std::uint64_t shed_seen = 0;
  for (const Sent& s : sent) {
    const auto resp = client.read_response();
    CHECK(resp.has_value());
    if (resp->status == Status::kError) {
      CHECK_EQ(resp->error, static_cast<std::uint8_t>(Err::kOverloaded));
      ++shed_seen;
      continue;
    }
    if (s.op == Op::kPut) {
      const bool inserted = oracle.insert_or_assign(s.key, s.value).second;
      CHECK(resp->status == Status::kOk);
      CHECK_EQ(resp->flag, inserted ? 1 : 0);
    } else if (s.op == Op::kErase) {
      const bool erased = oracle.erase(s.key) > 0;
      CHECK(resp->status == Status::kOk);
      CHECK_EQ(resp->flag, erased ? 1 : 0);
    } else {
      const auto it = oracle.find(s.key);
      if (it != oracle.end()) {
        CHECK(resp->status == Status::kFound);
        CHECK_EQ(resp->value, it->second);
      } else {
        CHECK(resp->status == Status::kMiss);
      }
    }
  }
  // A 2048-op burst against a 4-deep queue must have shed; the
  // connection SURVIVED every one of them.
  CHECK(shed_seen > 0);
  CHECK(!client.failed());
  CHECK(client.put(999'999, 1));
  const auto hit = client.get(999'999);
  CHECK(hit.has_value());
  CHECK_EQ(*hit, 1);

  // The server's own count agrees with what crossed the wire (a Stats
  // request is exempt from admission, so it works even now).
  const auto wire = client.stats();
  CHECK(wire.has_value());
  CHECK_EQ(wire->shed, shed_seen);
  CHECK(wire->queue_hwm <= opts.max_queue);
  CHECK(wire->queue_hwm > 0);

  // Counters survive shutdown (stop() folds per-worker counters).
  server.stop();
  CHECK_EQ(server.stats().shed, shed_seen);
}

void test_emfile_recovery() {
  // Regression for the accept_all busy-spin: under fd exhaustion the
  // server must shed the unacceptable connection (peer sees EOF, not
  // a hang), pause its listen interest instead of spinning, keep
  // serving existing connections, and resume accepting once fds are
  // back. RLIMIT_NOFILE is lowered for the duration.
  ServerOptions opts = test_options();
  opts.workers = 1;
  opts.accept_backoff_ms = 30;
  Server server(opts);
  CHECK(server.start());
  Client veteran;
  CHECK(veteran.connect("127.0.0.1", server.port()));
  CHECK(veteran.put(42, 420));

  rlimit saved{};
  CHECK(::getrlimit(RLIMIT_NOFILE, &saved) == 0);
  const int probe = ::dup(0);  // lowest free fd number right now
  CHECK(probe >= 0);
  ::close(probe);
  rlimit tight = saved;
  tight.rlim_cur = static_cast<rlim_t>(probe + 10);
  CHECK(::setrlimit(RLIMIT_NOFILE, &tight) == 0);

  // Exhaust every remaining slot, then free exactly one for the
  // incoming client socket — so the server's accept4 is guaranteed to
  // hit EMFILE (its emergency reserve fd predates the exhaustion).
  std::vector<int> hogs;
  for (;;) {
    const int fd = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
    if (fd < 0) break;
    hogs.push_back(fd);
  }
  CHECK(!hogs.empty());
  ::close(hogs.back());
  hogs.pop_back();

  Client doomed;
  CHECK(doomed.connect("127.0.0.1", server.port()));  // SYN backlog
  // The server sheds via its reserve: accept-then-close, so this read
  // terminates with EOF instead of hanging un-accepted forever.
  CHECK(!doomed.get(1).has_value());
  CHECK(doomed.failed());

  // The shed and the accept pause are both visible, and the already-
  // accepted connection still serves while paused.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  for (;;) {
    const ServerStats s = server.stats();
    if (s.emfile_sheds >= 1 && s.accept_pauses >= 1) break;
    CHECK(std::chrono::steady_clock::now() < deadline);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const auto hit = veteran.get(42);
  CHECK(hit.has_value());
  CHECK_EQ(*hit, 420);

  // Release the pressure; accept must resume within the backoff.
  for (const int fd : hogs) ::close(fd);
  hogs.clear();
  CHECK(::setrlimit(RLIMIT_NOFILE, &saved) == 0);
  bool recovered = false;
  for (int attempt = 0; attempt < 100; ++attempt) {
    Client fresh;
    if (fresh.connect("127.0.0.1", server.port()) && fresh.put(7, 70)) {
      CHECK(fresh.erase(7));
      recovered = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  CHECK(recovered);
  CHECK(veteran.erase(42));
  server.stop();
}

void test_stop_with_live_connections() {
  Server server(test_options());
  CHECK(server.start());
  Client client;
  CHECK(client.connect("127.0.0.1", server.port()));
  CHECK(client.put(5, 50));
  server.stop();
  // The peer observes the close; the client object just fails cleanly.
  CHECK(!client.get(5).has_value());
  CHECK(client.failed());
}

}  // namespace

int main() {
  test_request_round_trip();
  test_response_round_trip();
  test_parser_rejects_malformed();
  test_stats_codec_round_trip();

  {
    Server server(test_options());
    std::string error;
    if (!server.start(&error)) {
      leap::test::fail(__FILE__, __LINE__, "server start: " + error);
    }
    test_point_ops(server);
    test_pipelined_burst(server);
    test_scan_streams_chunks(server);
    test_concurrent_clients_vs_oracle(server);
    test_txn_atomicity_across_connections(server);
    test_robustness(server);
    test_stats_opcode(server);
    server.stop();
    CHECK(server.stats().ops > 0);
  }
  test_shed_battery();
  test_emfile_recovery();
  test_stop_with_live_connections();

  return leap::test::finish("test_net");
}
