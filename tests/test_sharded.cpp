// Sharded-map battery: OrderedMap conformance for every policy,
// codec-order routing properties (monotone, clamped, all shards
// reachable), partition-boundary fuzz against std::map (keys adjacent
// to split points, plus keys outside the hint window), stitched range
// semantics (early exit, bounded scans, cursors across boundaries),
// cross-shard composition with plain maps, and the cross-shard
// linearizability stress: movers rotate keys between slots in different
// shards (half through leap::txn with in-transaction invariant checks,
// half through move_key) while stitched-range and point readers assert
// exactly-once visibility at every instant. LEAP_STRESS_MS scales the
// stress window; the whole file runs in the ASan and TSan CI jobs.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <thread>
#include <vector>

#include "leaplist/codec.hpp"
#include "leaplist/map.hpp"
#include "leaplist/sharded.hpp"
#include "leaplist/skiplist.hpp"
#include "leaplist/txn.hpp"
#include "test_common.hpp"
#include "util/random.hpp"
#include "util/spin_barrier.hpp"

namespace codec = leap::codec;
namespace policy = leap::policy;
using leap::ShardOptions;
using leap::core::Params;

namespace {

// --- Concept conformance (compile-time) ------------------------------

template <typename P>
using I64Sharded = leap::ShardedMap<std::int64_t, std::int64_t, P>;

static_assert(leap::OrderedMap<I64Sharded<policy::LT>>);
static_assert(leap::OrderedMap<I64Sharded<policy::COP>>);
static_assert(leap::OrderedMap<I64Sharded<policy::TM>>);
static_assert(leap::OrderedMap<I64Sharded<policy::RW>>);
static_assert(leap::OrderedMap<I64Sharded<policy::SkipCAS>>);
static_assert(leap::OrderedMap<I64Sharded<policy::SkipTM>>);
static_assert(
    leap::OrderedMap<leap::ShardedMap<std::uint32_t, double, policy::LT>>);

// Only the TM policy composes; the sharded tag is what the harness and
// db layers key off.
template <typename M>
constexpr bool kHasComposable = requires(M m, leap::stm::Tx& tx) {
  m.insert_in(tx, typename M::key_type{}, typename M::mapped_type{});
  m.move_key(typename M::key_type{}, typename M::key_type{});
};
static_assert(kHasComposable<I64Sharded<policy::TM>>);
static_assert(!kHasComposable<I64Sharded<policy::LT>>);
static_assert(!kHasComposable<I64Sharded<policy::SkipCAS>>);
static_assert(I64Sharded<policy::LT>::kSharded);

// --- Routing properties ----------------------------------------------

void test_routing() {
  using M = I64Sharded<policy::LT>;
  constexpr std::size_t kShards = 8;
  const ShardOptions opts{.shards = kShards,
                          .params = Params{.node_size = 8, .max_level = 4}};
  M map(opts, -1000, 999);
  CHECK_EQ(map.shard_count(), kShards);

  // Monotone over the window and beyond it; every shard reachable.
  std::size_t prev = 0;
  std::size_t jumps = 0;
  for (std::int64_t k = -1300; k <= 1300; ++k) {
    const std::size_t s = map.shard_of(k);
    CHECK(s < kShards);
    CHECK(s >= prev);
    if (s > prev) {
      CHECK_EQ(s, prev + 1);  // consecutive intervals, no skipped shard
      ++jumps;
    }
    prev = s;
  }
  CHECK_EQ(jumps, kShards - 1);

  // Keys outside the hint window clamp onto the edge shards.
  CHECK_EQ(map.shard_of(std::numeric_limits<std::int64_t>::min() + 2), 0u);
  CHECK_EQ(map.shard_of(std::numeric_limits<std::int64_t>::max() - 2),
           kShards - 1);

  // The full-window default stays monotone and in range (a narrow
  // distribution buckets into one shard there — documented behavior).
  M wide(opts);
  prev = 0;
  for (std::int64_t k = -1000000; k <= 1000000; k += 997) {
    const std::size_t s = wide.shard_of(k);
    CHECK(s < kShards);
    CHECK(s >= prev);
    prev = s;
  }

  // One shard degenerates to a plain routed map.
  M single(ShardOptions{.shards = 1, .params = opts.params}, -1000, 999);
  for (std::int64_t k = -5000; k <= 5000; k += 13) {
    CHECK_EQ(single.shard_of(k), 0u);
  }

  // Balance regression: a window span just ABOVE a power of two (the
  // harness window [1, 102001], span 102000 vs 2^17) must still split
  // near-evenly — a power-of-two normalization here starved the top
  // shards (S=8: shard 7 empty; S=64: shards 49..63 empty).
  for (const std::size_t shards : {std::size_t{8}, std::size_t{64}}) {
    M harness_window(ShardOptions{.shards = shards, .params = opts.params},
                     1, 102001);
    CHECK_EQ(harness_window.shard_of(102001), shards - 1);
    std::vector<std::size_t> load(shards, 0);
    for (std::int64_t k = 1; k <= 102001; ++k) {
      ++load[harness_window.shard_of(k)];
    }
    const auto [lo_it, hi_it] = std::minmax_element(load.begin(), load.end());
    CHECK(*lo_it > 0);
    CHECK(*hi_it <= *lo_it + *lo_it / 8);  // within ~12% of even
  }
  std::printf("  routing ok\n");
}

// --- Partition-boundary fuzz vs std::map -----------------------------

template <typename P>
void test_boundary_fuzz(const char* name) {
  using M = leap::ShardedMap<std::int32_t, std::int64_t, P>;
  constexpr std::int32_t kHalf = 500;
  constexpr std::size_t kShards = 8;
  M map(ShardOptions{.shards = kShards,
                     .params = Params{.node_size = 8, .max_level = 6}},
        -kHalf, kHalf);

  // Split-adjacent keys: both sides of every partition boundary.
  std::vector<std::int32_t> edges;
  for (std::int32_t k = -kHalf; k < kHalf; ++k) {
    if (map.shard_of(k) != map.shard_of(k + 1)) {
      edges.push_back(k);
      edges.push_back(k + 1);
    }
  }
  CHECK_EQ(edges.size(), 2 * (kShards - 1));

  std::map<std::int32_t, std::int64_t> reference;
  leap::util::Xoshiro256 rng(5150);
  const auto draw_key = [&]() -> std::int32_t {
    if ((rng.next() & 1) != 0) {
      // Aim at a split point, jittered a couple of keys either side.
      const auto edge = edges[rng.next_below(edges.size())];
      const auto jitter = static_cast<std::int32_t>(rng.next_below(5)) - 2;
      return edge + jitter;
    }
    // Uniform, slightly wider than the hint window so the clamped
    // edge shards see out-of-window traffic too.
    return static_cast<std::int32_t>(rng.next_below(2 * (kHalf + 10) + 1)) -
           (kHalf + 10);
  };
  for (int op = 0; op < 12000; ++op) {
    const std::int32_t key = draw_key();
    const int dial = static_cast<int>(rng.next_below(100));
    if (dial < 40) {
      const auto value = static_cast<std::int64_t>(rng.next());
      CHECK_EQ(map.insert(key, value),
               reference.find(key) == reference.end());
      reference[key] = value;
    } else if (dial < 70) {
      CHECK_EQ(map.erase(key), reference.erase(key) > 0);
    } else if (dial < 80) {
      const auto expected = reference.find(key);
      const auto actual = map.get(key);
      CHECK_EQ(actual.has_value(), expected != reference.end());
      if (actual) CHECK_EQ(*actual, expected->second);
    } else if (dial < 92) {
      // Stitched range crossing one or more boundaries.
      const auto span = static_cast<std::int32_t>(rng.next_below(300));
      const std::int32_t low = key;
      const auto high = static_cast<std::int32_t>(
          std::min<std::int64_t>(kHalf + 10, std::int64_t{low} + span));
      std::vector<std::pair<std::int32_t, std::int64_t>> got;
      const std::size_t visited =
          map.for_range(low, high, leap::append_to(got));
      CHECK_EQ(visited, got.size());
      auto it = reference.lower_bound(low);
      std::size_t n = 0;
      for (; it != reference.end() && it->first <= high; ++it, ++n) {
        CHECK(n < got.size());
        CHECK_EQ(got[n].first, it->first);
        CHECK_EQ(got[n].second, it->second);
      }
      CHECK_EQ(got.size(), n);
    } else {
      // Bounded stitched scan: explicit append, global key order.
      const std::size_t limit = 1 + rng.next_below(48);
      std::vector<std::pair<std::int32_t, std::int64_t>> out = {{-1, -1}};
      const std::size_t appended = map.scan(key, limit, out);
      CHECK(appended <= limit);
      CHECK_EQ(out.size(), 1 + appended);
      CHECK_EQ(out[0].first, -1);
      auto it = reference.lower_bound(key);
      for (std::size_t i = 0; i < appended; ++i, ++it) {
        CHECK(it != reference.end());
        CHECK_EQ(out[1 + i].first, it->first);
        CHECK_EQ(out[1 + i].second, it->second);
      }
      // The scan is exhaustive-or-full: short results mean the
      // reference had nothing more at or above `key` either.
      if (appended < limit) CHECK(it == reference.end());
    }
  }
  // Skip-list shards don't expose quiescent introspection.
  if constexpr (requires { map.size_slow(); }) {
    CHECK_EQ(map.size_slow(), reference.size());
  }
  if constexpr (requires { map.debug_validate(); }) {
    CHECK(map.debug_validate());
  }

  // Early exit across a shard boundary: the three smallest keys of a
  // window spanning the whole map, regardless of which shards they
  // live in.
  if (reference.size() >= 3) {
    std::vector<std::int32_t> seen;
    const std::size_t visited = map.for_range(
        -kHalf - 10, kHalf + 10, [&](std::int32_t k, std::int64_t) {
          seen.push_back(k);
          return seen.size() < 3;
        });
    CHECK_EQ(visited, 3u);
    auto it = reference.begin();
    for (std::size_t i = 0; i < 3; ++i, ++it) CHECK_EQ(seen[i], it->first);
  }

  // Snapshot cursor stitched over every shard, stable across updates.
  auto cursor = map.snapshot(-kHalf - 10, kHalf + 10);
  CHECK_EQ(cursor.size(), reference.size());
  map.insert(0, 42);
  auto ref = reference.begin();
  for (; cursor.valid(); cursor.next(), ++ref) {
    CHECK_EQ(cursor.key(), ref->first);
    CHECK_EQ(cursor.value(), ref->second);
  }
  CHECK(ref == reference.end());
  std::printf("  boundary fuzz %s ok\n", name);
}

// --- Cross-shard and cross-map composition (policy::TM) --------------

void test_composition() {
  using SM = leap::ShardedMap<std::int64_t, std::int64_t, policy::TM>;
  using M = leap::Map<std::int64_t, std::int64_t, policy::TM>;
  const Params params{.node_size = 8, .max_level = 4};
  SM sharded(ShardOptions{.shards = 4, .params = params}, 1, 400);
  M plain(params);
  for (std::int64_t k = 1; k <= 200; ++k) sharded.insert(k, k * 10);
  CHECK_EQ(sharded.size_slow(), 200u);
  // The preload actually spans shards.
  CHECK(sharded.shard_of(1) != sharded.shard_of(200));

  // move_key across a shard boundary: value travels, source vanishes.
  CHECK(sharded.move_key(1, 399));
  CHECK(!sharded.get(1).has_value());
  CHECK_EQ(*sharded.get(399), 10);
  CHECK(!sharded.move_key(1, 399));  // absent source moves nothing
  CHECK(sharded.move_key(399, 1));   // and back

  // One transaction spanning the sharded map and a plain map: move the
  // odd keys out, take a stitched + plain snapshot at the same instant.
  leap::txn([&](leap::stm::Tx& tx) {
    for (std::int64_t k = 1; k <= 200; k += 2) {
      const auto v = sharded.get_in(tx, k);
      CHECK(v.has_value());
      sharded.erase_in(tx, k);
      plain.insert_in(tx, k, *v);
    }
  });
  CHECK_EQ(sharded.size_slow(), 100u);
  CHECK_EQ(plain.size_slow(), 100u);
  std::vector<std::pair<std::int64_t, std::int64_t>> both;
  leap::txn([&](leap::stm::Tx& tx) {
    both.clear();
    sharded.for_range_in(tx, 1, 400, leap::append_to(both));
    plain.for_range_in(tx, 1, 400, leap::append_to(both));
  });
  CHECK_EQ(both.size(), 200u);
  for (std::size_t i = 0; i < 100; ++i) {
    CHECK_EQ(both[i].first, static_cast<std::int64_t>(2 * (i + 1)));
    CHECK_EQ(both[100 + i].first, static_cast<std::int64_t>(2 * i + 1));
  }

  // Composable bounded scan inside one transaction.
  std::vector<std::pair<std::int64_t, std::int64_t>> first10;
  leap::txn([&](leap::stm::Tx& tx) {
    first10.clear();
    sharded.scan_in(tx, 1, 10, first10);
  });
  CHECK_EQ(first10.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    CHECK_EQ(first10[i].first, static_cast<std::int64_t>(2 * (i + 1)));
  }
  CHECK(sharded.debug_validate());
  std::printf("  composition ok\n");
}

// --- Cross-shard linearizability stress ------------------------------
// Each logical key 1..kLogical lives at exactly one of two slots — k
// (low shards) or k + kOffset (high shards). Movers bounce values
// between the slots; stitched-range readers and transactional point
// readers must observe exactly one slot per key at every instant.

constexpr std::int64_t kLogical = 96;
constexpr std::int64_t kOffset = 10000;

std::int64_t value_for(std::int64_t key) { return key * 7 + 3; }

void test_cross_shard_atomicity_stress() {
  constexpr unsigned kMovers = 4;
  constexpr unsigned kPointReaders = 2;
  constexpr unsigned kSnapshotReaders = 2;
  using M = leap::ShardedMap<std::int64_t, std::int64_t, policy::TM>;
  M map(ShardOptions{.shards = 8,
                     .params = Params{.node_size = 16, .max_level = 6}},
        1, kOffset + kLogical);
  // The two slots of a key must straddle shards or the test is vacuous.
  for (std::int64_t k = 1; k <= kLogical; ++k) {
    CHECK(map.shard_of(k) != map.shard_of(k + kOffset));
  }
  {
    std::vector<std::pair<std::int64_t, std::int64_t>> pairs;
    for (std::int64_t k = 1; k <= kLogical; ++k) {
      pairs.push_back({k, value_for(k)});
    }
    map.bulk_load(pairs);
  }
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> moves{0};
  leap::util::SpinBarrier barrier(kMovers + kPointReaders +
                                  kSnapshotReaders + 1);
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kMovers; ++t) {
    threads.emplace_back([&, t] {
      leap::util::Xoshiro256 rng(1700 + t);
      std::uint64_t local = 0;
      barrier.arrive_and_wait();
      while (!stop.load(std::memory_order_relaxed)) {
        const auto k =
            static_cast<std::int64_t>(1 + rng.next_below(kLogical));
        if ((rng.next() & 1) != 0) {
          // Explicit transaction with in-transaction invariant checks
          // (opacity makes them safe: an inconsistent read set aborts
          // before values are returned).
          leap::txn([&](leap::stm::Tx& tx) {
            const auto at_low = map.get_in(tx, k);
            const auto at_high = map.get_in(tx, k + kOffset);
            CHECK(at_low.has_value() != at_high.has_value());
            if (at_low) {
              CHECK_EQ(*at_low, value_for(k));
              map.erase_in(tx, k);
              map.insert_in(tx, k + kOffset, *at_low);
            } else {
              CHECK_EQ(*at_high, value_for(k));
              map.erase_in(tx, k + kOffset);
              map.insert_in(tx, k, *at_high);
            }
          });
        } else {
          // The move_key convenience: each call is atomic on its own;
          // whichever direction finds its source occupied wins.
          if (!map.move_key(k, k + kOffset)) {
            (void)map.move_key(k + kOffset, k);
          }
        }
        ++local;
      }
      moves.fetch_add(local, std::memory_order_relaxed);
    });
  }
  for (unsigned t = 0; t < kPointReaders; ++t) {
    threads.emplace_back([&, t] {
      leap::util::Xoshiro256 rng(1800 + t);
      barrier.arrive_and_wait();
      while (!stop.load(std::memory_order_relaxed)) {
        const auto k =
            static_cast<std::int64_t>(1 + rng.next_below(kLogical));
        const int holders = leap::txn([&](leap::stm::Tx& tx) {
          int count = 0;
          for (const std::int64_t at : {k, k + kOffset}) {
            const auto value = map.get_in(tx, at);
            if (value.has_value()) {
              CHECK_EQ(*value, value_for(k));
              ++count;
            }
          }
          return count;
        });
        CHECK_EQ(holders, 1);  // exactly one slot, never two or none
      }
    });
  }
  for (unsigned t = 0; t < kSnapshotReaders; ++t) {
    threads.emplace_back([&, t] {
      std::vector<std::pair<std::int64_t, std::int64_t>> snap;
      std::vector<int> seen(static_cast<std::size_t>(kLogical) + 1, 0);
      barrier.arrive_and_wait();
      while (!stop.load(std::memory_order_relaxed)) {
        // One stitched range query = ONE transaction over every shard:
        // the multi-shard snapshot must hold each logical key exactly
        // once, in strictly ascending key order.
        snap.clear();
        map.for_range(1, kOffset + kLogical, leap::append_to(snap));
        CHECK_EQ(snap.size(), static_cast<std::size_t>(kLogical));
        std::fill(seen.begin(), seen.end(), 0);
        for (std::size_t i = 0; i < snap.size(); ++i) {
          if (i > 0) CHECK(snap[i].first > snap[i - 1].first);
          const std::int64_t logical = snap[i].first > kOffset
                                           ? snap[i].first - kOffset
                                           : snap[i].first;
          CHECK(logical >= 1 && logical <= kLogical);
          CHECK_EQ(snap[i].second, value_for(logical));
          ++seen[static_cast<std::size_t>(logical)];
        }
        for (std::int64_t k = 1; k <= kLogical; ++k) {
          CHECK_EQ(seen[static_cast<std::size_t>(k)], 1);
        }
      }
    });
  }
  barrier.arrive_and_wait();
  std::this_thread::sleep_for(
      leap::test::stress_duration(std::chrono::milliseconds(400)));
  stop.store(true, std::memory_order_release);
  for (auto& thread : threads) thread.join();
  // Quiescent agreement: partition invariant holds, population
  // conserved, every key at exactly one slot.
  CHECK(map.debug_validate());
  CHECK_EQ(map.size_slow(), static_cast<std::size_t>(kLogical));
  for (std::int64_t k = 1; k <= kLogical; ++k) {
    const auto at_low = map.get(k);
    const auto at_high = map.get(k + kOffset);
    CHECK(at_low.has_value() != at_high.has_value());
    CHECK_EQ(at_low ? *at_low : *at_high, value_for(k));
  }
  std::printf("  cross-shard atomicity ok (%llu moves)\n",
              static_cast<unsigned long long>(moves.load()));
}

}  // namespace

int main() {
  test_routing();
  test_boundary_fuzz<policy::LT>("LT");
  test_boundary_fuzz<policy::COP>("COP");
  test_boundary_fuzz<policy::TM>("TM");
  test_boundary_fuzz<policy::SkipCAS>("SkipCAS");
  test_composition();
  test_cross_shard_atomicity_stress();
  return leap::test::finish("test_sharded");
}
