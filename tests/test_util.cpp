// Unit tests: PRNG, spin barrier, marked pointers, EBR reclamation.
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "test_common.hpp"
#include "util/ebr.hpp"
#include "util/marked_ptr.hpp"
#include "util/random.hpp"
#include "util/spin_barrier.hpp"

namespace {

void test_random() {
  leap::util::Xoshiro256 a(42);
  leap::util::Xoshiro256 b(42);
  for (int i = 0; i < 1000; ++i) CHECK_EQ(a.next(), b.next());
  leap::util::Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    CHECK(rng.next_below(17) < 17);
  }
  CHECK_EQ(rng.next_below(0), 0u);
  CHECK_EQ(rng.next_below(1), 0u);
}

void test_marked_ptr() {
  int value = 5;
  const std::uint64_t word = leap::util::to_word(&value);
  CHECK(!leap::util::is_marked(word));
  const std::uint64_t marked = leap::util::with_mark(word);
  CHECK(leap::util::is_marked(marked));
  CHECK_EQ(leap::util::without_mark(marked), word);
  CHECK(leap::util::to_ptr<int>(marked) == &value);
  CHECK_EQ(*leap::util::to_ptr<int>(marked), 5);
}

void test_spin_barrier() {
  constexpr unsigned kThreads = 4;
  constexpr int kRounds = 100;
  leap::util::SpinBarrier barrier(kThreads);
  std::atomic<int> counter{0};
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        counter.fetch_add(1);
        barrier.arrive_and_wait();
        // Between barriers every thread observes a full round.
        CHECK_EQ(counter.load(), static_cast<int>(kThreads) * (round + 1));
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  CHECK_EQ(counter.load(), static_cast<int>(kThreads) * kRounds);
}

std::atomic<int> g_deleted{0};

void test_ebr() {
  g_deleted.store(0);
  constexpr int kItems = 2000;
  {
    leap::util::ebr::Guard guard;
    for (int i = 0; i < kItems; ++i) {
      leap::util::ebr::retire(new int(i), [](void* p) {
        delete static_cast<int*>(p);
        g_deleted.fetch_add(1);
      });
    }
  }
  leap::util::ebr::collect();
  CHECK_EQ(g_deleted.load(), kItems);
  // Concurrent churn: guards + retire from several threads, then a
  // quiescent collect must reclaim everything.
  g_deleted.store(0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 5000; ++i) {
        leap::util::ebr::Guard guard;
        leap::util::ebr::retire(new int(i), [](void* p) {
          delete static_cast<int*>(p);
          g_deleted.fetch_add(1);
        });
      }
    });
  }
  for (auto& thread : threads) thread.join();
  leap::util::ebr::collect();
  CHECK_EQ(g_deleted.load(), 4 * 5000);
  CHECK_EQ(leap::util::ebr::pending_count(), 0u);
}

}  // namespace

int main() {
  test_random();
  test_marked_ptr();
  test_spin_barrier();
  test_ebr();
  return leap::test::finish("test_util");
}
