// Crash-point torture battery for the durable tier's failure
// semantics (leaplist/store/io.hpp + store.hpp). Everything here runs
// the store over a FaultIo so the disk fails deterministically at the
// N-th syscall, then recovers on the real Io and checks the acked-
// durable contract from both sides:
//
//   * the fsync-never-acks regression: one failed fdatasync means the
//     batch answers false, the store fail-stops read-only, the sync is
//     NEVER retried (fsyncgate), and a restart forgets the batch;
//   * the battery proper: a fixed scripted workload is dry-run once to
//     count its matching syscalls (N), then re-run once per fault
//     index k = 1..N with a sticky fault armed at call k — after every
//     single run, recovery on the real Io must show every acked write
//     present (always/group), every failed write absent, and no torn
//     state, across all three fsync modes and two fault kinds;
//   * mid-life run corruption: a bit flipped inside a checkpointed
//     run's first block is a counted read error (corrupt_blocks) that
//     degrades the block to "absent here" — never a wrong answer, and
//     never fail-stop;
//   * the wire: a leapd server whose store fail-stops answers writes
//     Err::kStoreFailed on the SAME connection while gets, scans, and
//     Stats keep serving, and a restart on a healthy Io recovers.
//
// Every test runs in a fresh mkdtemp directory and removes it; the
// file is in the ASan and TSan CI jobs.
#include <stdlib.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "leaplist/net/client.hpp"
#include "leaplist/net/server.hpp"
#include "leaplist/sharded.hpp"
#include "leaplist/store/io.hpp"
#include "leaplist/store/store.hpp"
#include "leaplist/txn.hpp"
#include "test_common.hpp"

namespace store = leap::store;
namespace net = leap::net;

namespace {

using MapType = store::Store::MapType;

std::string make_dir() {
  char buf[] = "/tmp/leapfault-test-XXXXXX";
  CHECK(::mkdtemp(buf) != nullptr);
  return buf;
}

void remove_dir(const std::string& dir) {
  const std::string cmd = "rm -rf '" + dir + "'";
  (void)std::system(cmd.c_str());
}

/// Deterministic value oracle; the round tag makes every (key, round)
/// value distinct, so an un-acked overwrite can never masquerade as an
/// acked one.
std::int64_t value_of(std::int64_t key, std::int64_t round = 0) {
  return key * 31 + 7 + round * 1'000'003;
}

/// One batch through log_batch with the server's STM closure shape.
/// Returns log_batch's verdict — the ack decision under test.
[[nodiscard]] bool apply_batch(store::Store& st, MapType& map,
                               const std::vector<store::LogOp>& ops) {
  return st.log_batch(ops.data(), ops.size(), [&] {
    leap::txn([&](leap::stm::Tx& tx) {
      for (const auto& op : ops) {
        if (op.erase) {
          map.erase_in(tx, op.key);
        } else {
          map.insert_in(tx, op.key, op.value);
        }
      }
    });
  });
}

std::optional<std::int64_t> lookup(store::Store& st, MapType& map,
                                   std::int64_t key) {
  if (auto hot = map.get(key)) return hot;
  return st.get_cold(key);
}

// --- regression: a failed fdatasync never acks, and is never retried --

void test_fsync_failure_never_acks() {
  const std::string dir = make_dir();
  store::FaultIo fio(store::real_io());  // unarmed: pass-through
  MapType map({.shards = 1});
  store::StoreOptions opts;
  opts.data_dir = dir;
  opts.fsync_mode = store::FsyncMode::kAlways;
  opts.flush_poll_ms = 0;
  opts.io = &fio;
  {
    store::Store st(map, opts);
    std::string err;
    CHECK(st.open(&err));

    // Healthy batch: acked.
    CHECK(apply_batch(st, map, {{false, 1, value_of(1)}}));
    CHECK(!st.fail_stop());

    // One-shot sync failure: if the store EVER retried the fdatasync,
    // the retry would succeed and this batch would (wrongly) ack —
    // the CHECKs below pin both the verdict and the call count.
    fio.arm(*store::parse_fault_spec("sync:1:syncfail"));
    CHECK(!apply_batch(st, map, {{false, 2, value_of(2)}}));
    CHECK(st.fail_stop());
    CHECK_EQ(st.stats().fail_stop, std::uint64_t{1});
    CHECK(!st.last_error().empty());

    // Subsequent mutations are rejected BEFORE apply: the memtable
    // never sees key 3.
    CHECK(!apply_batch(st, map, {{false, 3, value_of(3)}}));
    CHECK(!map.get(3).has_value());

    // Reads keep serving off the read-only store.
    const auto got = lookup(st, map, 1);
    CHECK(got.has_value());
    CHECK_EQ(*got, value_of(1));
    std::vector<store::Store::ScanPair> out;
    CHECK(st.scan_merged(-1, 100, out) >= 1);

    st.close();
    // Exactly ONE sync-point call matched since arming: the failed
    // fdatasync. No retry, no close-time sync on the unhealthy shard.
    CHECK_EQ(fio.matched_calls(), std::uint64_t{1});
  }

  // Restart on the real Io: the acked write is back, the failed and
  // the rejected ones are forgotten — exactly the un-acked contract.
  {
    MapType map2({.shards = 1});
    store::StoreOptions ropts = opts;
    ropts.io = nullptr;
    store::Store st(map2, ropts);
    std::string err;
    CHECK(st.open(&err));
    CHECK(!st.fail_stop());
    const auto got = lookup(st, map2, 1);
    CHECK(got.has_value());
    CHECK_EQ(*got, value_of(1));
    CHECK(!lookup(st, map2, 2).has_value());
    CHECK(!lookup(st, map2, 3).has_value());
    st.close();
  }
  remove_dir(dir);
  leap::test::finish("faults fsync never acks");
}

// --- the torture battery ----------------------------------------------

struct BatteryLog {
  std::map<std::int64_t, std::int64_t> oracle;  // acked state, exact
  std::set<std::pair<std::int64_t, std::int64_t>> acked_values;
  std::set<std::pair<std::int64_t, std::int64_t>> unacked_puts;
  std::set<std::int64_t> touched;
};

/// The scripted workload: 8 put batches, an erase batch, a checkpoint,
/// 4 more put batches, one overwrite batch, close. Single shard and no
/// background flusher, so the syscall sequence is a pure function of
/// the workload — armed at the k-th matching call, the fault fires at
/// the same place every time.
void run_workload(store::Store& st, MapType& map, BatteryLog& log) {
  auto run_batch = [&](const std::vector<store::LogOp>& ops) {
    const bool ok = apply_batch(st, map, ops);
    if (!ok) CHECK(st.fail_stop());  // false only ever means fail-stop
    for (const auto& op : ops) {
      log.touched.insert(op.key);
      if (ok) {
        if (op.erase) {
          log.oracle.erase(op.key);
        } else {
          log.oracle[op.key] = op.value;
          log.acked_values.insert({op.key, op.value});
        }
      } else if (!op.erase) {
        log.unacked_puts.insert({op.key, op.value});
      }
    }
  };
  for (std::int64_t b = 0; b < 8; ++b) {
    std::vector<store::LogOp> ops;
    for (std::int64_t i = 0; i < 3; ++i) {
      const std::int64_t key = b * 3 + i;
      ops.push_back({false, key, value_of(key, b)});
    }
    run_batch(ops);
  }
  run_batch({{true, 0, 0}, {true, 1, 0}, {true, 2, 0}});
  st.checkpoint();
  for (std::int64_t b = 8; b < 12; ++b) {
    std::vector<store::LogOp> ops;
    for (std::int64_t i = 0; i < 3; ++i) {
      const std::int64_t key = b * 3 + i;
      ops.push_back({false, key, value_of(key, b)});
    }
    run_batch(ops);
  }
  run_batch({{false, 3, value_of(3, 99)},
             {false, 4, value_of(4, 99)},
             {false, 5, value_of(5, 99)}});
  st.close();
}

/// Recover `dir` on the real Io and hold the recovered state against
/// the battery log. always/group: exact oracle equality — every acked
/// write present with its acked value, everything else absent. kOff
/// acks on append (durability is best-effort by contract), so the
/// strong direction is weakened to: nothing un-acked ever surfaces,
/// and every surfaced value was once acked.
void check_recovery(const std::string& dir, store::FsyncMode mode,
                    const BatteryLog& log) {
  MapType map({.shards = 1});
  store::StoreOptions opts;
  opts.data_dir = dir;
  opts.fsync_mode = mode;
  opts.flush_poll_ms = 0;
  store::Store st(map, opts);
  std::string err;
  CHECK(st.open(&err));
  CHECK(!st.fail_stop());
  for (const std::int64_t key : log.touched) {
    const auto got = lookup(st, map, key);
    if (mode != store::FsyncMode::kOff) {
      const auto want = log.oracle.find(key);
      if (want != log.oracle.end()) {
        CHECK(got.has_value());
        CHECK_EQ(*got, want->second);
      } else {
        CHECK(!got.has_value());
      }
    } else if (got.has_value()) {
      CHECK(log.acked_values.count({key, *got}) == 1);
      CHECK(log.unacked_puts.count({key, *got}) == 0);
    }
  }
  st.close();
}

void test_torture_battery() {
  const struct {
    const char* name;
    store::FsyncMode mode;
  } modes[] = {
      {"always", store::FsyncMode::kAlways},
      {"group", store::FsyncMode::kGroup},
      {"off", store::FsyncMode::kOff},
  };
  const char* kinds[] = {"any:1:eio:sticky", "sync:1:syncfail:sticky"};

  for (const auto& m : modes) {
    for (const char* kind : kinds) {
      store::FaultSpec spec = *store::parse_fault_spec(kind);

      // Dry run: arm as a pure counter (nth = UINT64_MAX never fires)
      // and learn N, the number of matching syscalls the workload
      // makes in this mode.
      std::uint64_t total = 0;
      {
        const std::string dir = make_dir();
        store::FaultIo fio(store::real_io());
        MapType map({.shards = 1});
        store::StoreOptions opts;
        opts.data_dir = dir;
        opts.fsync_mode = m.mode;
        opts.flush_poll_ms = 0;
        opts.io = &fio;
        store::Store st(map, opts);
        std::string err;
        CHECK(st.open(&err));
        store::FaultSpec counter = spec;
        counter.nth = std::numeric_limits<std::uint64_t>::max();
        fio.arm(counter);
        BatteryLog log;
        run_workload(st, map, log);
        total = fio.matched_calls();
        CHECK_EQ(fio.faults_injected(), std::uint64_t{0});
        check_recovery(dir, m.mode, log);  // clean run sanity
        remove_dir(dir);
      }
      CHECK(total > 0);

      // The battery: one full run per fault index.
      for (std::uint64_t k = 1; k <= total; ++k) {
        const std::string dir = make_dir();
        store::FaultIo fio(store::real_io());
        MapType map({.shards = 1});
        store::StoreOptions opts;
        opts.data_dir = dir;
        opts.fsync_mode = m.mode;
        opts.flush_poll_ms = 0;
        opts.io = &fio;
        store::Store st(map, opts);
        std::string err;
        CHECK(st.open(&err));
        store::FaultSpec armed = spec;
        armed.nth = k;
        fio.arm(armed);
        BatteryLog log;
        run_workload(st, map, log);
        CHECK(fio.faults_injected() >= 1);  // every k <= N fires
        check_recovery(dir, m.mode, log);
        remove_dir(dir);
      }
      std::printf("  battery %s/%s: %llu fault points\n", m.name, kind,
                  static_cast<unsigned long long>(total));
    }
  }
  leap::test::finish("faults torture battery");
}

// --- mid-life run corruption is a counted read error ------------------

void test_run_bitflip_corrupt_block() {
  const std::string dir = make_dir();
  store::FaultIo fio(store::real_io());
  MapType map({.shards = 1});
  store::StoreOptions opts;
  opts.data_dir = dir;
  opts.fsync_mode = store::FsyncMode::kGroup;
  opts.flush_poll_ms = 0;
  opts.io = &fio;
  store::Store st(map, opts);
  std::string err;
  CHECK(st.open(&err));

  // Ack ~600 keys (3 run blocks at 256 entries/block), then arm a
  // one-shot bit flip on the NEXT write: each batch's group commit
  // drained the WAL buffer, so checkpoint's first write-point call is
  // the run's block 0 — the flip corrupts stored entries while the
  // footer (whose CRC covers only index+bloom+footer) stays valid and
  // the run still loads.
  constexpr std::int64_t kKeys = 600;
  for (std::int64_t at = 0; at < kKeys; at += 50) {
    std::vector<store::LogOp> ops;
    for (std::int64_t k = at; k < at + 50; ++k) {
      ops.push_back({false, k, value_of(k)});
    }
    CHECK(apply_batch(st, map, ops));
  }
  fio.arm(*store::parse_fault_spec("write:1:bitflip"));
  st.checkpoint();
  CHECK_EQ(fio.faults_injected(), std::uint64_t{1});
  CHECK(st.stats().runs >= 1);
  CHECK(!st.fail_stop());  // corruption at rest is NOT a write failure

  // A block-0 key: the CRC check catches the flip, the store counts it
  // and degrades the block to "absent here" — never a wrong value.
  const auto bad = lookup(st, map, 0);
  CHECK(!bad.has_value());
  CHECK(st.stats().corrupt_blocks >= 1);
  CHECK(!st.fail_stop());

  // A key in a later, untouched block still reads back exactly.
  const auto good = lookup(st, map, 599);
  CHECK(good.has_value());
  CHECK_EQ(*good, value_of(599));

  st.close();
  remove_dir(dir);
  leap::test::finish("faults run bitflip");
}

// --- the wire: fail-stop over a live connection -----------------------

void test_wire_store_failed() {
  const std::string dir = make_dir();
  store::FaultIo fio(store::real_io());
  {
    net::ServerOptions sopts;
    sopts.port = 0;
    sopts.workers = 1;
    sopts.shards = 1;
    sopts.data_dir = dir;
    sopts.fsync_mode = store::FsyncMode::kAlways;
    sopts.store_io = &fio;
    net::Server server(sopts);
    std::string err;
    CHECK(server.start(&err));

    net::Client c;
    CHECK(c.connect("127.0.0.1", server.port(), 5000));
    CHECK(c.put(10, 111));  // healthy: acked

    // Kill the disk under the store (sticky: every sync from here on
    // fails). The next write must answer kStoreFailed — same
    // connection, which must survive.
    fio.arm(*store::parse_fault_spec("sync:1:syncfail:sticky"));
    c.queue_put(20, 222);
    CHECK(c.flush());
    auto resp = c.read_response();
    CHECK(resp.has_value());
    CHECK(resp->status == net::Status::kError);
    CHECK(static_cast<net::Err>(resp->error) == net::Err::kStoreFailed);
    CHECK(!c.failed());

    // Reads and scans still serve on the same connection.
    const auto got = c.get(10);
    CHECK(got.has_value());
    CHECK_EQ(*got, std::int64_t{111});
    std::vector<std::pair<std::int64_t, std::int64_t>> pairs;
    CHECK(c.scan(0, 1'000, 0, pairs) >= 1);

    // An erase is a write too.
    c.queue_erase(10);
    CHECK(c.flush());
    resp = c.read_response();
    CHECK(resp.has_value());
    CHECK(resp->status == net::Status::kError);
    CHECK(static_cast<net::Err>(resp->error) == net::Err::kStoreFailed);

    // The Stats opcode reports the condition.
    const auto stats = c.stats();
    CHECK(stats.has_value());
    CHECK_EQ(stats->store_fail_stop, std::uint64_t{1});

    server.stop();
  }

  // Restart on the healthy real Io over the same directory: the acked
  // write recovered, the store-failed one correctly forgotten.
  {
    net::ServerOptions sopts;
    sopts.port = 0;
    sopts.workers = 1;
    sopts.shards = 1;
    sopts.data_dir = dir;
    sopts.fsync_mode = store::FsyncMode::kAlways;
    net::Server server(sopts);
    std::string err;
    CHECK(server.start(&err));
    net::Client c;
    CHECK(c.connect("127.0.0.1", server.port(), 5000));
    const auto got = c.get(10);
    CHECK(got.has_value());
    CHECK_EQ(*got, std::int64_t{111});
    CHECK(!c.get(20).has_value());
    CHECK(c.put(30, 333));  // healthy again: writes ack
    const auto stats = c.stats();
    CHECK(stats.has_value());
    CHECK_EQ(stats->store_fail_stop, std::uint64_t{0});
    server.stop();
  }
  remove_dir(dir);
  leap::test::finish("faults wire store failed");
}

}  // namespace

int main() {
  test_fsync_failure_never_acks();
  test_torture_battery();
  test_run_bitflip_corrupt_block();
  test_wire_store_failed();
  return leap::test::failure_count() == 0 ? 0 : 1;
}
