// Functional + stress tests for the skip-list baselines.
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <thread>
#include <vector>

#include "leaplist/skiplist.hpp"
#include "test_common.hpp"
#include "util/ebr.hpp"
#include "util/random.hpp"
#include "util/spin_barrier.hpp"

using namespace leap::skip;
using leap::core::KV;
using leap::core::Params;

namespace {

std::chrono::milliseconds stress_duration() {
  return leap::test::stress_duration(std::chrono::milliseconds(300));
}

template <typename ListT>
void test_functional(const char* name) {
  const Params params{.node_size = 300, .max_level = 12};
  ListT list(params);
  std::map<Key, Value> reference;
  leap::util::Xoshiro256 rng(99);
  for (int op = 0; op < 20000; ++op) {
    const Key key = static_cast<Key>(1 + rng.next_below(1500));
    const int dial = static_cast<int>(rng.next_below(100));
    if (dial < 50) {
      const Value value = static_cast<Value>(rng.next_below(1u << 30));
      const bool inserted = list.insert(key, value);
      CHECK_EQ(inserted, reference.find(key) == reference.end());
      reference[key] = value;
    } else if (dial < 80) {
      const bool erased = list.erase(key);
      CHECK_EQ(erased, reference.erase(key) > 0);
    } else {
      const auto expected = reference.find(key);
      const auto actual = list.get(key);
      CHECK_EQ(actual.has_value(), expected != reference.end());
      if (actual) CHECK_EQ(*actual, expected->second);
    }
  }
  // Quiescent range scan agrees with the reference.
  std::vector<KV> out;
  list.range_query(1, 1500, out);
  CHECK_EQ(out.size(), reference.size());
  std::size_t n = 0;
  for (const auto& [key, value] : reference) {
    CHECK_EQ(out[n].key, key);
    CHECK_EQ(out[n].value, value);
    ++n;
  }
  // bulk_load path.
  ListT loaded(params);
  std::vector<KV> pairs;
  for (Key k = 10; k <= 1000; k += 10) pairs.push_back(KV{k, k + 1});
  loaded.bulk_load(pairs);
  CHECK_EQ(*loaded.get(10), 11);
  CHECK_EQ(*loaded.get(1000), 1001);
  CHECK(!loaded.get(15).has_value());
  loaded.range_query(100, 200, out);
  CHECK_EQ(out.size(), 11u);
  std::printf("  functional %s ok\n", name);
}

template <typename ListT>
void test_stress(const char* name) {
  constexpr Key kRange = 400;
  const Params params{.node_size = 300, .max_level = 10};
  ListT list(params);
  std::atomic<bool> stop{false};
  constexpr unsigned kThreads = 6;
  leap::util::SpinBarrier barrier(kThreads + 1);
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      leap::util::Xoshiro256 rng(500 + t);
      std::vector<KV> out;
      barrier.arrive_and_wait();
      while (!stop.load(std::memory_order_relaxed)) {
        const Key key = static_cast<Key>(1 + rng.next_below(kRange));
        switch (rng.next_below(4)) {
          case 0:
            list.insert(key, key * 5);
            break;
          case 1:
            list.erase(key);
            break;
          case 2: {
            const auto value = list.get(key);
            if (value) CHECK_EQ(*value, key * 5);
            break;
          }
          default: {
            list.range_query(key, key + 50, out);
            Key prev = 0;
            for (const KV& kv : out) {
              CHECK(kv.key > prev);
              CHECK_EQ(kv.value, kv.key * 5);
              prev = kv.key;
            }
            break;
          }
        }
      }
    });
  }
  barrier.arrive_and_wait();
  std::this_thread::sleep_for(stress_duration());
  stop.store(true, std::memory_order_release);
  for (auto& thread : threads) thread.join();
  // Sequential agreement after the dust settles.
  std::vector<KV> all;
  list.range_query(1, kRange, all);
  for (const KV& kv : all) {
    const auto value = list.get(kv.key);
    CHECK(value.has_value());
    CHECK_EQ(*value, kv.key * 5);
  }
  std::printf("  stress %s ok (%zu keys at rest)\n", name, all.size());
}

void test_cas_reclamation_churn() {
  // Eager-reclamation regression: heavy insert/erase churn must retire
  // replaced nodes promptly through EBR (the old allocation-registry
  // scheme kept every node alive until destruction) without freeing a
  // node a concurrent traversal can still reach — the ASan job verifies
  // the frees, TSan the races.
  {
    SkipListCAS list(Params{.node_size = 300, .max_level = 8});
    constexpr int kPairs = 50000;
    for (int i = 0; i < kPairs; ++i) {
      const Key key = 1 + (i % 16);
      list.insert(key, key);
      CHECK(list.erase(key));
    }
    // Single-threaded, every erase fully unlinks its node, so the EBR
    // backlog must stay far below the churn volume.
    CHECK(leap::util::ebr::pending_count() < 5000);
  }
  {
    SkipListCAS list(Params{.node_size = 300, .max_level = 10});
    constexpr Key kRange = 128;
    std::atomic<bool> stop{false};
    constexpr unsigned kChurners = 4;
    constexpr unsigned kReaders = 2;
    leap::util::SpinBarrier barrier(kChurners + kReaders + 1);
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kChurners; ++t) {
      threads.emplace_back([&, t] {
        leap::util::Xoshiro256 rng(900 + t);
        barrier.arrive_and_wait();
        while (!stop.load(std::memory_order_relaxed)) {
          const Key key = static_cast<Key>(1 + rng.next_below(kRange));
          list.insert(key, key * 5);
          list.erase(key);
        }
      });
    }
    for (unsigned t = 0; t < kReaders; ++t) {
      threads.emplace_back([&, t] {
        leap::util::Xoshiro256 rng(950 + t);
        std::vector<KV> out;
        barrier.arrive_and_wait();
        while (!stop.load(std::memory_order_relaxed)) {
          const Key key = static_cast<Key>(1 + rng.next_below(kRange));
          const auto value = list.get(key);
          if (value) CHECK_EQ(*value, key * 5);
          list.range_query(key, key + 16, out);
          for (const KV& kv : out) CHECK_EQ(kv.value, kv.key * 5);
        }
      });
    }
    barrier.arrive_and_wait();
    std::this_thread::sleep_for(stress_duration());
    stop.store(true, std::memory_order_release);
    for (auto& thread : threads) thread.join();
  }
  std::printf("  reclamation churn ok\n");
}

}  // namespace

int main() {
  test_functional<SkipListCAS>("SkipListCAS");
  test_functional<SkipListTM>("SkipListTM");
  test_stress<SkipListCAS>("SkipListCAS");
  test_stress<SkipListTM>("SkipListTM");
  test_cas_reclamation_churn();
  return leap::test::finish("test_skiplist");
}
