// Minimal assertion helpers for the ctest suite (no external framework;
// the toolchain image is intentionally dependency-free).
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace leap::test {

/// Stress-test window: LEAP_STRESS_MS overrides `preferred` (the CI
/// sanitizer jobs shrink every stress loop through it).
inline std::chrono::milliseconds stress_duration(
    std::chrono::milliseconds preferred) {
  if (const char* raw = std::getenv("LEAP_STRESS_MS")) {
    const long ms = std::strtol(raw, nullptr, 10);
    if (ms > 0) return std::chrono::milliseconds(ms);
  }
  return preferred;
}

inline int& failure_count() {
  static int failures = 0;
  return failures;
}

inline void fail(const char* file, int line, const std::string& message) {
  std::fprintf(stderr, "FAIL %s:%d: %s\n", file, line, message.c_str());
  ++failure_count();
  std::abort();
}

inline std::string to_display(const std::string& value) { return value; }
inline std::string to_display(const char* value) { return value; }
inline std::string to_display(bool value) { return value ? "true" : "false"; }
template <typename T>
std::string to_display(const T& value) {
  return std::to_string(value);
}

inline int finish(const char* name) {
  if (failure_count() == 0) {
    std::printf("OK %s\n", name);
    return 0;
  }
  return 1;
}

}  // namespace leap::test

#define CHECK(cond)                                                     \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::leap::test::fail(__FILE__, __LINE__, "CHECK(" #cond ") failed"); \
    }                                                                   \
  } while (0)

#define CHECK_EQ(a, b)                                                       \
  do {                                                                       \
    const auto va = (a);                                                     \
    const auto vb = (b);                                                     \
    if (!(va == vb)) {                                                       \
      ::leap::test::fail(__FILE__, __LINE__,                                 \
                         std::string("CHECK_EQ(" #a ", " #b ") failed: ") +  \
                             ::leap::test::to_display(va) + " != " +         \
                             ::leap::test::to_display(vb));                  \
    }                                                                        \
  } while (0)
