// Crash-recovery battery: a REAL kill -9, not a simulation. Each
// scenario forks a child process that runs a full leap::net::Server on
// a scratch --data-dir, drives acknowledged writes into it over
// loopback TCP, SIGKILLs the child mid-life, restarts a server over
// the same directory in-process, and verifies every acknowledged write
// against a client-side std::map oracle — point gets AND a full scan.
// Scenarios cover fsync always and group, a crash with checkpoint
// flushes already on disk (tiny --checkpoint-bytes), and a double
// crash (crash → recover → write more → crash again).
//
// The fork happens while this process is single-threaded (servers
// started by earlier scenarios are stopped and joined first), so the
// battery is safe under ASan and TSan. kOff mode is deliberately NOT
// crash-tested here: its contract allows losing the buffered tail on
// kill -9 (tests/test_store.cpp covers its clean-close durability).
#include <signal.h>
#include <stdlib.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "leaplist/net/client.hpp"
#include "leaplist/net/server.hpp"
#include "test_common.hpp"

namespace net = leap::net;
namespace store = leap::store;

namespace {

using Oracle = std::map<std::int64_t, std::int64_t>;

std::string make_dir() {
  char buf[] = "/tmp/leap-recovery-XXXXXX";
  CHECK(::mkdtemp(buf) != nullptr);
  return buf;
}

void remove_dir(const std::string& dir) {
  const std::string cmd = "rm -rf '" + dir + "'";
  (void)std::system(cmd.c_str());
}

net::ServerOptions server_options(const std::string& dir,
                                  store::FsyncMode mode,
                                  std::size_t checkpoint_bytes) {
  net::ServerOptions opts;
  opts.port = 0;
  opts.workers = 2;
  opts.shards = 4;
  opts.key_hi = 1'000'000;
  opts.data_dir = dir;
  opts.fsync_mode = mode;
  opts.checkpoint_bytes = checkpoint_bytes;
  return opts;
}

/// Deterministic value oracle: expected value is a pure function of
/// the key and a round tag (same scheme as tests/test_store.cpp and
/// loadgen's verify mode).
std::int64_t value_of(std::int64_t key, std::int64_t round = 0) {
  return key * 31 + 7 + round * 1'000'003;
}

/// Fork a child that serves `opts` until it is SIGKILLed. The child
/// writes its ephemeral port (0 on startup failure) down a pipe and
/// then blocks forever; it never returns. Returns the child pid and
/// sets *port.
pid_t spawn_server(const net::ServerOptions& opts, std::uint16_t* port) {
  int fds[2];
  CHECK(::pipe(fds) == 0);
  std::fflush(stdout);  // don't duplicate buffered output into the child
  std::fflush(stderr);
  const pid_t pid = ::fork();
  CHECK(pid >= 0);
  if (pid == 0) {
    // Child: serve until killed. _exit (not exit) on any failure so no
    // parent-inherited atexit/sanitizer hooks run twice.
    ::close(fds[0]);
    net::Server server(opts);
    std::string err;
    std::uint16_t p = server.start(&err) ? server.port() : 0;
    (void)!::write(fds[1], &p, sizeof(p));
    ::close(fds[1]);
    if (p == 0) _exit(1);
    for (;;) ::pause();
  }
  ::close(fds[1]);
  *port = 0;
  CHECK(::read(fds[0], port, sizeof(*port)) ==
        static_cast<ssize_t>(sizeof(*port)));
  ::close(fds[0]);
  CHECK(*port != 0);
  return pid;
}

void kill9(pid_t pid) {
  CHECK(::kill(pid, SIGKILL) == 0);
  int status = 0;
  CHECK(::waitpid(pid, &status, 0) == pid);
  CHECK(WIFSIGNALED(status));
}

/// Acknowledged writes: every put/erase here completed its client
/// round trip before the crash, so recovery MUST reproduce it.
void write_round(net::Client& client, Oracle& oracle, std::int64_t lo,
                 std::int64_t hi, std::int64_t round) {
  for (std::int64_t k = lo; k < hi; ++k) {
    (void)client.put(k, value_of(k, round));
    CHECK(!client.failed());
    oracle[k] = value_of(k, round);
  }
  for (std::int64_t k = lo; k < hi; k += 7) {
    (void)client.erase(k);
    CHECK(!client.failed());
    oracle.erase(k);
  }
}

/// Every oracle key readable with the oracle's value, absent keys
/// absent, and one full scan equal to the oracle, via a live server.
void verify_against_oracle(net::Client& client, const Oracle& oracle) {
  for (const auto& [key, value] : oracle) {
    const auto got = client.get(key);
    CHECK(got.has_value());
    CHECK_EQ(*got, value);
  }
  for (std::int64_t k = 900'000; k < 900'020; ++k) {
    CHECK(!client.get(k).has_value());
  }
  std::vector<std::pair<std::int64_t, std::int64_t>> pairs;
  const std::ptrdiff_t n = client.scan(
      0, 1'000'000, static_cast<std::uint32_t>(oracle.size() + 64), pairs);
  CHECK_EQ(n, static_cast<std::ptrdiff_t>(oracle.size()));
  auto it = oracle.begin();
  for (const auto& [key, value] : pairs) {
    CHECK(it != oracle.end());
    CHECK_EQ(key, it->first);
    CHECK_EQ(value, it->second);
    ++it;
  }
}

/// One full crash cycle: child server ← acked writes ← kill -9 →
/// in-process restart on the same dir → verify. `checkpoint_bytes`
/// small enough forces flushes DURING the write phase, so the crash
/// lands on a runs+WAL mix rather than WAL-only.
void run_crash_cycle(store::FsyncMode mode, std::size_t checkpoint_bytes,
                     std::int64_t nkeys, const char* name) {
  const std::string dir = make_dir();
  Oracle oracle;
  {
    std::uint16_t port = 0;
    const pid_t pid =
        spawn_server(server_options(dir, mode, checkpoint_bytes), &port);
    net::Client client;
    CHECK(client.connect("127.0.0.1", port));
    write_round(client, oracle, 0, nkeys, 0);
    kill9(pid);  // no shutdown, no final fsync — the WAL is all there is
  }
  {
    net::Server server(server_options(dir, mode, checkpoint_bytes));
    std::string err;
    CHECK(server.start(&err));
    const auto stats = server.stats();
    // Something was actually recovered (WAL replay and/or run load).
    CHECK(stats.recovered_ops + stats.store_runs > 0);
    net::Client client;
    CHECK(client.connect("127.0.0.1", server.port()));
    verify_against_oracle(client, oracle);
    server.stop();
  }
  remove_dir(dir);
  leap::test::finish(name);
}

/// Crash, recover, keep writing through the recovered server, crash
/// AGAIN (kill -9 on the second server too), recover once more: the
/// replay-over-runs-then-crash-again composition.
void test_double_crash() {
  const std::string dir = make_dir();
  const auto mode = store::FsyncMode::kGroup;
  constexpr std::size_t kCheckpoint = 8u << 10;  // force mid-run flushes
  Oracle oracle;
  for (std::int64_t round = 0; round < 2; ++round) {
    std::uint16_t port = 0;
    const pid_t pid =
        spawn_server(server_options(dir, mode, kCheckpoint), &port);
    net::Client client;
    CHECK(client.connect("127.0.0.1", port));
    if (round > 0) {
      // The recovered child must already serve the previous rounds.
      verify_against_oracle(client, oracle);
    }
    write_round(client, oracle, round * 150, round * 150 + 300, round);
    kill9(pid);
  }
  {
    net::Server server(server_options(dir, mode, kCheckpoint));
    std::string err;
    CHECK(server.start(&err));
    net::Client client;
    CHECK(client.connect("127.0.0.1", server.port()));
    verify_against_oracle(client, oracle);
    server.stop();
  }
  remove_dir(dir);
  leap::test::finish("recovery double crash");
}

}  // namespace

int main() {
  // WAL-only crash (checkpoint threshold never reached), both acking
  // fsync modes.
  run_crash_cycle(store::FsyncMode::kAlways, 4u << 20, 200,
                  "recovery kill9 fsync=always");
  run_crash_cycle(store::FsyncMode::kGroup, 4u << 20, 400,
                  "recovery kill9 fsync=group");
  // Tiny checkpoint bar: the crash lands on run files + a live WAL.
  run_crash_cycle(store::FsyncMode::kGroup, 8u << 10, 600,
                  "recovery kill9 with checkpoints");
  test_double_crash();
  return leap::test::failure_count() == 0 ? 0 : 1;
}
