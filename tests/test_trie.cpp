// BitTrie unit tests: hits, misses, adversarial-adjacent probes,
// negative keys, and fuzz against binary search.
#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "test_common.hpp"
#include "trie/bit_trie.hpp"
#include "util/random.hpp"

using leap::trie::BitTrie;

namespace {

void check_full(const std::vector<std::int64_t>& keys) {
  const BitTrie trie = BitTrie::build(keys);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    CHECK_EQ(trie.get_index(keys, keys[i]), static_cast<int>(i));
  }
  // Probes adjacent to every key (worst case for blind descent).
  for (const std::int64_t key : keys) {
    for (const std::int64_t probe : {key - 1, key + 1}) {
      const auto it = std::lower_bound(keys.begin(), keys.end(), probe);
      const int expected = (it != keys.end() && *it == probe)
                               ? static_cast<int>(it - keys.begin())
                               : -1;
      CHECK_EQ(trie.get_index(keys, probe), expected);
    }
  }
}

void test_small() {
  check_full({});
  check_full({42});
  check_full({1, 2});
  check_full({0, 1, 2, 3, 4, 5, 6, 7});
  check_full({5, 100, 1000, 1001, 1002, 999999});
  check_full({-100, -50, -1, 0, 1, 50, 100});  // negative keys keep order
}

void test_fuzz() {
  leap::util::Xoshiro256 rng(777);
  for (int round = 0; round < 50; ++round) {
    std::set<std::int64_t> unique;
    const std::size_t count = 1 + rng.next_below(400);
    while (unique.size() < count) {
      unique.insert(static_cast<std::int64_t>(rng.next_below(1u << 20)) -
                    1000);
    }
    const std::vector<std::int64_t> keys(unique.begin(), unique.end());
    check_full(keys);
    const BitTrie trie = BitTrie::build(keys);
    for (int probe_round = 0; probe_round < 200; ++probe_round) {
      const std::int64_t probe =
          static_cast<std::int64_t>(rng.next_below(1u << 20)) - 1000;
      const auto it = std::lower_bound(keys.begin(), keys.end(), probe);
      const int expected = (it != keys.end() && *it == probe)
                               ? static_cast<int>(it - keys.begin())
                               : -1;
      CHECK_EQ(trie.get_index(keys, probe), expected);
    }
  }
}

void test_node_budget() {
  // A PATRICIA trie over n keys has exactly n-1 internal nodes.
  std::vector<std::int64_t> keys;
  for (int i = 0; i < 300; ++i) keys.push_back(i * 7 + 3);
  const BitTrie trie = BitTrie::build(keys);
  CHECK_EQ(trie.internal_nodes(), keys.size() - 1);
}

}  // namespace

int main() {
  test_small();
  test_fuzz();
  test_node_budget();
  return leap::test::finish("test_trie");
}
