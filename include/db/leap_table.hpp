// LeapTable: an in-memory table whose primary and secondary indexes are
// composable typed maps (leap::Map over the TM leap-list policy) — the
// paper's §4 pitch realized with its headline API. Row storage is
// immutable: every insert allocates a fresh row on an allocation
// registry (freed at table destruction), so concurrent scans can
// dereference index values without any per-row reclamation protocol.
//
// Secondary index keys are codec::PackedPair<ColumnValue, RowId>, the
// (column value, row id) packing expressed as an order-preserving key
// codec, so duplicate column values stay distinct; index values are
// typed row pointers, and scans decode rows straight from the index
// visitation. Index maintenance is ONE transaction per row operation
// (leap::txn over the primary plus every secondary), so no concurrent
// reader can observe a row through a stale or phantom secondary entry:
// a multi-index read transaction (get_in/scan_in under leap::txn) sees
// either all of a row's index entries or none of them.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "db/schema.hpp"
#include "leaplist/codec.hpp"
#include "leaplist/map.hpp"
#include "leaplist/sharded.hpp"
#include "leaplist/txn.hpp"

namespace leap::db {

class LeapTable {
  struct Stored {
    Row row;
    Stored* alloc_next;
  };

 public:
  /// Row ids must fit kIdBits so (value, id) packs into a signed word.
  static constexpr int kIdBits = 24;

  using IndexKey = codec::PackedPair<ColumnValue, RowId, kIdBits>;
  /// The primary is a sharded composable map: every row operation still
  /// commits primary + secondaries in ONE transaction, but primary
  /// point traffic spreads over `primary_shards` partitions of the row
  /// id space — index maintenance composes across shards for free
  /// because ShardedMap's `*_in` forms just route within the caller's
  /// transaction.
  using PrimaryIndex = leap::ShardedMap<RowId, const Stored*, policy::TM>;
  using SecondaryIndex = leap::Map<IndexKey, const Stored*, policy::TM>;

  explicit LeapTable(Schema schema, std::size_t primary_shards = 1)
      : schema_(std::move(schema)),
        primary_(std::make_unique<PrimaryIndex>(
            ShardOptions{.shards = primary_shards, .params = index_params()},
            RowId{0}, (RowId{1} << kIdBits) - 1)) {
    for (std::size_t c : schema_.indexed_columns) {
      (void)c;
      secondary_.push_back(
          std::make_unique<SecondaryIndex>(index_params()));
    }
  }

  ~LeapTable() {
    Stored* cur = all_rows_.load(std::memory_order_acquire);
    while (cur != nullptr) {
      Stored* nxt = cur->alloc_next;
      delete cur;
      cur = nxt;
    }
  }

  LeapTable(const LeapTable&) = delete;
  LeapTable& operator=(const LeapTable&) = delete;

  /// Insert or replace: one transaction removes any previous version of
  /// the row and installs the new one across the primary and every
  /// secondary index.
  bool insert(const Row& row) {
    assert(row.values.size() == schema_.columns.size());
    assert(row.id < (RowId{1} << kIdBits));
    Stored* stored = new Stored{row, nullptr};
    Stored* head = all_rows_.load(std::memory_order_relaxed);
    do {
      stored->alloc_next = head;
    } while (!all_rows_.compare_exchange_weak(head, stored,
                                              std::memory_order_acq_rel));
    leap::txn([&](stm::Tx& tx) {
      erase_in(tx, row.id);
      primary_->insert_in(tx, row.id, stored);
      for (std::size_t i = 0; i < schema_.indexed_columns.size(); ++i) {
        const ColumnValue value = row.values[schema_.indexed_columns[i]];
        secondary_[i]->insert_in(tx, IndexKey{value, row.id}, stored);
      }
    });
    return true;
  }

  bool erase(RowId id) {
    return leap::txn([&](stm::Tx& tx) { return erase_in(tx, id); });
  }

  std::optional<Row> get(RowId id) const {
    const auto stored = primary_->get(id);
    if (!stored) return std::nullopt;
    return (*stored)->row;
  }

  /// All rows whose `column` value lies in [low, high]. `column` is an
  /// ordinal into Schema::indexed_columns. REPLACES `out`.
  void scan(std::size_t column, ColumnValue low, ColumnValue high,
            std::vector<Row>& out) const {
    leap::txn([&](stm::Tx& tx) { scan_in(tx, column, low, high, out); });
  }

  // --- Composable forms: enlist in a caller-owned transaction --------
  // (leap::txn), so callers can erase + read + scan several indexes —
  // or several tables — as one atomic unit.

  bool erase_in(stm::Tx& tx, RowId id) {
    const auto stored = primary_->get_in(tx, id);
    if (!stored) return false;
    primary_->erase_in(tx, id);
    for (std::size_t i = 0; i < schema_.indexed_columns.size(); ++i) {
      const ColumnValue value =
          (*stored)->row.values[schema_.indexed_columns[i]];
      secondary_[i]->erase_in(tx, IndexKey{value, id});
    }
    return true;
  }

  std::optional<Row> get_in(stm::Tx& tx, RowId id) const {
    const auto stored = primary_->get_in(tx, id);
    if (!stored) return std::nullopt;
    return (*stored)->row;
  }

  /// Rows decode straight off the index visitation — no intermediate
  /// KV buffer. REPLACES `out`; the visitor's restart hook keeps the
  /// output exact across hybrid-search fallbacks mid-transaction.
  void scan_in(stm::Tx& tx, std::size_t column, ColumnValue low,
               ColumnValue high, std::vector<Row>& out) const {
    out.clear();
    struct RowAppend {
      std::vector<Row>& out;
      std::size_t base;
      void operator()(const IndexKey&, const Stored* stored) {
        out.push_back(stored->row);
      }
      void on_restart() { out.resize(base); }
    } sink{out, out.size()};
    secondary_[column]->for_range_in(
        tx, IndexKey{low, 0},
        IndexKey{high, (RowId{1} << kIdBits) - 1}, sink);
  }

 private:
  static core::Params index_params() {
    // Smaller nodes than the paper's K=300: table updates copy nodes on
    // every index maintenance op, so cheaper copies win here.
    return core::Params{.node_size = 64, .max_level = 12};
  }

  Schema schema_;
  std::unique_ptr<PrimaryIndex> primary_;
  std::vector<std::unique_ptr<SecondaryIndex>> secondary_;
  std::atomic<Stored*> all_rows_{nullptr};
};

}  // namespace leap::db
