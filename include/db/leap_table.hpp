// LeapTable: an in-memory table whose primary and secondary indexes are
// composable leap lists — the paper's §4 pitch realized with its
// headline API. Row storage is immutable: every insert allocates a
// fresh row on an allocation registry (freed at table destruction), so
// concurrent scans can dereference index words without any per-row
// reclamation protocol.
//
// Secondary index keys pack (column value, row id) into one core::Key
// so duplicate column values stay distinct; index values are pointers
// packed into core::Value words, and scans decode rows straight from
// the index. Index maintenance is ONE transaction per row operation
// (leap::txn over the primary plus every secondary), so no concurrent
// reader can observe a row through a stale or phantom secondary entry:
// a multi-index read transaction (get_in/scan_in under leap::txn) sees
// either all of a row's index entries or none of them.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "db/schema.hpp"
#include "leaplist/leaplist.hpp"
#include "leaplist/txn.hpp"

namespace leap::db {

class LeapTable {
 public:
  /// Row ids must fit kIdBits so (value, id) packs into a signed word.
  static constexpr int kIdBits = 24;

  explicit LeapTable(Schema schema)
      : schema_(std::move(schema)),
        primary_(std::make_unique<core::LeapListTM>(index_params())) {
    for (std::size_t c : schema_.indexed_columns) {
      (void)c;
      secondary_.push_back(
          std::make_unique<core::LeapListTM>(index_params()));
    }
  }

  ~LeapTable() {
    Stored* cur = all_rows_.load(std::memory_order_acquire);
    while (cur != nullptr) {
      Stored* nxt = cur->alloc_next;
      delete cur;
      cur = nxt;
    }
  }

  LeapTable(const LeapTable&) = delete;
  LeapTable& operator=(const LeapTable&) = delete;

  /// Insert or replace: one transaction removes any previous version of
  /// the row and installs the new one across the primary and every
  /// secondary index.
  bool insert(const Row& row) {
    assert(row.values.size() == schema_.columns.size());
    assert(row.id < (RowId{1} << kIdBits));
#ifndef NDEBUG
    // Indexed values must survive the (value << kIdBits) packing.
    for (const std::size_t c : schema_.indexed_columns) {
      assert(row.values[c] >= -(ColumnValue{1} << (62 - kIdBits)) &&
             row.values[c] < (ColumnValue{1} << (62 - kIdBits)));
    }
#endif
    Stored* stored = new Stored{row, nullptr};
    Stored* head = all_rows_.load(std::memory_order_relaxed);
    do {
      stored->alloc_next = head;
    } while (!all_rows_.compare_exchange_weak(head, stored,
                                              std::memory_order_acq_rel));
    const core::Value word = to_word(stored);
    leap::txn([&](stm::Tx& tx) {
      erase_in(tx, row.id);
      primary_->insert_in(tx, static_cast<core::Key>(row.id), word);
      for (std::size_t i = 0; i < schema_.indexed_columns.size(); ++i) {
        const ColumnValue value = row.values[schema_.indexed_columns[i]];
        secondary_[i]->insert_in(tx, composite_key(value, row.id), word);
      }
    });
    return true;
  }

  bool erase(RowId id) {
    return leap::txn([&](stm::Tx& tx) { return erase_in(tx, id); });
  }

  std::optional<Row> get(RowId id) const {
    const auto word = primary_->get(static_cast<core::Key>(id));
    if (!word) return std::nullopt;
    return to_row(*word)->row;
  }

  /// All rows whose `column` value lies in [low, high]. `column` is an
  /// ordinal into Schema::indexed_columns.
  void scan(std::size_t column, ColumnValue low, ColumnValue high,
            std::vector<Row>& out) const {
    leap::txn([&](stm::Tx& tx) { scan_in(tx, column, low, high, out); });
  }

  // --- Composable forms: enlist in a caller-owned transaction --------
  // (leap::txn), so callers can erase + read + scan several indexes —
  // or several tables — as one atomic unit.

  bool erase_in(stm::Tx& tx, RowId id) {
    const auto word = primary_->get_in(tx, static_cast<core::Key>(id));
    if (!word) return false;
    primary_->erase_in(tx, static_cast<core::Key>(id));
    const Stored* stored = to_row(*word);
    for (std::size_t i = 0; i < schema_.indexed_columns.size(); ++i) {
      const ColumnValue value =
          stored->row.values[schema_.indexed_columns[i]];
      secondary_[i]->erase_in(tx, composite_key(value, id));
    }
    return true;
  }

  std::optional<Row> get_in(stm::Tx& tx, RowId id) const {
    const auto word = primary_->get_in(tx, static_cast<core::Key>(id));
    if (!word) return std::nullopt;
    return to_row(*word)->row;
  }

  void scan_in(stm::Tx& tx, std::size_t column, ColumnValue low,
               ColumnValue high, std::vector<Row>& out) const {
    out.clear();
    std::vector<core::KV> hits;
    secondary_[column]->range_in(
        tx, composite_key(low, 0),
        composite_key(high, (RowId{1} << kIdBits) - 1), hits);
    out.reserve(hits.size());
    for (const core::KV& kv : hits) out.push_back(to_row(kv.value)->row);
  }

 private:
  struct Stored {
    Row row;
    Stored* alloc_next;
  };

  static core::Params index_params() {
    // Smaller nodes than the paper's K=300: table updates copy nodes on
    // every index maintenance op, so cheaper copies win here.
    return core::Params{.node_size = 64, .max_level = 12};
  }

  static core::Key composite_key(ColumnValue value, RowId id) {
    return (static_cast<core::Key>(value) << kIdBits) |
           static_cast<core::Key>(id);
  }

  static const Stored* to_row(core::Value word) {
    return reinterpret_cast<const Stored*>(
        static_cast<std::uintptr_t>(word));
  }

  static core::Value to_word(const Stored* stored) {
    return static_cast<core::Value>(
        reinterpret_cast<std::uintptr_t>(stored));
  }

  Schema schema_;
  std::unique_ptr<core::LeapListTM> primary_;
  std::vector<std::unique_ptr<core::LeapListTM>> secondary_;
  std::atomic<Stored*> all_rows_{nullptr};
};

}  // namespace leap::db
