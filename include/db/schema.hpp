// Row/schema model for the in-memory-table application benchmark
// (paper §4 future work: leap lists as database indexes).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace leap::db {

using RowId = std::uint64_t;
using ColumnValue = std::int64_t;

struct Schema {
  std::vector<std::string> columns;
  std::vector<std::size_t> indexed_columns;
};

struct Row {
  RowId id = 0;
  std::vector<ColumnValue> values;
};

}  // namespace leap::db
