// The baseline LeapTable competes against in app_db: ordered red-black
// tree indexes (std::map / std::multimap) behind one global
// reader-writer lock — every scan blocks every writer.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <vector>

#include "db/schema.hpp"

namespace leap::db {

class LockedTreeTable {
 public:
  explicit LockedTreeTable(Schema schema)
      : state_(std::make_unique<State>()) {
    state_->schema = std::move(schema);
    state_->secondary.resize(state_->schema.indexed_columns.size());
  }

  bool insert(const Row& row) {
    std::unique_lock<std::shared_mutex> lk(state_->mu);
    erase_locked(row.id);
    state_->primary.emplace(row.id, row);
    for (std::size_t i = 0; i < state_->schema.indexed_columns.size(); ++i) {
      state_->secondary[i].emplace(
          row.values[state_->schema.indexed_columns[i]], row.id);
    }
    return true;
  }

  bool erase(RowId id) {
    std::unique_lock<std::shared_mutex> lk(state_->mu);
    return erase_locked(id);
  }

  std::optional<Row> get(RowId id) const {
    std::shared_lock<std::shared_mutex> lk(state_->mu);
    const auto it = state_->primary.find(id);
    if (it == state_->primary.end()) return std::nullopt;
    return it->second;
  }

  void scan(std::size_t column, ColumnValue low, ColumnValue high,
            std::vector<Row>& out) const {
    out.clear();
    std::shared_lock<std::shared_mutex> lk(state_->mu);
    const auto& index = state_->secondary[column];
    for (auto it = index.lower_bound(low);
         it != index.end() && it->first <= high; ++it) {
      const auto row = state_->primary.find(it->second);
      if (row != state_->primary.end()) out.push_back(row->second);
    }
  }

 private:
  struct State {
    Schema schema;
    mutable std::shared_mutex mu;
    std::map<RowId, Row> primary;
    std::vector<std::multimap<ColumnValue, RowId>> secondary;
  };

  bool erase_locked(RowId id) {
    const auto it = state_->primary.find(id);
    if (it == state_->primary.end()) return false;
    for (std::size_t i = 0; i < state_->schema.indexed_columns.size(); ++i) {
      const ColumnValue value =
          it->second.values[state_->schema.indexed_columns[i]];
      auto [lo, hi] = state_->secondary[i].equal_range(value);
      for (auto e = lo; e != hi; ++e) {
        if (e->second == id) {
          state_->secondary[i].erase(e);
          break;
        }
      }
    }
    state_->primary.erase(it);
    return true;
  }

  std::unique_ptr<State> state_;
};

}  // namespace leap::db
