// Skip-list baselines for the paper's §3.1 comparison (one key/value
// pair per node, unlike the fat-node leap list):
//
//   SkipListCAS  lock-free skiplist in the Herlihy–Shavit style with
//                marked next pointers. Range scans are unsynchronized —
//                fast but NOT linearizable, which is exactly the
//                trade-off Figure 17(d) is about. Reclamation is eager
//                through the shared EBR domain: a snipped node can
//                remain referenced from higher index levels, so each
//                node counts its remaining linked levels and retires on
//                the unlink that drops the count to zero (inserts that
//                bail before fully linking give back the never-linked
//                levels). Every operation runs under an ebr::Guard.
//
//   SkipListTM   the same structure with every access instrumented
//                through the STM — the paper's Skip-tm straw man.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <new>
#include <optional>
#include <type_traits>
#include <vector>

#include "leaplist/leaplist.hpp"
#include "stm/stm.hpp"
#include "util/ebr.hpp"
#include "util/marked_ptr.hpp"
#include "util/random.hpp"

namespace leap::skip {

using core::Key;
using core::KV;
using core::Params;
using core::Value;

class SkipListCAS {
  /// One flat allocation per node — header plus a trailing array of
  /// `level` marked next words — on the same util::ebr recycling pool
  /// the leap list uses, so the fig17 comparison prices allocation the
  /// same way on both sides.
  struct Node {
    Node(Key key_in, Value value_in, int level_in)
        : key(key_in),
          value(value_in),
          level(level_in),
          links_remaining(level_in) {}
    const Key key;
    std::atomic<Value> value;
    const std::int32_t level;
    /// Linked levels not yet unlinked. Starts at `level`; each
    /// successful snip gives back one, an insert that bails before
    /// fully linking gives back the never-linked levels; whoever drops
    /// it to zero retires the node (it is unreachable from every level
    /// from then on — only already-pinned traversals can still hold
    /// it, which is exactly what EBR covers).
    std::atomic<int> links_remaining;

    /// Trailing marked-pointer word for level `i`.
    std::atomic<std::uint64_t>& next(int i) noexcept {
      assert(i >= 0 && i < level);
      return reinterpret_cast<std::atomic<std::uint64_t>*>(
          reinterpret_cast<std::byte*>(this) + sizeof(Node))[i];
    }

    const std::atomic<std::uint64_t>& next(int i) const noexcept {
      assert(i >= 0 && i < level);
      return reinterpret_cast<const std::atomic<std::uint64_t>*>(
          reinterpret_cast<const std::byte*>(this) + sizeof(Node))[i];
    }

    static std::size_t bytes_for(int level) noexcept {
      return sizeof(Node) + static_cast<std::size_t>(level) *
                                sizeof(std::atomic<std::uint64_t>);
    }
  };

  static_assert(sizeof(Node) % alignof(std::atomic<std::uint64_t>) == 0,
                "trailing next words start aligned");
  static_assert(std::is_trivially_destructible_v<Node>);

  static Node* make_node(Key key, Value value, int level) {
    void* raw = util::ebr::pool_alloc(Node::bytes_for(level));
    Node* node = new (raw) Node(key, value, level);
    auto* next = reinterpret_cast<std::atomic<std::uint64_t>*>(
        reinterpret_cast<std::byte*>(raw) + sizeof(Node));
    for (int i = 0; i < level; ++i) {
      new (next + i) std::atomic<std::uint64_t>(0);
    }
    return node;
  }

  static void destroy_node(Node* node) noexcept {
    if (node != nullptr) {
      util::ebr::pool_free(node, Node::bytes_for(node->level));
    }
  }

  static void recycle_node(void* raw) {
    destroy_node(static_cast<Node*>(raw));
  }

 public:
  explicit SkipListCAS(const Params& params)
      : max_level_(params.max_level) {
    assert(max_level_ >= 1 && max_level_ <= core::kMaxHeight);
    head_ = make_node(std::numeric_limits<Key>::min(), 0, max_level_);
    tail_ = make_node(std::numeric_limits<Key>::max(), 0, max_level_);
    for (int i = 0; i < max_level_; ++i) {
      head_->next(i).store(util::to_word(tail_), std::memory_order_relaxed);
    }
  }

  ~SkipListCAS() {
    // A marked node can still be linked at some levels (snipping is
    // lazy), so sweep every level, dedup, and free once; fully-unlinked
    // nodes already went through EBR and are drained by collect().
    std::vector<Node*> linked;
    const auto next_of = [](const Node* n, int i) {
      return util::to_ptr<Node>(
          util::without_mark(n->next(i).load(std::memory_order_acquire)));
    };
    for (int i = max_level_ - 1; i >= 0; --i) {
      for (Node* cur = next_of(head_, i); cur != tail_;
           cur = next_of(cur, i)) {
        linked.push_back(cur);
      }
    }
    std::sort(linked.begin(), linked.end());
    linked.erase(std::unique(linked.begin(), linked.end()), linked.end());
    for (Node* node : linked) destroy_node(node);
    destroy_node(head_);
    destroy_node(tail_);
    util::ebr::collect();
  }

  SkipListCAS(const SkipListCAS&) = delete;
  SkipListCAS& operator=(const SkipListCAS&) = delete;

  void bulk_load(const std::vector<KV>& pairs) {
    std::array<Node*, core::kMaxHeight> last;
    last.fill(head_);
    for (const KV& kv : core::sorted_unique(pairs)) {
      Node* node = make_node(kv.key, kv.value, random_level());
      for (int i = 0; i < node->level; ++i) {
        last[i]->next(i).store(util::to_word(node),
                               std::memory_order_relaxed);
        last[i] = node;
      }
    }
    for (int i = 0; i < max_level_; ++i) {
      last[i]->next(i).store(util::to_word(tail_),
                             std::memory_order_relaxed);
    }
  }

  bool insert(Key key, Value value) {
    util::ebr::Guard guard;
    Node* preds[core::kMaxHeight];
    Node* succs[core::kMaxHeight];
    while (true) {
      if (find(key, preds, succs)) {
        succs[0]->value.store(value, std::memory_order_release);
        return false;
      }
      Node* node = make_node(key, value, random_level());
      for (int i = 0; i < node->level; ++i) {
        node->next(i).store(util::to_word(succs[i]),
                            std::memory_order_relaxed);
      }
      std::uint64_t expected = util::to_word(succs[0]);
      if (!preds[0]->next(0).compare_exchange_strong(
              expected, util::to_word(node), std::memory_order_acq_rel)) {
        destroy_node(node);  // never published; retry from scratch
        continue;
      }
      for (int i = 1; i < node->level; ++i) {
        while (true) {
          std::uint64_t own = node->next(i).load(std::memory_order_acquire);
          if (util::is_marked(own)) {
            // Concurrently erased; levels i.. were never linked.
            give_back_links(node, node->level - i);
            return true;
          }
          if (util::to_ptr<Node>(own) != succs[i] &&
              !node->next(i).compare_exchange_strong(
                  own, util::to_word(succs[i]), std::memory_order_acq_rel)) {
            continue;
          }
          std::uint64_t want = util::to_word(succs[i]);
          if (preds[i]->next(i).compare_exchange_strong(
                  want, util::to_word(node), std::memory_order_acq_rel)) {
            break;
          }
          find(key, preds, succs);
          if (succs[0] != node) {
            // Removed before fully linked; levels i.. never happened.
            give_back_links(node, node->level - i);
            return true;
          }
        }
      }
      return true;
    }
  }

  bool erase(Key key) {
    util::ebr::Guard guard;
    Node* preds[core::kMaxHeight];
    Node* succs[core::kMaxHeight];
    if (!find(key, preds, succs)) return false;
    Node* victim = succs[0];
    for (int i = victim->level - 1; i >= 1; --i) {
      std::uint64_t w = victim->next(i).load(std::memory_order_acquire);
      while (!util::is_marked(w)) {
        victim->next(i).compare_exchange_weak(w, util::with_mark(w),
                                              std::memory_order_acq_rel);
      }
    }
    std::uint64_t w = victim->next(0).load(std::memory_order_acquire);
    while (true) {
      if (util::is_marked(w)) return false;  // lost the race
      if (victim->next(0).compare_exchange_strong(
              w, util::with_mark(w), std::memory_order_acq_rel)) {
        find(key, preds, succs);  // physically unlink
        return true;
      }
    }
  }

  std::optional<Value> get(Key key) const {
    util::ebr::Guard guard;
    Node* pred = head_;
    Node* curr = nullptr;
    for (int i = max_level_ - 1; i >= 0; --i) {
      curr = util::to_ptr<Node>(pred->next(i).load(std::memory_order_acquire));
      while (true) {
        std::uint64_t succw = curr->next(i).load(std::memory_order_acquire);
        while (util::is_marked(succw)) {  // curr is logically deleted
          curr = util::to_ptr<Node>(succw);
          succw = curr->next(i).load(std::memory_order_acquire);
        }
        if (curr->key < key) {
          pred = curr;
          curr = util::to_ptr<Node>(succw);
        } else {
          break;
        }
      }
    }
    if (curr->key != key) return std::nullopt;
    if (util::is_marked(curr->next(0).load(std::memory_order_acquire))) {
      return std::nullopt;
    }
    return curr->value.load(std::memory_order_acquire);
  }

  /// Unsynchronized visitation — pays one hop per key and may
  /// interleave with concurrent updates (NOT a consistent snapshot; see
  /// Fig 17(d)). The visitor runs exactly once per live pair seen and
  /// may stop the scan by returning false.
  template <typename F>
  std::size_t for_range(Key low, Key high, F&& fn) const {
    util::ebr::Guard guard;
    std::size_t count = 0;
    Node* pred = head_;
    for (int i = max_level_ - 1; i >= 0; --i) {
      Node* curr =
          util::to_ptr<Node>(pred->next(i).load(std::memory_order_acquire));
      while (curr->key < low) {
        pred = curr;
        curr =
            util::to_ptr<Node>(curr->next(i).load(std::memory_order_acquire));
      }
    }
    Node* curr =
        util::to_ptr<Node>(pred->next(0).load(std::memory_order_acquire));
    while (curr->key <= high && curr != tail_) {
      const std::uint64_t succw =
          curr->next(0).load(std::memory_order_acquire);
      if (curr->key >= low && !util::is_marked(succw)) {
        ++count;
        if (!core::detail::visit_one(
                fn, curr->key,
                curr->value.load(std::memory_order_acquire))) {
          break;
        }
      }
      curr = util::to_ptr<Node>(succw);
    }
    return count;
  }

  /// Legacy bulk form: REPLACES `out` (clears, then collects).
  std::size_t range_query(Key low, Key high, std::vector<KV>& out) const {
    out.clear();
    return for_range(low, high, core::detail::Appender(out));
  }

 private:
  /// Herlihy–Shavit find: locates the window for `key` at every level
  /// and physically snips marked nodes encountered on the way. Each
  /// level of a node is linked once and snipped once (a racing insert
  /// can only transfer the incoming link onto a fresh predecessor, not
  /// duplicate it), so the per-snip give-back is exact. Caller must
  /// hold an ebr::Guard.
  bool find(Key key, Node** preds, Node** succs) const {
  retry:
    Node* pred = head_;
    for (int i = max_level_ - 1; i >= 0; --i) {
      Node* curr =
          util::to_ptr<Node>(pred->next(i).load(std::memory_order_acquire));
      while (true) {
        std::uint64_t succw = curr->next(i).load(std::memory_order_acquire);
        while (util::is_marked(succw)) {  // snip the deleted node
          std::uint64_t expected = util::to_word(curr);
          if (!pred->next(i).compare_exchange_strong(
                  expected, util::without_mark(succw),
                  std::memory_order_acq_rel)) {
            goto retry;
          }
          give_back_links(curr, 1);
          curr = util::to_ptr<Node>(
              pred->next(i).load(std::memory_order_acquire));
          succw = curr->next(i).load(std::memory_order_acquire);
        }
        if (curr->key < key) {
          pred = curr;
          curr = util::to_ptr<Node>(succw);
        } else {
          break;
        }
      }
      preds[i] = pred;
      succs[i] = curr;
    }
    return succs[0]->key == key;
  }

  /// Give back `count` of the node's linked levels; the caller that
  /// returns the last one retires the node. Requires an active Guard.
  static void give_back_links(Node* node, int count) {
    if (count == 0) return;
    if (node->links_remaining.fetch_sub(count, std::memory_order_acq_rel) ==
        count) {
      util::ebr::retire(node, &recycle_node);
    }
  }

  int random_level() const {
    return util::random_geometric_level(max_level_);
  }

  const int max_level_;
  Node* head_;
  Node* tail_;
};

class SkipListTM {
  /// Flat node, same shape as SkipListCAS's: header + trailing TxField
  /// next words, pool-backed.
  struct Node {
    Node(Key key_in, Value value_in, int level_in)
        : key(key_in), value(value_in), level(level_in) {}
    const Key key;
    stm::TxField<Value> value;
    const std::int32_t level;

    stm::TxField<std::uint64_t>& next(int i) noexcept {
      assert(i >= 0 && i < level);
      return reinterpret_cast<stm::TxField<std::uint64_t>*>(
          reinterpret_cast<std::byte*>(this) + sizeof(Node))[i];
    }

    static std::size_t bytes_for(int level) noexcept {
      return sizeof(Node) + static_cast<std::size_t>(level) *
                                sizeof(stm::TxField<std::uint64_t>);
    }
  };

  static_assert(sizeof(Node) % alignof(stm::TxField<std::uint64_t>) == 0,
                "trailing next words start aligned");
  static_assert(std::is_trivially_destructible_v<Node>);

  static Node* make_node(Key key, Value value, int level) {
    void* raw = util::ebr::pool_alloc(Node::bytes_for(level));
    Node* node = new (raw) Node(key, value, level);
    stm::TxField<std::uint64_t>::construct_array(
        reinterpret_cast<std::byte*>(raw) + sizeof(Node),
        static_cast<std::size_t>(level));
    return node;
  }

  static void destroy_node(Node* node) noexcept {
    if (node != nullptr) {
      util::ebr::pool_free(node, Node::bytes_for(node->level));
    }
  }

  static void recycle_node(void* raw) {
    destroy_node(static_cast<Node*>(raw));
  }

 public:
  explicit SkipListTM(const Params& params) : max_level_(params.max_level) {
    assert(max_level_ >= 1 && max_level_ <= core::kMaxHeight);
    head_ = make_node(std::numeric_limits<Key>::min(), 0, max_level_);
    tail_ = make_node(std::numeric_limits<Key>::max(), 0, max_level_);
    for (int i = 0; i < max_level_; ++i) {
      head_->next(i).init(util::to_word(tail_));
    }
  }

  ~SkipListTM() {
    Node* cur = head_;
    while (cur != tail_) {
      Node* nxt = util::to_ptr<Node>(cur->next(0).load_word());
      destroy_node(cur);
      cur = nxt;
    }
    destroy_node(tail_);
    util::ebr::collect();
  }

  SkipListTM(const SkipListTM&) = delete;
  SkipListTM& operator=(const SkipListTM&) = delete;

  void bulk_load(const std::vector<KV>& pairs) {
    std::array<Node*, core::kMaxHeight> last;
    last.fill(head_);
    for (const KV& kv : core::sorted_unique(pairs)) {
      Node* node = make_node(kv.key, kv.value, random_level());
      for (int i = 0; i < node->level; ++i) {
        last[i]->next(i).init(util::to_word(node));
        last[i] = node;
      }
    }
    for (int i = 0; i < max_level_; ++i) {
      last[i]->next(i).init(util::to_word(tail_));
    }
  }

  bool insert(Key key, Value value) {
    core::require_no_open_tx("Skip-tm update");
    util::ebr::Guard guard;
    stm::Tx& tx = stm::tls_tx();
    Node* node = nullptr;
    bool inserted = false;
    stm::atomically(tx, [&](stm::Tx& t) {
      destroy_node(node);
      node = nullptr;
      Node* preds[core::kMaxHeight];
      Node* succs[core::kMaxHeight];
      if (find_tx(t, key, preds, succs)) {
        succs[0]->value.tx_write(t, value);
        inserted = false;
        return;
      }
      node = make_node(key, value, random_level());
      for (int i = 0; i < node->level; ++i) {
        // init for raw visibility mid-publish, tx_write so the fresh
        // word carries the commit version (a version-0 word would slip
        // past older snapshots' read validation — opacity hole).
        node->next(i).init(util::to_word(succs[i]));
        node->next(i).tx_write(t, util::to_word(succs[i]));
        preds[i]->next(i).tx_write(t, util::to_word(node));
      }
      inserted = true;
    });
    return inserted;
  }

  bool erase(Key key) {
    core::require_no_open_tx("Skip-tm update");
    util::ebr::Guard guard;
    stm::Tx& tx = stm::tls_tx();
    Node* victim = nullptr;
    stm::atomically(tx, [&](stm::Tx& t) {
      victim = nullptr;
      Node* preds[core::kMaxHeight];
      Node* succs[core::kMaxHeight];
      if (!find_tx(t, key, preds, succs)) return;
      Node* target = succs[0];
      for (int i = 0; i < target->level; ++i) {
        preds[i]->next(i).tx_write(t, target->next(i).tx_read(t));
      }
      victim = target;
    });
    if (victim == nullptr) return false;
    util::ebr::retire(victim, &recycle_node);
    return true;
  }

  std::optional<Value> get(Key key) const {
    util::ebr::Guard guard;
    stm::Tx& tx = stm::tls_tx();
    std::optional<Value> result;
    stm::atomically(tx, [&](stm::Tx& t) {
      result.reset();
      Node* preds[core::kMaxHeight];
      Node* succs[core::kMaxHeight];
      if (find_tx(t, key, preds, succs)) {
        result = succs[0]->value.tx_read(t);
      }
    });
    return result;
  }

  /// Fully instrumented visitation; a conflicting attempt re-visits
  /// from `low` after visit_restart. Early exit commits the prefix.
  template <typename F>
  std::size_t for_range(Key low, Key high, F&& fn) const {
    util::ebr::Guard guard;
    stm::Tx& tx = stm::tls_tx();
    std::size_t count = 0;
    stm::atomically(tx, [&](stm::Tx& t) {
      core::detail::visit_restart(fn);
      count = 0;
      Node* preds[core::kMaxHeight];
      Node* succs[core::kMaxHeight];
      find_tx(t, low, preds, succs);
      Node* curr = succs[0];
      while (curr != tail_ && curr->key <= high) {
        ++count;
        if (!core::detail::visit_one(fn, curr->key, curr->value.tx_read(t))) {
          break;
        }
        curr = util::to_ptr<Node>(curr->next(0).tx_read(t));
      }
    });
    return count;
  }

  /// Legacy bulk form: REPLACES `out` (clears, then collects).
  std::size_t range_query(Key low, Key high, std::vector<KV>& out) const {
    out.clear();
    return for_range(low, high, core::detail::Appender(out));
  }

 private:
  bool find_tx(stm::Tx& tx, Key key, Node** preds, Node** succs) const {
    Node* pred = head_;
    for (int i = max_level_ - 1; i >= 0; --i) {
      Node* curr = util::to_ptr<Node>(pred->next(i).tx_read(tx));
      while (curr->key < key) {
        pred = curr;
        curr = util::to_ptr<Node>(curr->next(i).tx_read(tx));
      }
      preds[i] = pred;
      succs[i] = curr;
    }
    return succs[0]->key == key;
  }

  int random_level() const {
    return util::random_geometric_level(max_level_);
  }

  const int max_level_;
  Node* head_;
  Node* tail_;
};

}  // namespace leap::skip

/// Map policies (leaplist/map.hpp) for the skip-list baselines, so the
/// harness drives every structure through one leap::Map facade. Neither
/// exposes composable `*_in` forms.
namespace leap::policy {
struct SkipCAS {
  using engine = skip::SkipListCAS;
  static constexpr bool kComposable = false;
};
struct SkipTM {
  using engine = skip::SkipListTM;
  static constexpr bool kComposable = false;
};
}  // namespace leap::policy
