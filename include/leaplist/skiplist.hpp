// Skip-list baselines for the paper's §3.1 comparison (one key/value
// pair per node, unlike the fat-node leap list):
//
//   SkipListCAS  lock-free skiplist in the Herlihy–Shavit style with
//                marked next pointers. Range scans are unsynchronized —
//                fast but NOT linearizable, which is exactly the
//                trade-off Figure 17(d) is about. Nodes are kept on an
//                allocation registry and reclaimed at destruction (a
//                snipped node can remain referenced from higher index
//                levels, so eager per-node reclamation is unsafe
//                without a stronger protocol).
//
//   SkipListTM   the same structure with every access instrumented
//                through the STM — the paper's Skip-tm straw man.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "leaplist/leaplist.hpp"
#include "stm/stm.hpp"
#include "util/ebr.hpp"
#include "util/marked_ptr.hpp"
#include "util/random.hpp"

namespace leap::skip {

using core::Key;
using core::KV;
using core::Params;
using core::Value;

class SkipListCAS {
  struct Node {
    Node(Key key_in, Value value_in, int level_in)
        : key(key_in), value(value_in), level(level_in), next(level_in) {}
    const Key key;
    std::atomic<Value> value;
    const int level;
    std::vector<std::atomic<std::uint64_t>> next;  // marked words
    std::atomic<Node*> alloc_next{nullptr};        // allocation registry
  };

 public:
  explicit SkipListCAS(const Params& params)
      : max_level_(params.max_level) {
    assert(max_level_ >= 1 && max_level_ <= core::kMaxHeight);
    head_ = register_node(
        new Node(std::numeric_limits<Key>::min(), 0, max_level_));
    tail_ = register_node(
        new Node(std::numeric_limits<Key>::max(), 0, max_level_));
    for (int i = 0; i < max_level_; ++i) {
      head_->next[i].store(util::to_word(tail_), std::memory_order_relaxed);
    }
  }

  ~SkipListCAS() {
    Node* cur = all_nodes_.load(std::memory_order_acquire);
    while (cur != nullptr) {
      Node* nxt = cur->alloc_next.load(std::memory_order_relaxed);
      delete cur;
      cur = nxt;
    }
  }

  SkipListCAS(const SkipListCAS&) = delete;
  SkipListCAS& operator=(const SkipListCAS&) = delete;

  void bulk_load(const std::vector<KV>& pairs) {
    std::array<Node*, core::kMaxHeight> last;
    last.fill(head_);
    for (const KV& kv : core::sorted_unique(pairs)) {
      Node* node = register_node(new Node(kv.key, kv.value, random_level()));
      for (int i = 0; i < node->level; ++i) {
        last[i]->next[i].store(util::to_word(node),
                               std::memory_order_relaxed);
        last[i] = node;
      }
    }
    for (int i = 0; i < max_level_; ++i) {
      last[i]->next[i].store(util::to_word(tail_),
                             std::memory_order_relaxed);
    }
  }

  bool insert(Key key, Value value) {
    Node* preds[core::kMaxHeight];
    Node* succs[core::kMaxHeight];
    while (true) {
      if (find(key, preds, succs)) {
        succs[0]->value.store(value, std::memory_order_release);
        return false;
      }
      Node* node = register_node(new Node(key, value, random_level()));
      for (int i = 0; i < node->level; ++i) {
        node->next[i].store(util::to_word(succs[i]),
                            std::memory_order_relaxed);
      }
      std::uint64_t expected = util::to_word(succs[0]);
      if (!preds[0]->next[0].compare_exchange_strong(
              expected, util::to_word(node), std::memory_order_acq_rel)) {
        continue;  // node stays on the registry; retry from scratch
      }
      for (int i = 1; i < node->level; ++i) {
        while (true) {
          std::uint64_t own = node->next[i].load(std::memory_order_acquire);
          if (util::is_marked(own)) return true;  // concurrently erased
          if (util::to_ptr<Node>(own) != succs[i] &&
              !node->next[i].compare_exchange_strong(
                  own, util::to_word(succs[i]), std::memory_order_acq_rel)) {
            continue;
          }
          std::uint64_t want = util::to_word(succs[i]);
          if (preds[i]->next[i].compare_exchange_strong(
                  want, util::to_word(node), std::memory_order_acq_rel)) {
            break;
          }
          find(key, preds, succs);
          if (succs[0] != node) return true;  // removed before fully linked
        }
      }
      return true;
    }
  }

  bool erase(Key key) {
    Node* preds[core::kMaxHeight];
    Node* succs[core::kMaxHeight];
    if (!find(key, preds, succs)) return false;
    Node* victim = succs[0];
    for (int i = victim->level - 1; i >= 1; --i) {
      std::uint64_t w = victim->next[i].load(std::memory_order_acquire);
      while (!util::is_marked(w)) {
        victim->next[i].compare_exchange_weak(w, util::with_mark(w),
                                              std::memory_order_acq_rel);
      }
    }
    std::uint64_t w = victim->next[0].load(std::memory_order_acquire);
    while (true) {
      if (util::is_marked(w)) return false;  // lost the race
      if (victim->next[0].compare_exchange_strong(
              w, util::with_mark(w), std::memory_order_acq_rel)) {
        find(key, preds, succs);  // physically unlink
        return true;
      }
    }
  }

  std::optional<Value> get(Key key) const {
    Node* pred = head_;
    Node* curr = nullptr;
    for (int i = max_level_ - 1; i >= 0; --i) {
      curr = util::to_ptr<Node>(pred->next[i].load(std::memory_order_acquire));
      while (true) {
        std::uint64_t succw = curr->next[i].load(std::memory_order_acquire);
        while (util::is_marked(succw)) {  // curr is logically deleted
          curr = util::to_ptr<Node>(succw);
          succw = curr->next[i].load(std::memory_order_acquire);
        }
        if (curr->key < key) {
          pred = curr;
          curr = util::to_ptr<Node>(succw);
        } else {
          break;
        }
      }
    }
    if (curr->key != key) return std::nullopt;
    if (util::is_marked(curr->next[0].load(std::memory_order_acquire))) {
      return std::nullopt;
    }
    return curr->value.load(std::memory_order_acquire);
  }

  /// Unsynchronized scan — pays one hop per key and may interleave with
  /// concurrent updates (NOT a consistent snapshot; see Fig 17(d)).
  std::size_t range_query(Key low, Key high, std::vector<KV>& out) const {
    out.clear();
    Node* pred = head_;
    for (int i = max_level_ - 1; i >= 0; --i) {
      Node* curr =
          util::to_ptr<Node>(pred->next[i].load(std::memory_order_acquire));
      while (curr->key < low) {
        pred = curr;
        curr =
            util::to_ptr<Node>(curr->next[i].load(std::memory_order_acquire));
      }
    }
    Node* curr =
        util::to_ptr<Node>(pred->next[0].load(std::memory_order_acquire));
    while (curr->key <= high && curr != tail_) {
      const std::uint64_t succw =
          curr->next[0].load(std::memory_order_acquire);
      if (curr->key >= low && !util::is_marked(succw)) {
        out.push_back(KV{curr->key, curr->value.load(std::memory_order_acquire)});
      }
      curr = util::to_ptr<Node>(succw);
    }
    return out.size();
  }

 private:
  /// Herlihy–Shavit find: locates the window for `key` at every level
  /// and physically snips marked nodes encountered on the way.
  bool find(Key key, Node** preds, Node** succs) const {
  retry:
    Node* pred = head_;
    for (int i = max_level_ - 1; i >= 0; --i) {
      Node* curr =
          util::to_ptr<Node>(pred->next[i].load(std::memory_order_acquire));
      while (true) {
        std::uint64_t succw = curr->next[i].load(std::memory_order_acquire);
        while (util::is_marked(succw)) {  // snip the deleted node
          std::uint64_t expected = util::to_word(curr);
          if (!pred->next[i].compare_exchange_strong(
                  expected, util::without_mark(succw),
                  std::memory_order_acq_rel)) {
            goto retry;
          }
          curr = util::to_ptr<Node>(
              pred->next[i].load(std::memory_order_acquire));
          succw = curr->next[i].load(std::memory_order_acquire);
        }
        if (curr->key < key) {
          pred = curr;
          curr = util::to_ptr<Node>(succw);
        } else {
          break;
        }
      }
      preds[i] = pred;
      succs[i] = curr;
    }
    return succs[0]->key == key;
  }

  Node* register_node(Node* node) {
    Node* head = all_nodes_.load(std::memory_order_relaxed);
    do {
      node->alloc_next.store(head, std::memory_order_relaxed);
    } while (!all_nodes_.compare_exchange_weak(head, node,
                                               std::memory_order_acq_rel));
    return node;
  }

  int random_level() const {
    return util::random_geometric_level(max_level_);
  }

  const int max_level_;
  Node* head_;
  Node* tail_;
  std::atomic<Node*> all_nodes_{nullptr};
};

class SkipListTM {
  struct Node {
    Node(Key key_in, Value value_in, int level_in)
        : key(key_in), value(value_in), level(level_in), next(level_in) {}
    const Key key;
    stm::TxField<Value> value;
    const int level;
    std::vector<stm::TxField<std::uint64_t>> next;
  };

 public:
  explicit SkipListTM(const Params& params) : max_level_(params.max_level) {
    assert(max_level_ >= 1 && max_level_ <= core::kMaxHeight);
    head_ = new Node(std::numeric_limits<Key>::min(), 0, max_level_);
    tail_ = new Node(std::numeric_limits<Key>::max(), 0, max_level_);
    for (int i = 0; i < max_level_; ++i) {
      head_->next[i].init(util::to_word(tail_));
    }
  }

  ~SkipListTM() {
    Node* cur = head_;
    while (cur != tail_) {
      Node* nxt = util::to_ptr<Node>(cur->next[0].load_word());
      delete cur;
      cur = nxt;
    }
    delete tail_;
    util::ebr::collect();
  }

  SkipListTM(const SkipListTM&) = delete;
  SkipListTM& operator=(const SkipListTM&) = delete;

  void bulk_load(const std::vector<KV>& pairs) {
    std::array<Node*, core::kMaxHeight> last;
    last.fill(head_);
    for (const KV& kv : core::sorted_unique(pairs)) {
      Node* node = new Node(kv.key, kv.value, random_level());
      for (int i = 0; i < node->level; ++i) {
        last[i]->next[i].init(util::to_word(node));
        last[i] = node;
      }
    }
    for (int i = 0; i < max_level_; ++i) {
      last[i]->next[i].init(util::to_word(tail_));
    }
  }

  bool insert(Key key, Value value) {
    util::ebr::Guard guard;
    stm::Tx& tx = stm::tls_tx();
    Node* node = nullptr;
    bool inserted = false;
    stm::atomically(tx, [&](stm::Tx& t) {
      delete node;
      node = nullptr;
      Node* preds[core::kMaxHeight];
      Node* succs[core::kMaxHeight];
      if (find_tx(t, key, preds, succs)) {
        succs[0]->value.tx_write(t, value);
        inserted = false;
        return;
      }
      node = new Node(key, value, random_level());
      for (int i = 0; i < node->level; ++i) {
        node->next[i].init(util::to_word(succs[i]));
        preds[i]->next[i].tx_write(t, util::to_word(node));
      }
      inserted = true;
    });
    return inserted;
  }

  bool erase(Key key) {
    util::ebr::Guard guard;
    stm::Tx& tx = stm::tls_tx();
    Node* victim = nullptr;
    stm::atomically(tx, [&](stm::Tx& t) {
      victim = nullptr;
      Node* preds[core::kMaxHeight];
      Node* succs[core::kMaxHeight];
      if (!find_tx(t, key, preds, succs)) return;
      Node* target = succs[0];
      for (int i = 0; i < target->level; ++i) {
        preds[i]->next[i].tx_write(t, target->next[i].tx_read(t));
      }
      victim = target;
    });
    if (victim == nullptr) return false;
    util::ebr::retire(victim);
    return true;
  }

  std::optional<Value> get(Key key) const {
    util::ebr::Guard guard;
    stm::Tx& tx = stm::tls_tx();
    std::optional<Value> result;
    stm::atomically(tx, [&](stm::Tx& t) {
      result.reset();
      Node* preds[core::kMaxHeight];
      Node* succs[core::kMaxHeight];
      if (find_tx(t, key, preds, succs)) {
        result = succs[0]->value.tx_read(t);
      }
    });
    return result;
  }

  std::size_t range_query(Key low, Key high, std::vector<KV>& out) const {
    util::ebr::Guard guard;
    stm::Tx& tx = stm::tls_tx();
    stm::atomically(tx, [&](stm::Tx& t) {
      out.clear();
      Node* preds[core::kMaxHeight];
      Node* succs[core::kMaxHeight];
      find_tx(t, low, preds, succs);
      Node* curr = succs[0];
      while (curr != tail_ && curr->key <= high) {
        out.push_back(KV{curr->key, curr->value.tx_read(t)});
        curr = util::to_ptr<Node>(curr->next[0].tx_read(t));
      }
    });
    return out.size();
  }

 private:
  bool find_tx(stm::Tx& tx, Key key, Node** preds, Node** succs) const {
    Node* pred = head_;
    for (int i = max_level_ - 1; i >= 0; --i) {
      Node* curr = util::to_ptr<Node>(pred->next[i].tx_read(tx));
      while (curr->key < key) {
        pred = curr;
        curr = util::to_ptr<Node>(curr->next[i].tx_read(tx));
      }
      preds[i] = pred;
      succs[i] = curr;
    }
    return succs[0]->key == key;
  }

  int random_level() const {
    return util::random_geometric_level(max_level_);
  }

  const int max_level_;
  Node* head_;
  Node* tail_;
};

}  // namespace leap::skip
