// leap::ShardedMap<K, V, Policy> — a range-partitioned array of
// leap::Map shards behind the same OrderedMap surface, the first layer
// where the system scales OUT instead of up.
//
// Partitioning is static and codec-order-aware: the key codec already
// maps K order-preservingly onto the engine's int64 word, so the shard
// of a key is a branchless bucket of that encoded word — flip the sign
// bit (order-preserving int64 -> uint64), clamp into the configured
// window, scale to the full 64-bit range by a fixed-point reciprocal
// of the window span (precomputed once at construction), and take the
// high half of one 128-bit multiply by the shard count:
//
//   idx = ((off * inv) * S) >> 64    // off = clamp(biased - lo),
//                                    // inv = floor(2^64 / (span + 1))
//
// No second comparator, no division, no branches; monotone in the key,
// so shard i's keys all precede shard i+1's keys and a cross-shard
// range query visits shards in key order ("stitching" per-shard sorted
// views instead of merging copies — the REMIX argument).
//
// Point operations route to exactly one shard with zero added
// synchronization. Cross-shard range queries stitch the shards'
// visitations in key order, and are linearizable on EVERY policy:
//
//   policy::TM   the whole stitched scan runs inside ONE leap::txn —
//                the multi-shard snapshot is linearizable (the paper's
//                multi-list atomicity applied to partitions). The
//                transaction may retry; the caller's visitor is rolled
//                back via its on_restart() hook (leap::append_to has
//                one), exactly the Map visitor contract. Each shard
//                segment is staged against in-transaction restarts and
//                replayed once final.
//   others       bundled references (leaplist/bundle.hpp): the scan
//                pins ONE global timestamp and walks every covered
//                shard as of that instant, so the stitched result is a
//                linearizable multi-shard snapshot with zero reliance
//                on the STM — the scan linearizes at its clock read.
//                Restarts (pruned history) re-pin and rerun the whole
//                stitched walk through the visitor's on_restart hook.
//
// For policy::TM the composable `*_in` forms route inside the caller's
// open transaction, so multi-key operations spanning shards — and whole
// ShardedMaps alongside other maps — compose into one atomic unit:
//
//   leap::ShardedMap<std::uint64_t, Order, leap::policy::TM> book(
//       {.shards = 16, .params = params}, min_id, max_id);
//   book.move_key(from_id, to_id);            // atomic, cross-shard
//   leap::txn([&](leap::stm::Tx& tx) {        // compose anything
//     const auto hit = book.get_in(tx, id);
//     if (hit) book.erase_in(tx, id);
//     audit.insert_in(tx, id, *hit);
//   });
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "leaplist/codec.hpp"
#include "leaplist/leaplist.hpp"
#include "leaplist/map.hpp"
#include "leaplist/txn.hpp"
#include "stm/stm.hpp"

namespace leap {

/// Construction knobs for ShardedMap: how many shards and the leap-list
/// parameters every shard is built with. The key window (the hint that
/// spreads realistic key distributions across shards instead of
/// bucketing the full 64-bit space) is passed separately, as typed keys.
struct ShardOptions {
  std::size_t shards = 8;
  core::Params params{};
};

template <typename K, typename V, MapPolicy Policy = policy::LT,
          typename KeyCodec = codec::Default<K>,
          typename ValueCodec = codec::BitcastValue<V>>
  requires codec::KeyCodecFor<KeyCodec, K> &&
           codec::ValueCodecFor<ValueCodec, V>
class ShardedMap {
 public:
  using key_type = K;
  using mapped_type = V;
  using value_type = std::pair<K, V>;
  using policy_type = Policy;
  using shard_type = Map<K, V, Policy, KeyCodec, ValueCodec>;
  using key_codec = KeyCodec;
  using value_codec = ValueCodec;

  /// Tag the harness adapters and db layer key off to construct a
  /// sharded instance (shard count + key-window hints) instead of a
  /// single map.
  static constexpr bool kSharded = true;

  /// Sane ceiling: routing is O(1) at any count, but stitched range
  /// queries and debug sweeps walk every shard in the span.
  static constexpr std::size_t kMaxShards = 4096;

  /// True when the engine maintains bundled references (every leap-list
  /// policy). Skip-list baselines don't; their non-TM stitched scans
  /// fall back to per-shard-consistent staging.
  static constexpr bool kBundled =
      requires(const typename Policy::engine& e) { e.debug_max_bundle(); };

  /// Full-window construction: keys may land anywhere in the codec's
  /// encodable range. Fine for correctness at any distribution, but a
  /// workload confined to a narrow key interval will bucket into few
  /// shards — pass window hints for real spread.
  explicit ShardedMap(const ShardOptions& opts = {})
      : ShardedMap(opts,
                   WordWindow{std::numeric_limits<core::Key>::min() + 1,
                              core::kSentinelKey - 1}) {}

  /// Window-hinted construction: split points divide the ENCODED image
  /// of [min_hint, max_hint] evenly across shards. Keys outside the
  /// hint window stay correct — they clamp onto the first/last shard.
  ShardedMap(const ShardOptions& opts, const K& min_hint, const K& max_hint)
      : ShardedMap(opts, WordWindow{KeyCodec::encode(min_hint),
                                    KeyCodec::encode(max_hint)}) {}

  // --- Point operations: route to one shard, no added sync -----------

  bool insert(const K& key, const V& value) {
    return shards_[shard_of(key)]->insert(key, value);
  }

  bool erase(const K& key) { return shards_[shard_of(key)]->erase(key); }

  std::optional<V> get(const K& key) const {
    return shards_[shard_of(key)]->get(key);
  }

  bool contains(const K& key) const {
    return shards_[shard_of(key)]->contains(key);
  }

  // --- Stitched range queries ----------------------------------------

  /// Visit every pair with low <= key <= high in global key order,
  /// stitching the covered shards' visitations into one linearizable
  /// multi-shard snapshot (one transaction for policy::TM, one pinned
  /// bundle timestamp otherwise). Same visitor contract as
  /// leap::Map::for_range — an accumulating visitor needs on_restart().
  /// Returns the number of pairs delivered.
  template <typename F>
  std::size_t for_range(const K& low, const K& high, F&& fn) const {
    if constexpr (Policy::kComposable) {
      const core::Key low_word = KeyCodec::encode(low);
      const core::Key high_word = KeyCodec::encode(high);
      if (low_word > high_word) return 0;
      const std::size_t first = route(low_word);
      const std::size_t last = route(high_word);
      return leap::txn([&](stm::Tx& tx) {
        core::detail::visit_restart(fn);  // per-attempt rollback
        return stitch_in(tx, first, last, low, high, fn);
      });
    } else if constexpr (kBundled) {
      return for_range_bundled(low, high, fn);
    } else {
      // Skip-list baselines: per-shard staging+replay, per-shard
      // consistent only (the documented pre-bundling semantics).
      const core::Key low_word = KeyCodec::encode(low);
      const core::Key high_word = KeyCodec::encode(high);
      if (low_word > high_word) return 0;
      Staging stage;
      std::size_t delivered = 0;
      for (std::size_t s = route(low_word); s <= route(high_word); ++s) {
        stage.clear();
        StageVisitor sink{stage};
        shards_[s]->for_range(low, high, sink);
        if (!replay(stage, fn, delivered)) break;
      }
      return delivered;
    }
  }

  /// The bundled-reference stitched walk, available on EVERY bundled
  /// policy (TM updates maintain bundles too): pin one timestamp,
  /// deliver each covered shard's as-of visitation straight into `fn`,
  /// and restart the whole walk with a fresh pin if any shard's history
  /// at that timestamp was already pruned. This is the non-TM for_range
  /// path, and on policy::TM it is the STM-free alternative the
  /// abl_rqspan crossover measures against transactional stitching.
  template <typename F>
  std::size_t for_range_bundled(const K& low, const K& high, F&& fn) const
    requires(kBundled)
  {
    const core::Key low_word = KeyCodec::encode(low);
    const core::Key high_word = KeyCodec::encode(high);
    if (low_word > high_word) return 0;
    const std::size_t first = route(low_word);
    const std::size_t last = route(high_word);
    bundle::ScanPin pin;
    while (true) {
      core::detail::visit_restart(fn);
      std::size_t delivered = 0;
      bool stopped = false;
      bool ok = true;
      for (std::size_t s = first; s <= last && !stopped; ++s) {
        if (!shards_[s]->try_for_range_at(pin.ts(), low, high, fn,
                                          delivered, stopped)) {
          ok = false;
          break;
        }
      }
      if (ok) return delivered;
      pin.refresh();
    }
  }

  /// Bounded stitched scan: APPEND up to `limit` pairs with key >= low
  /// onto `out`, in global key order. One transaction for policy::TM;
  /// one pinned bundle timestamp otherwise — linearizable either way.
  std::size_t scan(const K& low, std::size_t limit,
                   std::vector<value_type>& out) const {
    if (limit == 0) return 0;
    const std::size_t base = out.size();
    const std::size_t first = route(KeyCodec::encode(low));
    if constexpr (Policy::kComposable) {
      leap::txn([&](stm::Tx& tx) {
        out.resize(base);  // the closure may re-run after a conflict
        scan_shards_in(tx, first, low, limit, base, out);
      });
    } else if constexpr (kBundled) {
      bundle::ScanPin pin;
      while (true) {
        out.resize(base);  // rerun after a pruned-history restart
        bool ok = true;
        for (std::size_t s = first; s < shards_.size(); ++s) {
          const std::size_t got = out.size() - base;
          if (got >= limit) break;
          bool filled = false;
          if (!shards_[s]->try_scan_at(pin.ts(), low, limit - got, out,
                                       filled)) {
            ok = false;
            break;
          }
          if (filled) break;
        }
        if (ok) break;
        pin.refresh();
      }
    } else {
      for (std::size_t s = first; s < shards_.size(); ++s) {
        const std::size_t got = out.size() - base;
        if (got >= limit) break;
        shards_[s]->scan(low, limit - got, out);
      }
    }
    return out.size() - base;
  }

  /// A materialized snapshot of [low, high] across all covered shards:
  /// one consistent multi-shard instant on every policy; iterated with
  /// no further synchronization.
  using Cursor = SnapshotCursor<K, V>;

  Cursor snapshot(const K& low, const K& high) const {
    std::vector<value_type> items;
    for_range(low, high, append_to(items));
    return Cursor(std::move(items));
  }

  // --- Composable forms (policy::TM only) ----------------------------
  // Route inside a caller-owned open transaction, so cross-shard
  // multi-key operations — and several ShardedMaps, or a ShardedMap
  // next to plain Maps — commit as one atomic unit.

  bool insert_in(stm::Tx& tx, const K& key, const V& value)
    requires(Policy::kComposable)
  {
    return shards_[shard_of(key)]->insert_in(tx, key, value);
  }

  bool erase_in(stm::Tx& tx, const K& key)
    requires(Policy::kComposable)
  {
    return shards_[shard_of(key)]->erase_in(tx, key);
  }

  std::optional<V> get_in(stm::Tx& tx, const K& key) const
    requires(Policy::kComposable)
  {
    return shards_[shard_of(key)]->get_in(tx, key);
  }

  template <typename F>
  std::size_t for_range_in(stm::Tx& tx, const K& low, const K& high,
                           F&& fn) const
    requires(Policy::kComposable)
  {
    const core::Key low_word = KeyCodec::encode(low);
    const core::Key high_word = KeyCodec::encode(high);
    if (low_word > high_word) return 0;
    return stitch_in(tx, route(low_word), route(high_word), low, high, fn);
  }

  std::size_t scan_in(stm::Tx& tx, const K& low, std::size_t limit,
                      std::vector<value_type>& out) const
    requires(Policy::kComposable)
  {
    if (limit == 0) return 0;
    const std::size_t base = out.size();
    scan_shards_in(tx, route(KeyCodec::encode(low)), low, limit, base, out);
    return out.size() - base;
  }

  /// Atomically relocate the value stored at `from` to `to` (its own
  /// transaction; use erase_in + insert_in to compose with more work).
  /// Crossing a shard boundary is the interesting case: no concurrent
  /// stitched reader ever sees the value at both keys or at neither.
  /// Returns false (and moves nothing) when `from` is absent; an
  /// existing value at `to` is overwritten.
  bool move_key(const K& from, const K& to)
    requires(Policy::kComposable)
  {
    return leap::txn([&](stm::Tx& tx) {
      const std::optional<V> value = get_in(tx, from);
      if (!value) return false;
      erase_in(tx, from);
      insert_in(tx, to, *value);
      return true;
    });
  }

  // --- Loading / introspection ---------------------------------------

  /// Single-threaded preload of a quiescent map: pairs partition to
  /// their shards, each shard bulk-loads its slice (sorting and
  /// last-value-wins dedup happen per shard, exactly Map::bulk_load).
  void bulk_load(const std::vector<value_type>& pairs) {
    std::vector<std::vector<value_type>> slices(shards_.size());
    for (const value_type& pair : pairs) {
      slices[shard_of(pair.first)].push_back(pair);
    }
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      shards_[s]->bulk_load(slices[s]);
    }
  }

  std::size_t shard_count() const { return shards_.size(); }

  /// The shard a key routes to — exposed so tests can probe split
  /// points and movers can aim across boundaries.
  std::size_t shard_of(const K& key) const {
    return route(KeyCodec::encode(key));
  }

  shard_type& shard(std::size_t index) { return *shards_[index]; }
  const shard_type& shard(std::size_t index) const {
    return *shards_[index];
  }

  std::size_t size_slow() const
    requires requires(const shard_type& s) { s.size_slow(); }
  {
    std::size_t total = 0;
    for (const auto& shard : shards_) total += shard->size_slow();
    return total;
  }

  /// Quiescent check: every shard structurally valid AND every stored
  /// key routes back to the shard holding it (the partition invariant).
  bool debug_validate() const
    requires requires(const shard_type& s) { s.debug_validate(); }
  {
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (!shards_[s]->debug_validate()) return false;
      bool routed = true;
      shards_[s]->engine().for_range(
          std::numeric_limits<core::Key>::min() + 1, core::kSentinelKey - 1,
          [&](core::Key word, core::Value) { routed &= route(word) == s; });
      if (!routed) return false;
    }
    return true;
  }

 private:
  struct WordWindow {
    core::Key lo;
    core::Key hi;
  };

  static constexpr std::uint64_t kSignBit = std::uint64_t{1} << 63;

  /// Order-preserving int64 -> uint64: flip the sign bit.
  static std::uint64_t biased(core::Key word) {
    return static_cast<std::uint64_t>(word) ^ kSignBit;
  }

  ShardedMap(const ShardOptions& opts, WordWindow window)
      : lo_(biased(window.lo)), span_(biased(window.hi) - lo_) {
    assert(window.lo <= window.hi);
    assert(opts.shards >= 1 && opts.shards <= kMaxShards);
    // Fixed-point reciprocal of the window size: off * inv_ lands the
    // offset's exact fraction of the window in the full 64-bit range
    // (error < 1 part in 2^64/span — a power-of-two SHIFT here instead
    // would divide by the next power of two and bunch up to half the
    // window into the low shards, starving the top ones). For span 0
    // the quotient 2^64 truncates to 0, and off is always 0 anyway.
    inv_ = static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(1) << 64) /
        (static_cast<unsigned __int128>(span_) + 1));
    const std::size_t count = opts.shards < 1 ? 1 : opts.shards;
    shards_.reserve(count);
    for (std::size_t s = 0; s < count; ++s) {
      shards_.push_back(std::make_unique<shard_type>(opts.params));
    }
  }

  /// The branchless bucket: clamp the biased word into [lo, lo + span],
  /// scale the offset to the full 64-bit range via the precomputed
  /// reciprocal (the product is < 2^64 by construction, so the plain
  /// 64-bit multiply is exact), and take the high half of
  /// offset * shard_count. Monotone in `word` (clamp, positive-constant
  /// multiply, and mul-high all preserve order), so shards partition
  /// the key space into consecutive near-equal intervals.
  std::size_t route(core::Key word) const {
    const std::uint64_t b = biased(word);
    const std::uint64_t off = std::min((b < lo_ ? lo_ : b) - lo_, span_);
    return static_cast<std::size_t>(
        (static_cast<unsigned __int128>(off * inv_) *
         static_cast<unsigned __int128>(shards_.size())) >>
        64);
  }

  /// Per-shard staging: a shard's segment lands here while that shard's
  /// attempt may still restart (on_restart clears it), and is replayed
  /// into the user's visitor only once the segment is final. This is
  /// what keeps one shard's optimistic retry from wiping the pairs an
  /// earlier shard already delivered.
  struct Staging {
    std::vector<K> keys;
    std::vector<V> values;
    void clear() {
      keys.clear();
      values.clear();
    }
  };

  struct StageVisitor {
    Staging& stage;
    void operator()(const K& key, const V& value) {
      stage.keys.push_back(key);
      stage.values.push_back(value);
    }
    void append_run(const K* keys, const V* values, std::size_t n) {
      stage.keys.insert(stage.keys.end(), keys, keys + n);
      stage.values.insert(stage.values.end(), values, values + n);
    }
    void on_restart() { stage.clear(); }
  };

  /// Deliver a committed shard segment to the user's visitor. Bulk
  /// visitors take the whole SoA slice in one call; per-pair visitors
  /// may stop the stitched scan early (false return).
  template <typename F>
  static bool replay(Staging& stage, F& fn, std::size_t& delivered) {
    const std::size_t n = stage.keys.size();
    if constexpr (requires(F& f, const K* dk, const V* dv, std::size_t m) {
                    f.append_run(dk, dv, m);
                  }) {
      fn.append_run(stage.keys.data(), stage.values.data(), n);
      delivered += n;
      return true;
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        ++delivered;
        if (!core::detail::visit_one(fn, stage.keys[i], stage.values[i])) {
          return false;
        }
      }
      return true;
    }
  }

  /// The stitched walk inside an open transaction: shards in key order,
  /// each segment staged against that shard's in-transaction restarts
  /// (the hybrid-search fallback), then replayed. A whole-transaction
  /// retry is the enclosing closure's contract.
  template <typename F>
  std::size_t stitch_in(stm::Tx& tx, std::size_t first, std::size_t last,
                        const K& low, const K& high, F& fn) const
    requires(Policy::kComposable)
  {
    Staging stage;
    std::size_t delivered = 0;
    for (std::size_t s = first; s <= last; ++s) {
      stage.clear();
      StageVisitor sink{stage};
      shards_[s]->for_range_in(tx, low, high, sink);
      if (!replay(stage, fn, delivered)) break;
    }
    return delivered;
  }

  void scan_shards_in(stm::Tx& tx, std::size_t first, const K& low,
                      std::size_t limit, std::size_t base,
                      std::vector<value_type>& out) const
    requires(Policy::kComposable)
  {
    for (std::size_t s = first; s < shards_.size(); ++s) {
      const std::size_t got = out.size() - base;
      if (got >= limit) break;
      shards_[s]->scan_in(tx, low, limit - got, out);
    }
  }

  std::uint64_t lo_;    // biased image of the window's low edge
  std::uint64_t span_;  // biased(hi) - biased(lo)
  std::uint64_t inv_;   // floor(2^64 / (span_ + 1)), fixed-point scale
  std::vector<std::unique_ptr<shard_type>> shards_;
};

}  // namespace leap
