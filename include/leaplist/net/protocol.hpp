// leap::net wire protocol — the length-prefixed binary format spoken
// between leapd (src/server.cpp) and its clients (leap-loadgen, the
// test battery, anything else that frames bytes the same way).
//
//   Frame    := len:u32le payload[len]        1 <= len <= kMaxFrameBytes
//   Request  := op:u8 body
//     Get    := key:i64le
//     Put    := key:i64le value:i64le
//     Erase  := key:i64le
//     Scan   := low:i64le high:i64le limit:u32le      (limit 0 = all)
//     Txn    := n:u16le  n × (sub:u8 key:i64le [value:i64le if Put])
//     Stats  :=                          (empty body; never shed)
//   Response := status:u8 body
//     Ok        := flag:u8               put: inserted, erase: erased
//     Found     := value:i64le           get hit
//     Miss      :=                       get miss
//     ScanChunk := n:u32le n × (key:i64le value:i64le)   more follow
//     ScanDone  := n:u32le n × (key:i64le value:i64le)   final chunk
//     TxnDone   := n:u16le  n × result   get: found:u8 [value:i64le],
//                                        put/erase: flag:u8
//     Error     := code:u8               stream errors close the
//                                        connection; kOverloaded and
//                                        kStoreFailed answer ONE
//                                        request and the stream
//                                        continues
//     Stats     := n:u8 n × u64le        server counters (n is
//                                        kStatsWords, field order in
//                                        StatsSnapshot)
//
// Responses come back in request order on each connection; a Scan
// request yields zero or more ScanChunk frames then exactly one
// ScanDone. Two Error codes answer exactly one request in its FIFO
// position and leave the connection open: kOverloaded (admission
// control shed it) and kStoreFailed (the durable store is read-only
// fail-stop; writes error, reads still serve). Every other Error
// closes the connection. Every integer is little-endian.
// Parsers reject frames whose body is shorter or longer than the
// opcode demands — a frame either decodes exactly or errors out the
// connection.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <vector>

namespace leap::net {

/// Hard ceiling on one frame's payload; a length prefix above this is
/// a protocol error (the connection is closed, nothing is allocated).
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 20;

/// Most ops a single Txn request may carry.
inline constexpr std::size_t kMaxTxnOps = 1024;

/// Pairs per ScanChunk/ScanDone frame — the server's streaming unit,
/// and the bound on how much of a large range is ever buffered.
inline constexpr std::size_t kScanChunkPairs = 512;

enum class Op : std::uint8_t {
  kGet = 1,
  kPut = 2,
  kErase = 3,
  kScan = 4,
  kTxn = 5,
  kStats = 6,
};

enum class Status : std::uint8_t {
  kOk = 0,
  kFound = 1,
  kMiss = 2,
  kScanChunk = 3,
  kScanDone = 4,
  kTxnDone = 5,
  kError = 6,
  kStats = 7,
};

enum class Err : std::uint8_t {
  kBadFrame = 1,    // zero-length or oversized length prefix
  kBadOpcode = 2,   // unknown request opcode
  kBadBody = 3,     // body length/content mismatch for the opcode
  kOverloaded = 4,   // admission control shed THIS request; the
                     // connection stays open and later requests are
                     // answered normally
  kStoreFailed = 5,  // the durable store is fail-stop (disk failure):
                     // THIS write was not persisted and must not be
                     // treated as applied; the connection stays open
                     // and reads/scans keep answering
};

/// Log2 buckets of the point-batch size histogram carried by a Stats
/// response: sizes 1, 2-3, 4-7, ... , >= 128.
inline constexpr std::size_t kBatchHistBuckets = 8;

/// u64 words in a Stats response body (after the count byte). A body
/// whose count differs is malformed — both sides pin the layout.
/// 11 serving-layer counters + 11 store counters + the batch histogram.
inline constexpr std::size_t kStatsWords = 22 + kBatchHistBuckets;

/// Server counters as carried by the Stats opcode. The wire layout is
/// the fields below in declaration order, each a u64le; `batch_hist`
/// contributes its buckets last. The server aggregates per-worker
/// relaxed counters into this snapshot, so values lag live traffic by
/// at most one in-flight batch.
struct StatsSnapshot {
  std::uint64_t ops = 0;            // requests answered (batch = each)
  std::uint64_t accepted = 0;       // connections accepted
  std::uint64_t errored = 0;        // connections closed on protocol error
  std::uint64_t shed = 0;           // requests answered Err::kOverloaded
  std::uint64_t stm_retries = 0;    // STM aborts absorbed by server txns
  std::uint64_t batches = 0;        // fused point-op batches committed
  std::uint64_t batch_ops = 0;      // point ops inside those batches
  std::uint64_t queued_now = 0;     // admitted requests awaiting execution
  std::uint64_t queue_hwm = 0;      // max per-worker queued depth observed
  std::uint64_t accept_pauses = 0;  // times a worker paused accept
  std::uint64_t emfile_sheds = 0;   // connections shed on EMFILE/ENFILE
  // Durable-store counters (all zero when leapd runs without
  // --data-dir; see leaplist/store/store.hpp).
  std::uint64_t wal_appends = 0;      // WAL records written
  std::uint64_t wal_fsyncs = 0;       // fdatasync calls issued
  std::uint64_t wal_group_ops = 0;    // ops covered by group-commit syncs
  std::uint64_t store_flushes = 0;    // checkpoint flushes completed
  std::uint64_t store_runs = 0;       // live run files across shards
  std::uint64_t bloom_negatives = 0;  // cold gets a bloom proved absent
  std::uint64_t cold_hits = 0;        // gets answered from a run
  std::uint64_t recovered_ops = 0;    // WAL entries replayed at startup
  std::uint64_t store_fail_stop = 0;  // 1 once the store is read-only
  std::uint64_t corrupt_blocks = 0;   // run-block CRC/read failures
  std::uint64_t checkpoint_retries = 0;  // failed flush attempts
  std::uint64_t batch_hist[kBatchHistBuckets] = {};
};

/// Histogram bucket for a point batch of `n` ops: floor(log2(n)),
/// clamped to the last bucket (n = 0 never occurs; treated as bucket 0).
inline std::size_t batch_hist_bucket(std::size_t n) {
  std::size_t b = 0;
  while (n > 1 && b + 1 < kBatchHistBuckets) {
    n >>= 1;
    ++b;
  }
  return b;
}

/// One operation inside a Txn request (only point sub-ops compose).
struct TxnOp {
  Op op = Op::kGet;
  std::int64_t key = 0;
  std::int64_t value = 0;  // meaningful for kPut only
};

/// A decoded request frame. Point fields and the txn vector are
/// populated per `op`; unused fields stay zero.
struct Request {
  Op op = Op::kGet;
  std::int64_t key = 0;
  std::int64_t value = 0;
  std::int64_t low = 0;
  std::int64_t high = 0;
  std::uint32_t limit = 0;
  std::vector<TxnOp> txn;
};

/// One sub-op outcome inside a TxnDone response: for kGet `flag` is
/// found and `value` the hit; for kPut/kErase `flag` is
/// inserted/erased.
struct TxnResult {
  std::uint8_t flag = 0;
  std::int64_t value = 0;
};

/// A decoded response frame (client side). Fields populate per status.
struct Response {
  Status status = Status::kError;
  std::uint8_t flag = 0;
  std::int64_t value = 0;
  std::uint8_t error = 0;
  std::vector<std::pair<std::int64_t, std::int64_t>> pairs;
  std::vector<TxnResult> results;
  StatsSnapshot stats;  // populated for Status::kStats
};

// --- little-endian primitives ----------------------------------------

inline void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

inline void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

inline void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

inline std::uint32_t load_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

/// Bounds-checked sequential reader over one frame payload. Every
/// read_* returns false past the end; `done()` demands the payload was
/// consumed exactly (trailing bytes are a protocol error too).
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  bool read_u8(std::uint8_t& v) {
    if (size_ - at_ < 1) return false;
    v = data_[at_++];
    return true;
  }

  bool read_u16(std::uint16_t& v) {
    if (size_ - at_ < 2) return false;
    v = static_cast<std::uint16_t>(data_[at_] |
                                   (std::uint16_t{data_[at_ + 1]} << 8));
    at_ += 2;
    return true;
  }

  bool read_u32(std::uint32_t& v) {
    if (size_ - at_ < 4) return false;
    v = load_u32(data_ + at_);
    at_ += 4;
    return true;
  }

  bool read_u64(std::uint64_t& v) {
    if (size_ - at_ < 8) return false;
    std::uint64_t u = 0;
    for (int i = 0; i < 8; ++i) u |= std::uint64_t{data_[at_ + i]} << (8 * i);
    at_ += 8;
    v = u;
    return true;
  }

  bool read_i64(std::int64_t& v) {
    std::uint64_t u = 0;
    if (!read_u64(u)) return false;
    v = static_cast<std::int64_t>(u);
    return true;
  }

  bool done() const { return at_ == size_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t at_ = 0;
};

// --- framing ----------------------------------------------------------

/// Reserve a length prefix; fill it once the payload is appended.
inline std::size_t begin_frame(std::vector<std::uint8_t>& out) {
  const std::size_t at = out.size();
  out.insert(out.end(), 4, 0);
  return at;
}

inline void end_frame(std::vector<std::uint8_t>& out, std::size_t at) {
  const std::uint32_t len = static_cast<std::uint32_t>(out.size() - at - 4);
  for (int i = 0; i < 4; ++i) {
    out[at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(len >> (8 * i));
  }
}

enum class FrameState {
  kNeedMore,  // not enough buffered bytes for prefix + payload
  kReady,     // payload_len set, payload starts at data + 4
  kBad,       // zero or oversized length prefix — poison the stream
};

/// Inspect the buffered byte stream at `data` for one complete frame.
inline FrameState split_frame(const std::uint8_t* data, std::size_t size,
                              std::size_t& payload_len) {
  if (size < 4) return FrameState::kNeedMore;
  const std::uint32_t len = load_u32(data);
  if (len == 0 || len > kMaxFrameBytes) return FrameState::kBad;
  payload_len = len;
  if (size < 4 + static_cast<std::size_t>(len)) return FrameState::kNeedMore;
  return FrameState::kReady;
}

// --- request builders (client side) -----------------------------------

inline void append_get(std::vector<std::uint8_t>& out, std::int64_t key) {
  const std::size_t at = begin_frame(out);
  put_u8(out, static_cast<std::uint8_t>(Op::kGet));
  put_i64(out, key);
  end_frame(out, at);
}

inline void append_put(std::vector<std::uint8_t>& out, std::int64_t key,
                       std::int64_t value) {
  const std::size_t at = begin_frame(out);
  put_u8(out, static_cast<std::uint8_t>(Op::kPut));
  put_i64(out, key);
  put_i64(out, value);
  end_frame(out, at);
}

inline void append_erase(std::vector<std::uint8_t>& out, std::int64_t key) {
  const std::size_t at = begin_frame(out);
  put_u8(out, static_cast<std::uint8_t>(Op::kErase));
  put_i64(out, key);
  end_frame(out, at);
}

inline void append_scan(std::vector<std::uint8_t>& out, std::int64_t low,
                        std::int64_t high, std::uint32_t limit) {
  const std::size_t at = begin_frame(out);
  put_u8(out, static_cast<std::uint8_t>(Op::kScan));
  put_i64(out, low);
  put_i64(out, high);
  put_u32(out, limit);
  end_frame(out, at);
}

inline void append_txn(std::vector<std::uint8_t>& out,
                       const std::vector<TxnOp>& ops) {
  const std::size_t at = begin_frame(out);
  put_u8(out, static_cast<std::uint8_t>(Op::kTxn));
  put_u16(out, static_cast<std::uint16_t>(ops.size()));
  for (const TxnOp& op : ops) {
    put_u8(out, static_cast<std::uint8_t>(op.op));
    put_i64(out, op.key);
    if (op.op == Op::kPut) put_i64(out, op.value);
  }
  end_frame(out, at);
}

inline void append_stats_req(std::vector<std::uint8_t>& out) {
  const std::size_t at = begin_frame(out);
  put_u8(out, static_cast<std::uint8_t>(Op::kStats));
  end_frame(out, at);
}

// --- response builders (server side) ----------------------------------

inline void append_ok(std::vector<std::uint8_t>& out, bool flag) {
  const std::size_t at = begin_frame(out);
  put_u8(out, static_cast<std::uint8_t>(Status::kOk));
  put_u8(out, flag ? 1 : 0);
  end_frame(out, at);
}

inline void append_found(std::vector<std::uint8_t>& out, std::int64_t value) {
  const std::size_t at = begin_frame(out);
  put_u8(out, static_cast<std::uint8_t>(Status::kFound));
  put_i64(out, value);
  end_frame(out, at);
}

inline void append_miss(std::vector<std::uint8_t>& out) {
  const std::size_t at = begin_frame(out);
  put_u8(out, static_cast<std::uint8_t>(Status::kMiss));
  end_frame(out, at);
}

inline void append_scan_pairs(
    std::vector<std::uint8_t>& out,
    const std::pair<std::int64_t, std::int64_t>* pairs, std::size_t n,
    bool done) {
  const std::size_t at = begin_frame(out);
  put_u8(out, static_cast<std::uint8_t>(done ? Status::kScanDone
                                             : Status::kScanChunk));
  put_u32(out, static_cast<std::uint32_t>(n));
  for (std::size_t i = 0; i < n; ++i) {
    put_i64(out, pairs[i].first);
    put_i64(out, pairs[i].second);
  }
  end_frame(out, at);
}

inline void append_txn_done(std::vector<std::uint8_t>& out,
                            const std::vector<TxnOp>& ops,
                            const std::vector<TxnResult>& results) {
  const std::size_t at = begin_frame(out);
  put_u8(out, static_cast<std::uint8_t>(Status::kTxnDone));
  put_u16(out, static_cast<std::uint16_t>(results.size()));
  for (std::size_t i = 0; i < results.size(); ++i) {
    put_u8(out, results[i].flag);
    if (ops[i].op == Op::kGet && results[i].flag) {
      put_i64(out, results[i].value);
    }
  }
  end_frame(out, at);
}

inline void append_error(std::vector<std::uint8_t>& out, Err code) {
  const std::size_t at = begin_frame(out);
  put_u8(out, static_cast<std::uint8_t>(Status::kError));
  put_u8(out, static_cast<std::uint8_t>(code));
  end_frame(out, at);
}

inline void append_stats(std::vector<std::uint8_t>& out,
                         const StatsSnapshot& s) {
  const std::size_t at = begin_frame(out);
  put_u8(out, static_cast<std::uint8_t>(Status::kStats));
  put_u8(out, static_cast<std::uint8_t>(kStatsWords));
  put_u64(out, s.ops);
  put_u64(out, s.accepted);
  put_u64(out, s.errored);
  put_u64(out, s.shed);
  put_u64(out, s.stm_retries);
  put_u64(out, s.batches);
  put_u64(out, s.batch_ops);
  put_u64(out, s.queued_now);
  put_u64(out, s.queue_hwm);
  put_u64(out, s.accept_pauses);
  put_u64(out, s.emfile_sheds);
  put_u64(out, s.wal_appends);
  put_u64(out, s.wal_fsyncs);
  put_u64(out, s.wal_group_ops);
  put_u64(out, s.store_flushes);
  put_u64(out, s.store_runs);
  put_u64(out, s.bloom_negatives);
  put_u64(out, s.cold_hits);
  put_u64(out, s.recovered_ops);
  put_u64(out, s.store_fail_stop);
  put_u64(out, s.corrupt_blocks);
  put_u64(out, s.checkpoint_retries);
  for (std::size_t i = 0; i < kBatchHistBuckets; ++i) {
    put_u64(out, s.batch_hist[i]);
  }
  end_frame(out, at);
}

// --- parsers ----------------------------------------------------------

inline bool is_point_op(Op op) {
  return op == Op::kGet || op == Op::kPut || op == Op::kErase;
}

/// Decode one request payload. nullopt = malformed (unknown opcode,
/// short/long body, oversized txn) — the caller errors the connection.
inline std::optional<Request> parse_request(const std::uint8_t* payload,
                                            std::size_t size) {
  Reader r(payload, size);
  std::uint8_t op_raw = 0;
  if (!r.read_u8(op_raw)) return std::nullopt;
  Request req;
  req.op = static_cast<Op>(op_raw);
  switch (req.op) {
    case Op::kGet:
    case Op::kErase:
      if (!r.read_i64(req.key)) return std::nullopt;
      break;
    case Op::kPut:
      if (!r.read_i64(req.key) || !r.read_i64(req.value)) return std::nullopt;
      break;
    case Op::kScan:
      if (!r.read_i64(req.low) || !r.read_i64(req.high) ||
          !r.read_u32(req.limit)) {
        return std::nullopt;
      }
      break;
    case Op::kStats:
      break;  // empty body; r.done() below rejects trailing bytes
    case Op::kTxn: {
      std::uint16_t count = 0;
      if (!r.read_u16(count)) return std::nullopt;
      if (count > kMaxTxnOps) return std::nullopt;
      req.txn.reserve(count);
      for (std::uint16_t i = 0; i < count; ++i) {
        std::uint8_t sub_raw = 0;
        TxnOp sub;
        if (!r.read_u8(sub_raw)) return std::nullopt;
        sub.op = static_cast<Op>(sub_raw);
        if (!is_point_op(sub.op)) return std::nullopt;
        if (!r.read_i64(sub.key)) return std::nullopt;
        if (sub.op == Op::kPut && !r.read_i64(sub.value)) return std::nullopt;
        req.txn.push_back(sub);
      }
      break;
    }
    default:
      return std::nullopt;
  }
  if (!r.done()) return std::nullopt;
  return req;
}

/// Decode one response payload (client side). nullopt = malformed.
/// The caller supplies the ops a TxnDone answers (the protocol elides
/// found-values for puts/erases, so decoding needs the request shape).
inline std::optional<Response> parse_response(
    const std::uint8_t* payload, std::size_t size,
    const std::vector<TxnOp>* txn_ops = nullptr) {
  Reader r(payload, size);
  std::uint8_t status_raw = 0;
  if (!r.read_u8(status_raw)) return std::nullopt;
  Response resp;
  resp.status = static_cast<Status>(status_raw);
  switch (resp.status) {
    case Status::kOk:
      if (!r.read_u8(resp.flag)) return std::nullopt;
      break;
    case Status::kFound:
      if (!r.read_i64(resp.value)) return std::nullopt;
      break;
    case Status::kMiss:
      break;
    case Status::kScanChunk:
    case Status::kScanDone: {
      std::uint32_t count = 0;
      if (!r.read_u32(count)) return std::nullopt;
      if (count > kScanChunkPairs) return std::nullopt;
      resp.pairs.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        std::int64_t key = 0;
        std::int64_t value = 0;
        if (!r.read_i64(key) || !r.read_i64(value)) return std::nullopt;
        resp.pairs.emplace_back(key, value);
      }
      break;
    }
    case Status::kTxnDone: {
      std::uint16_t count = 0;
      if (!r.read_u16(count)) return std::nullopt;
      if (txn_ops == nullptr || txn_ops->size() != count) return std::nullopt;
      resp.results.reserve(count);
      for (std::uint16_t i = 0; i < count; ++i) {
        TxnResult result;
        if (!r.read_u8(result.flag)) return std::nullopt;
        if ((*txn_ops)[i].op == Op::kGet && result.flag &&
            !r.read_i64(result.value)) {
          return std::nullopt;
        }
        resp.results.push_back(result);
      }
      break;
    }
    case Status::kError:
      if (!r.read_u8(resp.error)) return std::nullopt;
      break;
    case Status::kStats: {
      std::uint8_t count = 0;
      if (!r.read_u8(count) || count != kStatsWords) return std::nullopt;
      StatsSnapshot& s = resp.stats;
      if (!r.read_u64(s.ops) || !r.read_u64(s.accepted) ||
          !r.read_u64(s.errored) || !r.read_u64(s.shed) ||
          !r.read_u64(s.stm_retries) || !r.read_u64(s.batches) ||
          !r.read_u64(s.batch_ops) || !r.read_u64(s.queued_now) ||
          !r.read_u64(s.queue_hwm) || !r.read_u64(s.accept_pauses) ||
          !r.read_u64(s.emfile_sheds)) {
        return std::nullopt;
      }
      if (!r.read_u64(s.wal_appends) || !r.read_u64(s.wal_fsyncs) ||
          !r.read_u64(s.wal_group_ops) || !r.read_u64(s.store_flushes) ||
          !r.read_u64(s.store_runs) || !r.read_u64(s.bloom_negatives) ||
          !r.read_u64(s.cold_hits) || !r.read_u64(s.recovered_ops) ||
          !r.read_u64(s.store_fail_stop) || !r.read_u64(s.corrupt_blocks) ||
          !r.read_u64(s.checkpoint_retries)) {
        return std::nullopt;
      }
      for (std::size_t i = 0; i < kBatchHistBuckets; ++i) {
        if (!r.read_u64(s.batch_hist[i])) return std::nullopt;
      }
      break;
    }
    default:
      return std::nullopt;
  }
  if (!r.done()) return std::nullopt;
  return resp;
}

}  // namespace leap::net
