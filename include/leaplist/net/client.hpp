// leap::net::Client — a small blocking client for the leapd protocol
// (leaplist/net/protocol.hpp). Two usage levels:
//
//   * one-shot ops: get/put/erase/scan/txn send a request and block
//     for its response(s) — the convenient form for tests and tools;
//   * pipelining primitives: queue_* build request frames into a local
//     buffer, flush() writes them in one burst, read_response() pulls
//     responses back one frame at a time — how a caller exercises the
//     server's burst batching.
//
// Error model: no exceptions. A socket or protocol failure marks the
// client failed() and closes the socket; subsequent ops return
// miss/false/nullopt. Callers that care distinguish a miss from a
// failure by checking failed().
#pragma once

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "leaplist/net/protocol.hpp"

namespace leap::net {

class Client {
 public:
  Client() = default;
  ~Client() { close(); }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect, optionally bounded: timeout_ms > 0 caps the connect
  /// itself (non-blocking + poll) AND every subsequent socket read and
  /// write (SO_RCVTIMEO / SO_SNDTIMEO — a stalled server then fails
  /// the client instead of hanging it forever). 0 = block indefinitely
  /// (the historical behavior).
  bool connect(const std::string& host, std::uint16_t port,
               int timeout_ms = 0) {
    close();
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      close();
      return false;
    }
    if (timeout_ms > 0) {
      if (!connect_timed(reinterpret_cast<sockaddr*>(&addr), sizeof(addr),
                         timeout_ms)) {
        close();
        return false;
      }
      timeval tv{};
      tv.tv_sec = timeout_ms / 1000;
      tv.tv_usec = static_cast<long>(timeout_ms % 1000) * 1000;
      ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
      ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    } else if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                         sizeof(addr)) != 0) {
      close();
      return false;
    }
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    failed_ = false;
    return true;
  }

  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
    outq_.clear();
    inbuf_.clear();
    in_ofs_ = 0;
  }

  bool connected() const { return fd_ >= 0; }
  bool failed() const { return failed_; }
  int fd() const { return fd_; }

  // --- one-shot operations -------------------------------------------

  std::optional<std::int64_t> get(std::int64_t key) {
    append_get(outq_, key);
    const auto resp = round_trip();
    if (!resp || resp->status != Status::kFound) return std::nullopt;
    return resp->value;
  }

  /// True when the key was absent (inserted); false overwrote or failed.
  bool put(std::int64_t key, std::int64_t value) {
    append_put(outq_, key, value);
    const auto resp = round_trip();
    return resp && resp->status == Status::kOk && resp->flag != 0;
  }

  bool erase(std::int64_t key) {
    append_erase(outq_, key);
    const auto resp = round_trip();
    return resp && resp->status == Status::kOk && resp->flag != 0;
  }

  /// Assemble a whole (possibly multi-chunk) scan into `out`
  /// (appending). Returns the pair count, or -1 on failure.
  std::ptrdiff_t scan(std::int64_t low, std::int64_t high,
                      std::uint32_t limit,
                      std::vector<std::pair<std::int64_t, std::int64_t>>& out) {
    append_scan(outq_, low, high, limit);
    if (!flush()) return -1;
    std::ptrdiff_t total = 0;
    for (;;) {
      const auto resp = read_response();
      if (!resp) return -1;
      if (resp->status != Status::kScanChunk &&
          resp->status != Status::kScanDone) {
        fail();
        return -1;
      }
      out.insert(out.end(), resp->pairs.begin(), resp->pairs.end());
      total += static_cast<std::ptrdiff_t>(resp->pairs.size());
      if (resp->status == Status::kScanDone) return total;
    }
  }

  /// Run `ops` as one atomic multi-key transaction server-side.
  std::optional<std::vector<TxnResult>> txn(const std::vector<TxnOp>& ops) {
    append_txn(outq_, ops);
    if (!flush()) return std::nullopt;
    const auto resp = read_response(&ops);
    if (!resp || resp->status != Status::kTxnDone) return std::nullopt;
    return resp->results;
  }

  /// Fetch the server's counter snapshot (the Stats opcode). Stats
  /// requests are exempt from admission control, so this works even
  /// while the server is shedding load.
  std::optional<StatsSnapshot> stats() {
    append_stats_req(outq_);
    const auto resp = round_trip();
    if (!resp || resp->status != Status::kStats) return std::nullopt;
    return resp->stats;
  }

  // --- pipelining primitives -----------------------------------------

  void queue_get(std::int64_t key) { append_get(outq_, key); }
  void queue_put(std::int64_t key, std::int64_t value) {
    append_put(outq_, key, value);
  }
  void queue_erase(std::int64_t key) { append_erase(outq_, key); }
  void queue_scan(std::int64_t low, std::int64_t high, std::uint32_t limit) {
    append_scan(outq_, low, high, limit);
  }
  void queue_txn(const std::vector<TxnOp>& ops) { append_txn(outq_, ops); }

  /// Append raw bytes to the send queue — the robustness tests use
  /// this to speak deliberately broken frames.
  void queue_raw(const std::vector<std::uint8_t>& bytes) {
    outq_.insert(outq_.end(), bytes.begin(), bytes.end());
  }

  /// Write everything queued (one syscall burst — the pipelined shape).
  bool flush() {
    std::size_t at = 0;
    while (at < outq_.size()) {
      const ssize_t n = ::send(fd_, outq_.data() + at, outq_.size() - at,
                               MSG_NOSIGNAL);
      if (n > 0) {
        at += static_cast<std::size_t>(n);
        continue;
      }
      if (errno == EINTR) continue;
      fail();
      return false;
    }
    outq_.clear();
    return true;
  }

  /// Block for the next response frame. A multi-chunk scan surfaces as
  /// several responses (ScanChunk..., ScanDone). nullopt = connection
  /// failed or the stream was malformed.
  std::optional<Response> read_response(
      const std::vector<TxnOp>* txn_ops = nullptr) {
    std::vector<std::uint8_t> payload;
    if (!read_frame(payload)) return std::nullopt;
    auto resp = parse_response(payload.data(), payload.size(), txn_ops);
    if (!resp) fail();
    return resp;
  }

  /// Block for one length-prefixed frame; false on EOF/error.
  bool read_frame(std::vector<std::uint8_t>& payload) {
    for (;;) {
      std::size_t len = 0;
      const FrameState state = split_frame(
          inbuf_.data() + in_ofs_, inbuf_.size() - in_ofs_, len);
      if (state == FrameState::kBad) {
        fail();
        return false;
      }
      if (state == FrameState::kReady) {
        const std::uint8_t* at = inbuf_.data() + in_ofs_ + 4;
        payload.assign(at, at + len);
        in_ofs_ += 4 + len;
        if (in_ofs_ == inbuf_.size()) {
          inbuf_.clear();
          in_ofs_ = 0;
        }
        return true;
      }
      std::uint8_t chunk[16 * 1024];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n > 0) {
        inbuf_.insert(inbuf_.end(), chunk, chunk + n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      fail();  // EOF or hard error with a frame outstanding
      return false;
    }
  }

 private:
  /// Non-blocking connect bounded by `timeout_ms`, then restore the
  /// socket to blocking mode (the read/write bound is SO_*TIMEO, not
  /// O_NONBLOCK). False on refusal, timeout, or any syscall failure.
  bool connect_timed(const sockaddr* addr, socklen_t addr_len,
                     int timeout_ms) {
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) != 0) {
      return false;
    }
    if (::connect(fd_, addr, addr_len) != 0) {
      if (errno != EINPROGRESS) return false;
      pollfd pfd{};
      pfd.fd = fd_;
      pfd.events = POLLOUT;
      for (;;) {
        const int rc = ::poll(&pfd, 1, timeout_ms);
        if (rc > 0) break;
        if (rc == 0) return false;  // timed out
        if (errno != EINTR) return false;
      }
      int soerr = 0;
      socklen_t len = sizeof(soerr);
      if (::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &soerr, &len) != 0 ||
          soerr != 0) {
        return false;
      }
    }
    return ::fcntl(fd_, F_SETFL, flags) == 0;
  }

  std::optional<Response> round_trip() {
    if (!flush()) return std::nullopt;
    return read_response();
  }

  void fail() {
    failed_ = true;
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  int fd_ = -1;
  bool failed_ = false;
  std::vector<std::uint8_t> outq_;
  std::vector<std::uint8_t> inbuf_;
  std::size_t in_ofs_ = 0;
};

}  // namespace leap::net
