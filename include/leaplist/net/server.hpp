// leap::net::Server — "leapd": a multi-threaded epoll TCP server
// exposing a leap::ShardedMap<int64, int64, policy::TM> over the
// length-prefixed binary protocol in leaplist/net/protocol.hpp.
//
// Threading model: every worker owns an epoll instance; the listening
// socket is registered in all of them with EPOLLEXCLUSIVE, so the
// kernel wakes exactly one worker per pending accept and a connection
// lives on the worker that accepted it for its whole life — no
// cross-thread handoff, no shared connection state, no locks on the
// hot path. The map itself is the concurrency layer (point ops route
// to one shard; transactions are STM).
//
// Request handling (per connection, responses in request order):
//   * a pipelined burst of complete point-op frames (get/put/erase)
//     is decoded straight into `*_in` forms and executed inside ONE
//     leap::txn — one STM commit per burst instead of per op;
//   * a Txn frame's sub-ops run in their own leap::txn (the paper's
//     composable multi-key transaction, across shards, over the wire);
//   * a Scan streams ScanChunk frames of kScanChunkPairs pairs, each
//     chunk one bounded stitched transaction, so a large range is
//     never buffered fully — in memory or in the socket buffer
//     (output backpressure pauses chunk production).
// Malformed input (bad opcode/body, zero or oversized length prefix)
// errors out that connection — an Error frame when the stream is still
// framed, then close — without touching the others.
//
// The server binds 127.0.0.1 only (a benchmarking/test harness, not a
// hardened public endpoint). Wire format and semantics: docs/server.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "leaplist/leaplist.hpp"
#include "leaplist/map.hpp"
#include "leaplist/net/protocol.hpp"
#include "leaplist/sharded.hpp"
#include "leaplist/store/store.hpp"

namespace leap::net {

struct ServerOptions {
  std::uint16_t port = 0;  // 0 = ephemeral; read back via Server::port()
  unsigned workers = 2;    // epoll shards (worker threads)
  std::size_t shards = 8;  // map shards
  std::int64_t key_lo = 0;            // shard-routing window hint
  std::int64_t key_hi = 1'000'000;    // (keys outside stay correct)
  core::Params params{};              // per-shard leap-list parameters
  std::size_t max_batch = 128;        // point ops fused into one txn

  // Admission control. A request whose arrival finds the queue over a
  // cap is answered Err::kOverloaded in its FIFO slot instead of being
  // executed; the connection survives. 0 disables a cap.
  std::size_t max_queue = 0;   // per-worker admitted-request backlog cap
  std::size_t max_global = 0;  // global admitted-request backlog cap
  // Hard cap: a worker whose accept finds the GLOBAL backlog at or
  // above this deregisters its listen interest for accept_backoff_ms
  // (new connections wait in the listen backlog). 0 disables; the
  // same pause also follows EMFILE/ENFILE regardless of this cap.
  std::size_t accept_pause = 0;
  unsigned accept_backoff_ms = 100;

  // Durable tier (leaplist/store/store.hpp). Empty data_dir = today's
  // pure in-memory behavior: no Store is constructed, writes take no
  // extra locks, and the store counters stay zero.
  std::string data_dir;
  store::FsyncMode fsync_mode = store::FsyncMode::kGroup;
  std::size_t checkpoint_bytes = 4u << 20;  // per-shard WAL flush bar
  /// Store syscall seam (store/io.hpp): nullptr = real syscalls;
  /// tests and leapd's --fault-spec plug a FaultIo. Must outlive the
  /// Server. Ignored without a data_dir.
  store::Io* store_io = nullptr;
};

/// Aggregated server counters; also the Stats opcode's wire payload.
/// Workers keep relaxed per-worker counters and stats() sums them, so
/// a snapshot can lag live traffic by an in-flight batch.
using ServerStats = StatsSnapshot;

class Server {
 public:
  using MapType = ShardedMap<std::int64_t, std::int64_t, policy::TM>;

  explicit Server(const ServerOptions& opts);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen + start the workers. False (with *error set) on any
  /// socket/epoll failure; the server is then inert and stop() is a
  /// no-op.
  bool start(std::string* error = nullptr);

  /// Stop accepting, wake every worker, join them, close all
  /// connections. Idempotent; also run by the destructor.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (after start(); useful with opts.port = 0).
  std::uint16_t port() const { return port_; }

  ServerStats stats() const;

  /// The served map — for in-process tests to seed or inspect state.
  MapType& map() { return map_; }

  /// The durable tier, or nullptr when running pure in-memory. Valid
  /// between a successful start() and stop(); tests use it to force
  /// checkpoints or tear the WAL tail.
  store::Store* store() { return store_.get(); }

 private:
  struct Worker;
  friend struct Worker;

  ServerOptions opts_;
  MapType map_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> accepted_{0};
  /// Admitted requests buffered across ALL workers, awaiting
  /// execution — the global admission gauge (max_global, accept_pause).
  std::atomic<std::uint64_t> queued_{0};
  // Fold targets: stop() drains each worker's relaxed counters here
  // before destroying it, so stats() stays truthful after shutdown.
  std::atomic<std::uint64_t> ops_{0};
  std::atomic<std::uint64_t> errored_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> stm_retries_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batch_ops_{0};
  std::atomic<std::uint64_t> queue_hwm_{0};
  std::atomic<std::uint64_t> accept_pauses_{0};
  std::atomic<std::uint64_t> emfile_sheds_{0};
  std::atomic<std::uint64_t> batch_hist_[kBatchHistBuckets] = {};
  std::vector<std::unique_ptr<Worker>> workers_;
  // Durable tier; stop() folds its final counters here so stats()
  // stays truthful after shutdown.
  std::unique_ptr<store::Store> store_;
  store::StoreStats store_final_{};
};

}  // namespace leap::net
