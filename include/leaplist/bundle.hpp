// Bundled references (Nelson/Hassan/Palmieri): per-link timestamped
// version bundles that make range queries linearizable on ANY of the
// leap-list policies, with zero reliance on the STM for the scan
// itself.
//
// Every level-0 link keeps a bounded history of (commit timestamp,
// successor) entries, newest first. An updater's copy-node-and-swap
// records the new successor into the predecessor's bundle at the swap's
// commit timestamp — inside the TL2 publish window (Tx::defer_on_publish),
// while the link's versioned lock is still held, so bundle inserts on a
// link are serialized in commit order and are visible before any reader
// can observe the new link version. A scan then:
//
//   1. pins the EBR epoch (ScanPin holds a Guard — replaced nodes a
//      pinned scan may still need cannot be reclaimed under it),
//   2. announces a timestamp slot (blocks bundle pruning), and
//   3. picks ts = stm::clock_now(),
//
// and walks each node as of ts: a seqlock read of next(0) yields the
// current successor when the link's version <= ts, and otherwise the
// bundle's newest entry with entry.ts <= ts. One ts replayed across
// every shard of a ShardedMap gives a linearizable stitched scan on
// LT/COP/RW — the scan linearizes at the instant the clock read ts.
//
// Reclamation contract: an entry may be reclaimed once it is strictly
// older than the newest entry whose timestamp <= the oldest announced
// scan timestamp (that newer entry answers every pinned lookup).
// Pruned entries retire through util::ebr so concurrent bundle walks
// stay safe; the slot-announce handshake (store 0, then read the clock,
// all seq_cst) guarantees a pruner either sees the announcement or
// finished pruning before the scan's clock read, so a pinned scan's
// lookup never fails. Scans still restart defensively on a failed
// lookup — the path is unreachable in the current protocol but cheap
// insurance against future reorderings.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <thread>

#include "stm/stm.hpp"
#include "util/ebr.hpp"

namespace leap::bundle {

/// One link-history record: the link pointed at `target` from commit
/// timestamp `ts` until the next-newer entry's timestamp. `target` is
/// written before the entry is published (or overwritten only within
/// the same still-locked commit window), `older` is the only field
/// mutated afterwards (pruning detaches tails with an exchange).
struct Entry {
  std::uint64_t ts;
  void* target;
  std::atomic<Entry*> older;
};

/// Prune is considered once a bundle reaches this many entries; below
/// it, inserts are pure prepends (no registry sweep).
inline constexpr std::size_t kPruneThreshold = 8;

namespace detail {

inline constexpr std::size_t kScanSlots = 256;
inline constexpr std::uint64_t kSlotFree = ~std::uint64_t{0};
/// A claimed slot holding 0 means "announcing": the scan has claimed
/// the slot but not yet read the clock, and no entry may be pruned
/// (no commit timestamp is <= 0, so no prune stopper exists).
inline constexpr std::uint64_t kSlotAnnouncing = 0;

struct SlotTable {
  std::array<std::atomic<std::uint64_t>, kScanSlots> slots;
  SlotTable() {
    for (auto& s : slots) s.store(kSlotFree, std::memory_order_relaxed);
  }
};

inline std::array<std::atomic<std::uint64_t>, kScanSlots>& slots() {
  static SlotTable table;
  return table.slots;
}

inline void free_entry(void* raw) {
  util::ebr::pool_free(raw, sizeof(Entry));
}

}  // namespace detail

/// Oldest announced scan timestamp, or kSlotFree when no scan is
/// pinned. A slot mid-announce reads as 0 and blocks pruning entirely.
inline std::uint64_t min_active_ts() noexcept {
  auto& table = detail::slots();
  std::uint64_t min = detail::kSlotFree;
  for (const auto& slot : table) {
    const std::uint64_t ts = slot.load(std::memory_order_seq_cst);
    if (ts < min) min = ts;
  }
  return min;
}

/// RAII scan timestamp pin: EBR guard + announced slot + the picked
/// timestamp. Member order matters — the epoch is pinned before the
/// clock is read, so any node retired before the pin is provably not
/// needed at this ts, and any node retired after it is held by EBR.
class ScanPin {
 public:
  ScanPin() {
    auto& table = detail::slots();
    for (std::size_t probe = 0;; probe = (probe + 1) % detail::kScanSlots) {
      std::uint64_t expect = detail::kSlotFree;
      if (table[probe].compare_exchange_strong(
              expect, detail::kSlotAnnouncing, std::memory_order_seq_cst)) {
        slot_ = probe;
        break;
      }
      if (probe == detail::kScanSlots - 1) std::this_thread::yield();
    }
    ts_ = stm::clock_now();
    detail::slots()[slot_].store(ts_, std::memory_order_seq_cst);
  }

  ~ScanPin() {
    detail::slots()[slot_].store(detail::kSlotFree,
                                 std::memory_order_seq_cst);
  }

  ScanPin(const ScanPin&) = delete;
  ScanPin& operator=(const ScanPin&) = delete;

  std::uint64_t ts() const noexcept { return ts_; }

  /// Re-announce with a fresh clock read (defensive-restart path). The
  /// slot passes back through the announcing state so pruning stays
  /// blocked across the switch.
  void refresh() noexcept {
    detail::slots()[slot_].store(detail::kSlotAnnouncing,
                                 std::memory_order_seq_cst);
    ts_ = stm::clock_now();
    detail::slots()[slot_].store(ts_, std::memory_order_seq_cst);
  }

 private:
  util::ebr::Guard guard_;
  std::size_t slot_ = 0;
  std::uint64_t ts_ = 0;
};

/// Record that `head`'s link switched to `target` at commit timestamp
/// `ts`. Must run serialized per bundle with non-decreasing ts — the
/// TL2 publish window (field lock held) provides exactly that. An
/// equal-ts insert overwrites in place: one composed transaction may
/// rewire the same link more than once, and only the final state exists
/// at that timestamp.
inline void insert(std::atomic<Entry*>& head, std::uint64_t ts,
                   void* target) {
  Entry* newest = head.load(std::memory_order_relaxed);
  if (newest != nullptr && newest->ts == ts) {
    newest->target = target;
    return;
  }
  void* raw = util::ebr::pool_alloc(sizeof(Entry));
  Entry* entry = new (raw) Entry{ts, target, {newest}};
  head.store(entry, std::memory_order_release);
}

/// The link's target as of `ts`: the newest entry with entry.ts <= ts.
/// Returns nullptr when the history needed has been pruned (or the
/// node was born after ts) — callers restart with a fresh timestamp.
inline void* find(const std::atomic<Entry*>& head,
                  std::uint64_t ts) noexcept {
  for (Entry* e = head.load(std::memory_order_acquire); e != nullptr;
       e = e->older.load(std::memory_order_acquire)) {
    if (e->ts <= ts) return e->target;
  }
  return nullptr;
}

/// Entries currently reachable from `head` (tests/debug).
inline std::size_t length(const std::atomic<Entry*>& head) noexcept {
  std::size_t n = 0;
  for (Entry* e = head.load(std::memory_order_acquire); e != nullptr;
       e = e->older.load(std::memory_order_acquire)) {
    ++n;
  }
  return n;
}

namespace detail {

/// Retire a detached chain. Each link is claimed with an exchange so
/// two pruners racing over overlapping tails retire every entry exactly
/// once. Caller must hold an ebr::Guard.
inline void retire_chain(Entry* e) {
  while (e != nullptr) {
    Entry* next = e->older.exchange(nullptr, std::memory_order_acq_rel);
    util::ebr::retire(e, &free_entry);
    e = next;
  }
}

}  // namespace detail

/// Drop every entry strictly older than the newest entry with
/// ts <= `min_ts` (those can no longer answer any announced scan).
/// With no stopper (min_ts predates the whole history, e.g. a slot
/// mid-announce) nothing is pruned. Caller must hold an ebr::Guard.
inline void prune(std::atomic<Entry*>& head, std::uint64_t min_ts) {
  for (Entry* e = head.load(std::memory_order_acquire); e != nullptr;
       e = e->older.load(std::memory_order_acquire)) {
    if (e->ts <= min_ts) {
      detail::retire_chain(e->older.exchange(nullptr,
                                             std::memory_order_acq_rel));
      return;
    }
  }
}

/// Prune iff the bundle has grown past kPruneThreshold (the insert-path
/// amortization: a short walk first, the registry sweep only when long).
/// Caller must hold an ebr::Guard.
inline void maybe_prune(std::atomic<Entry*>& head) {
  std::size_t n = 0;
  for (Entry* e = head.load(std::memory_order_acquire); e != nullptr;
       e = e->older.load(std::memory_order_acquire)) {
    if (++n >= kPruneThreshold) {
      prune(head, min_active_ts());
      return;
    }
  }
}

/// Quiescent teardown: free the whole chain directly (no EBR grace).
inline void free_all(std::atomic<Entry*>& head) noexcept {
  Entry* e = head.exchange(nullptr, std::memory_order_acq_rel);
  while (e != nullptr) {
    Entry* next = e->older.load(std::memory_order_relaxed);
    detail::free_entry(e);
    e = next;
  }
}

}  // namespace leap::bundle
