// leap::store on-disk formats — the byte-level codec shared by the WAL
// writer/replayer (leaplist/store/wal.hpp) and the immutable sorted
// runs (leaplist/store/run.hpp). Everything is little-endian and
// CRC-guarded; a record/block either decodes exactly or is rejected.
//
//   WAL record := len:u32 crc:u32 payload[len]
//     payload  := count:u32  count x entry
//     entry    := kind:u8 key:i64 value:i64          (17 bytes, fixed)
//   A record whose length prefix is truncated, whose payload is short,
//   or whose CRC mismatches is a TORN TAIL: replay stops there and the
//   prefix before it is the recovered history (crash mid-append).
//
//   Run file   := blocks... index bloom footer       (see run.hpp)
//     block    := count:u32 crc:u32  count x entry   (same 17B entries,
//                 sorted by key, <= kRunBlockEntries each)
//     index    := block_count x (first_key:i64 off:u64 len:u32)
//     footer   := fixed kRunFooterBytes at EOF, CRC over index + bloom
//                 + footer prefix, magic last — a partial run write is
//                 detected (and deleted at recovery) by footer failure.
//
// The CRC is CRC-32C (Castagnoli), software table-driven — no ISA
// dependency. The bloom filter is split-block-free classic double
// hashing: k = kBloomHashes probes derived from one splitmix64 pass.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

namespace leap::store {

/// Entry kinds carried by both WAL records and run blocks. A tombstone
/// in a run shadows any older run's value for the key; in a WAL it
/// replays as an erase.
enum : std::uint8_t {
  kEntryValue = 0,
  kEntryTombstone = 1,
};

/// One logical mutation: a put (kEntryValue) or an erase
/// (kEntryTombstone, value ignored/zero). The unit of WAL payloads, run
/// blocks, and recovery replay.
struct Entry {
  std::uint8_t kind = kEntryValue;
  std::int64_t key = 0;
  std::int64_t value = 0;
};

inline constexpr std::size_t kEntryBytes = 17;  // kind + key + value

/// Hard ceiling on one WAL record's payload; a longer length prefix is
/// treated as a torn tail (the largest legal batch is far below this).
inline constexpr std::uint32_t kMaxWalRecordBytes = 1u << 20;

inline constexpr std::size_t kRunBlockEntries = 256;
inline constexpr std::size_t kRunIndexEntryBytes = 20;  // key + off + len
inline constexpr std::size_t kRunFooterBytes = 64;
inline constexpr std::uint64_t kRunMagic = 0x314e55525041454cull;  // "LEAPRUN1"
inline constexpr std::uint32_t kRunVersion = 1;

inline constexpr std::size_t kBloomBitsPerKey = 10;
inline constexpr std::uint32_t kBloomHashes = 6;

// --- CRC-32C (software, table-driven) ---------------------------------

namespace detail {

struct CrcTable {
  std::uint32_t at[256];
};

inline constexpr CrcTable make_crc_table() {
  CrcTable table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0x82f63b78u : 0);
    }
    table.at[i] = crc;
  }
  return table;
}

inline constexpr CrcTable kCrcTable = make_crc_table();

}  // namespace detail

/// CRC-32C over `size` bytes; chainable via `seed` (pass a previous
/// return value to extend the checksum across discontiguous sections).
inline std::uint32_t crc32c(const void* data, std::size_t size,
                            std::uint32_t seed = 0) {
  const std::uint8_t* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ detail::kCrcTable.at[(crc ^ p[i]) & 0xff];
  }
  return ~crc;
}

// --- little-endian primitives ----------------------------------------

inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

inline void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

inline std::uint32_t load_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

inline std::uint64_t load_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

inline std::int64_t load_i64(const std::uint8_t* p) {
  return static_cast<std::int64_t>(load_u64(p));
}

inline void put_entry(std::vector<std::uint8_t>& out, const Entry& e) {
  out.push_back(e.kind);
  put_i64(out, e.key);
  put_i64(out, e.value);
}

inline Entry load_entry(const std::uint8_t* p) {
  Entry e;
  e.kind = p[0];
  e.key = load_i64(p + 1);
  e.value = load_i64(p + 9);
  return e;
}

// --- WAL record codec -------------------------------------------------

/// Append one framed WAL record carrying `n` entries onto `out`.
inline void encode_wal_record(std::vector<std::uint8_t>& out,
                              const Entry* entries, std::size_t n) {
  const std::size_t at = out.size();
  put_u32(out, 0);  // length placeholder
  put_u32(out, 0);  // crc placeholder
  const std::size_t payload_at = out.size();
  put_u32(out, static_cast<std::uint32_t>(n));
  for (std::size_t i = 0; i < n; ++i) put_entry(out, entries[i]);
  const std::uint32_t len =
      static_cast<std::uint32_t>(out.size() - payload_at);
  const std::uint32_t crc = crc32c(out.data() + payload_at, len);
  for (int i = 0; i < 4; ++i) {
    out[at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(len >> (8 * i));
    out[at + 4 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(crc >> (8 * i));
  }
}

enum class WalParse {
  kRecord,  // one record decoded; `consumed` advanced past it
  kEnd,     // clean end of the byte stream (size == 0)
  kTorn,    // truncated/corrupt tail — stop replay, keep the prefix
};

/// Decode the next WAL record at `data`. Entries are APPENDED to `ops`.
/// Anything that does not parse exactly — short prefix, oversized or
/// zero length, short payload, CRC mismatch — is a torn tail, never an
/// error: crash-consistency treats it as "the append did not happen".
/// Exception: an all-zero frame header is a CLEAN end, not a tear —
/// segments are fallocate-preallocated, so the space past the last
/// record is zeros (a real record never has len 0).
inline WalParse parse_wal_record(const std::uint8_t* data, std::size_t size,
                                 std::size_t& consumed,
                                 std::vector<Entry>& ops) {
  if (size == 0) return WalParse::kEnd;
  if (size < 8) return WalParse::kTorn;
  const std::uint32_t len = load_u32(data);
  const std::uint32_t crc = load_u32(data + 4);
  if (len == 0 && crc == 0) return WalParse::kEnd;  // preallocated tail
  if (len < 4 || len > kMaxWalRecordBytes) return WalParse::kTorn;
  if (size < 8 + static_cast<std::size_t>(len)) return WalParse::kTorn;
  if (crc32c(data + 8, len) != crc) return WalParse::kTorn;
  const std::uint32_t count = load_u32(data + 8);
  if (static_cast<std::size_t>(len) != 4 + count * kEntryBytes) {
    return WalParse::kTorn;
  }
  const std::uint8_t* at = data + 12;
  for (std::uint32_t i = 0; i < count; ++i, at += kEntryBytes) {
    const Entry e = load_entry(at);
    if (e.kind != kEntryValue && e.kind != kEntryTombstone) {
      return WalParse::kTorn;
    }
    ops.push_back(e);
  }
  consumed = 8 + static_cast<std::size_t>(len);
  return WalParse::kRecord;
}

// --- bloom filter -----------------------------------------------------

namespace detail {

inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace detail

/// Per-run bloom filter over point keys: kBloomBitsPerKey bits per
/// expected key, kBloomHashes probes by classic double hashing. A
/// negative answer proves the key is not in the run, so a point miss
/// skips the block read entirely (the Memento/REMIX argument for
/// keeping cold misses cheap).
class Bloom {
 public:
  Bloom() = default;

  /// Size the filter for `expected` keys (at least one word).
  explicit Bloom(std::size_t expected) {
    const std::size_t bits = expected * kBloomBitsPerKey + 63;
    words_.assign(bits / 64 < 1 ? 1 : bits / 64, 0);
  }

  /// Adopt serialized filter words (loading a run from disk).
  explicit Bloom(std::vector<std::uint64_t> words)
      : words_(std::move(words)) {}

  void add(std::int64_t key) {
    const std::uint64_t h1 =
        detail::splitmix64(static_cast<std::uint64_t>(key));
    const std::uint64_t h2 = detail::splitmix64(h1) | 1;
    const std::uint64_t bits = words_.size() * 64;
    for (std::uint32_t i = 0; i < kBloomHashes; ++i) {
      const std::uint64_t bit = (h1 + i * h2) % bits;
      words_[bit / 64] |= std::uint64_t{1} << (bit % 64);
    }
  }

  bool maybe_contains(std::int64_t key) const {
    if (words_.empty()) return false;
    const std::uint64_t h1 =
        detail::splitmix64(static_cast<std::uint64_t>(key));
    const std::uint64_t h2 = detail::splitmix64(h1) | 1;
    const std::uint64_t bits = words_.size() * 64;
    for (std::uint32_t i = 0; i < kBloomHashes; ++i) {
      const std::uint64_t bit = (h1 + i * h2) % bits;
      if (!(words_[bit / 64] & (std::uint64_t{1} << (bit % 64)))) {
        return false;
      }
    }
    return true;
  }

  const std::vector<std::uint64_t>& words() const { return words_; }

 private:
  std::vector<std::uint64_t> words_;
};

}  // namespace leap::store
