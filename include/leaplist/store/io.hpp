// leap::store::Io — the syscall seam under the whole durable tier.
// Every file operation the store issues (segment/run opens, WAL
// pwrites, run writes and preads, fdatasync/fsync, preallocation,
// renames, unlinks, directory fsyncs) goes through this interface, so
// a test can interpose FaultIo and fail exactly the N-th matching call
// — deterministic disk-failure injection with zero cost on the real
// path (one virtual dispatch per syscall, dwarfed by the syscall).
//
// Fault model (FaultIo): a FaultSpec names a call class (FaultPoint),
// a 1-based call index `nth`, a failure kind, and whether the fault is
// sticky (every matching call from the nth on fails — a dead disk) or
// one-shot (a transient error). Kinds:
//
//   enospc      the call fails with ENOSPC
//   eio         the call fails with EIO
//   shortwrite  HALF the bytes reach the file, then the call fails
//               with EIO — a torn write, the crash-adjacent case
//   syncfail    fdatasync/fsync fails with EIO; per fsyncgate, the
//               caller must treat the unsynced bytes as lost — dirty
//               pages may have been dropped — and NEVER retry the sync
//   bitflip     the write succeeds but one bit of the written bytes is
//               flipped on disk — silent media corruption, caught (or
//               not) by the reader's CRCs
//
// FaultPoint::kAny matches open/pread/pwrite/write/fdatasync/fsync/
// fallocate. ftruncate, unlink, rename, mkdir, and close are NEVER
// matched: they are the store's quarantine/cleanup actions, and
// failing them would make call counting depend on the failure path
// under test. Specs parse from "point:nth:kind[:sticky]" (leapd's
// --fault-spec, e.g. "write:10:enospc:sticky").
#pragma once

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <optional>
#include <string>

namespace leap::store {

/// The syscall surface the store runs on. Return conventions mirror
/// the POSIX calls (errno is set on failure). Implementations need no
/// EINTR handling — callers loop.
class Io {
 public:
  virtual ~Io() = default;
  virtual int open(const char* path, int flags, mode_t mode) = 0;
  virtual int close(int fd) = 0;
  virtual ssize_t pread(int fd, void* buf, std::size_t n, off_t off) = 0;
  virtual ssize_t pwrite(int fd, const void* buf, std::size_t n,
                         off_t off) = 0;
  virtual ssize_t write(int fd, const void* buf, std::size_t n) = 0;
  virtual int fdatasync(int fd) = 0;
  virtual int fsync(int fd) = 0;
  /// Preallocate [0, len) (::fallocate mode 0).
  virtual int fallocate(int fd, off_t len) = 0;
  virtual int ftruncate(int fd, off_t len) = 0;
  virtual int unlink(const char* path) = 0;
  virtual int rename(const char* from, const char* to) = 0;
  virtual int mkdir(const char* path, mode_t mode) = 0;
};

/// Pass-through to the real syscalls.
class RealIo final : public Io {
 public:
  int open(const char* path, int flags, mode_t mode) override {
    return ::open(path, flags, mode);
  }
  int close(int fd) override { return ::close(fd); }
  ssize_t pread(int fd, void* buf, std::size_t n, off_t off) override {
    return ::pread(fd, buf, n, off);
  }
  ssize_t pwrite(int fd, const void* buf, std::size_t n,
                 off_t off) override {
    return ::pwrite(fd, buf, n, off);
  }
  ssize_t write(int fd, const void* buf, std::size_t n) override {
    return ::write(fd, buf, n);
  }
  int fdatasync(int fd) override { return ::fdatasync(fd); }
  int fsync(int fd) override { return ::fsync(fd); }
  int fallocate(int fd, off_t len) override {
    return ::fallocate(fd, 0, 0, len);
  }
  int ftruncate(int fd, off_t len) override { return ::ftruncate(fd, len); }
  int unlink(const char* path) override { return ::unlink(path); }
  int rename(const char* from, const char* to) override {
    return ::rename(from, to);
  }
  int mkdir(const char* path, mode_t mode) override {
    return ::mkdir(path, mode);
  }
};

/// The shared real-syscall instance (stateless; safe from any thread).
inline Io& real_io() {
  static RealIo io;
  return io;
}

enum class FaultKind : std::uint8_t {
  kEnospc,
  kEio,
  kShortWrite,  // write points only
  kSyncFail,    // sync points only
  kBitFlip,     // write points only
};

enum class FaultPoint : std::uint8_t {
  kAny,        // open/pread/pwrite/write/fdatasync/fsync/fallocate
  kOpen,
  kRead,       // pread
  kWrite,      // pwrite + write
  kSync,       // fdatasync + fsync
  kFallocate,
};

struct FaultSpec {
  FaultPoint point = FaultPoint::kAny;
  std::uint64_t nth = 1;  // 1-based index of the matching call that fails
  FaultKind kind = FaultKind::kEio;
  bool sticky = false;  // keep failing every match from the nth on
};

/// Parse "point:nth:kind[:sticky]" (e.g. "write:10:enospc:sticky",
/// "sync:1:syncfail"). nullopt on any malformation, including a kind
/// that cannot apply at the named point (shortwrite/bitflip demand
/// point=write, syncfail demands point=sync).
inline std::optional<FaultSpec> parse_fault_spec(const std::string& text) {
  FaultSpec spec;
  char point[16] = {};
  char kind[16] = {};
  char sticky[8] = {};
  unsigned long long nth = 0;
  const int got = std::sscanf(text.c_str(), "%15[a-z]:%llu:%15[a-z]:%7[a-z]",
                              point, &nth, kind, sticky);
  if (got < 3 || nth == 0) return std::nullopt;
  const std::string p = point;
  if (p == "any") {
    spec.point = FaultPoint::kAny;
  } else if (p == "open") {
    spec.point = FaultPoint::kOpen;
  } else if (p == "read") {
    spec.point = FaultPoint::kRead;
  } else if (p == "write") {
    spec.point = FaultPoint::kWrite;
  } else if (p == "sync") {
    spec.point = FaultPoint::kSync;
  } else if (p == "fallocate") {
    spec.point = FaultPoint::kFallocate;
  } else {
    return std::nullopt;
  }
  spec.nth = nth;
  const std::string k = kind;
  if (k == "enospc") {
    spec.kind = FaultKind::kEnospc;
  } else if (k == "eio") {
    spec.kind = FaultKind::kEio;
  } else if (k == "shortwrite") {
    spec.kind = FaultKind::kShortWrite;
  } else if (k == "syncfail") {
    spec.kind = FaultKind::kSyncFail;
  } else if (k == "bitflip") {
    spec.kind = FaultKind::kBitFlip;
  } else {
    return std::nullopt;
  }
  if (got == 4) {
    if (std::string(sticky) != "sticky") return std::nullopt;
    spec.sticky = true;
  }
  // Kind/point compatibility: a spec that could never fire (or would
  // fire ambiguously at unrelated call classes) is rejected outright.
  if ((spec.kind == FaultKind::kShortWrite ||
       spec.kind == FaultKind::kBitFlip) &&
      spec.point != FaultPoint::kWrite) {
    return std::nullopt;
  }
  if (spec.kind == FaultKind::kSyncFail && spec.point != FaultPoint::kSync) {
    return std::nullopt;
  }
  return spec;
}

/// Deterministic fault injector over another Io. Counts calls matching
/// the armed spec's point; the nth match fails per the spec's kind
/// (every match from the nth on when sticky). Unarmed (or with
/// nth = UINT64_MAX) it is a pure counter — tests dry-run a workload
/// to learn N, then re-run it once per k in 1..N.
class FaultIo final : public Io {
 public:
  explicit FaultIo(Io& base) : base_(base) {}
  FaultIo(Io& base, const FaultSpec& spec) : base_(base) { arm(spec); }

  /// (Re)arm: resets the match counter, so `nth` is relative to now.
  void arm(const FaultSpec& spec) {
    std::lock_guard<std::mutex> lk(mu_);
    spec_ = spec;
    armed_ = true;
    matched_ = 0;
  }

  void disarm() {
    std::lock_guard<std::mutex> lk(mu_);
    armed_ = false;
  }

  /// Faults actually delivered so far.
  std::uint64_t faults_injected() const {
    return injected_.load(std::memory_order_relaxed);
  }

  /// Calls that matched the armed point since the last arm() — the dry
  /// run's N.
  std::uint64_t matched_calls() const {
    std::lock_guard<std::mutex> lk(mu_);
    return matched_;
  }

  int open(const char* path, int flags, mode_t mode) override {
    if (should_fail(FaultPoint::kOpen)) {
      errno = fail_errno();
      return -1;
    }
    return base_.open(path, flags, mode);
  }

  ssize_t pread(int fd, void* buf, std::size_t n, off_t off) override {
    if (should_fail(FaultPoint::kRead)) {
      errno = fail_errno();
      return -1;
    }
    return base_.pread(fd, buf, n, off);
  }

  ssize_t pwrite(int fd, const void* buf, std::size_t n,
                 off_t off) override {
    if (!should_fail(FaultPoint::kWrite)) return base_.pwrite(fd, buf, n, off);
    return faulty_write(fd, buf, n, off, /*positioned=*/true);
  }

  ssize_t write(int fd, const void* buf, std::size_t n) override {
    if (!should_fail(FaultPoint::kWrite)) return base_.write(fd, buf, n);
    return faulty_write(fd, buf, n, 0, /*positioned=*/false);
  }

  int fdatasync(int fd) override {
    if (should_fail(FaultPoint::kSync)) {
      errno = fail_errno();
      return -1;
    }
    return base_.fdatasync(fd);
  }

  int fsync(int fd) override {
    if (should_fail(FaultPoint::kSync)) {
      errno = fail_errno();
      return -1;
    }
    return base_.fsync(fd);
  }

  int fallocate(int fd, off_t len) override {
    if (should_fail(FaultPoint::kFallocate)) {
      errno = fail_errno();
      return -1;
    }
    return base_.fallocate(fd, len);
  }

  // Quarantine/cleanup calls are never faulted (see the header note).
  int close(int fd) override { return base_.close(fd); }
  int ftruncate(int fd, off_t len) override {
    return base_.ftruncate(fd, len);
  }
  int unlink(const char* path) override { return base_.unlink(path); }
  int rename(const char* from, const char* to) override {
    return base_.rename(from, to);
  }
  int mkdir(const char* path, mode_t mode) override {
    return base_.mkdir(path, mode);
  }

 private:
  bool should_fail(FaultPoint point) {
    std::lock_guard<std::mutex> lk(mu_);
    if (!armed_) return false;
    if (spec_.point != FaultPoint::kAny && spec_.point != point) return false;
    ++matched_;
    const bool fire =
        spec_.sticky ? matched_ >= spec_.nth : matched_ == spec_.nth;
    if (fire) injected_.fetch_add(1, std::memory_order_relaxed);
    return fire;
  }

  int fail_errno() const {
    std::lock_guard<std::mutex> lk(mu_);
    return spec_.kind == FaultKind::kEnospc ? ENOSPC : EIO;
  }

  ssize_t faulty_write(int fd, const void* buf, std::size_t n, off_t off,
                       bool positioned) {
    FaultKind kind;
    {
      std::lock_guard<std::mutex> lk(mu_);
      kind = spec_.kind;
    }
    const std::uint8_t* bytes = static_cast<const std::uint8_t*>(buf);
    switch (kind) {
      case FaultKind::kShortWrite: {
        // Half the bytes land, then the call errors: a torn write.
        const std::size_t half = n / 2;
        if (half > 0) {
          if (positioned) {
            (void)base_.pwrite(fd, bytes, half, off);
          } else {
            (void)base_.write(fd, bytes, half);
          }
        }
        errno = EIO;
        return -1;
      }
      case FaultKind::kBitFlip: {
        // The write "succeeds" but one bit of it lies on disk.
        if (!positioned) off = ::lseek(fd, 0, SEEK_CUR);
        const ssize_t r = positioned ? base_.pwrite(fd, bytes, n, off)
                                     : base_.write(fd, bytes, n);
        if (r == static_cast<ssize_t>(n) && n > 0 && off >= 0) {
          const std::uint8_t flipped = bytes[n / 2] ^ 0x40;
          (void)base_.pwrite(fd, &flipped, 1,
                             off + static_cast<off_t>(n / 2));
        }
        return r;
      }
      default:
        errno = kind == FaultKind::kEnospc ? ENOSPC : EIO;
        return -1;
    }
  }

  Io& base_;
  mutable std::mutex mu_;
  bool armed_ = false;
  FaultSpec spec_{};
  std::uint64_t matched_ = 0;
  std::atomic<std::uint64_t> injected_{0};
};

}  // namespace leap::store
