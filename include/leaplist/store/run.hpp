// Immutable sorted runs: the on-disk cold tier under one shard of the
// memtable. A checkpoint flush freezes the shard's current contents
// (plus the erases logged since the previous flush, as tombstones)
// into one `run-<shard>-<seq>.run` file; newer runs shadow older ones
// key-by-key and the memtable shadows them all.
//
// File layout (codec in format.hpp):
//
//   block*  — sorted 17-byte entries, <= kRunBlockEntries per block,
//             each block length-prefixed and CRC'd independently so a
//             point read costs one pread + one CRC pass;
//   index   — (first_key, offset, len) per block, loaded in memory;
//   bloom   — filter words over every key in the run (point-miss gate);
//   footer  — fixed-size trailer: version, counts, min/max key fence,
//             section offsets, a CRC over index+bloom+footer, magic.
//
// A run is only trusted if its footer round-trips: a crash mid-flush
// leaves a file without a valid footer, which recovery deletes (the
// WAL segments the flush would have retired are still present and
// replay instead — nothing is lost).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "leaplist/store/format.hpp"
#include "leaplist/store/io.hpp"

namespace leap::store {

/// Point-lookup result from one run: either a live value or a
/// tombstone (which ends the newest-to-oldest search with "absent").
struct RunHit {
  bool tombstone = false;
  std::int64_t value = 0;
};

/// A loaded, immutable run file. The index, bloom filter, and fence
/// live in memory; entry blocks stay on disk and are pread on demand.
/// Immutable after load, so concurrent readers share it lock-free via
/// shared_ptr snapshots of the shard's run list.
class Run {
 public:
  ~Run();
  Run(const Run&) = delete;
  Run& operator=(const Run&) = delete;

  /// Open + validate `path` through `io` (which must outlive the
  /// Run; block preads go through it too). Returns nullptr (with
  /// *err set) if the file is unreadable or fails footer/CRC
  /// validation — the caller treats that as a dead partial flush and
  /// deletes the file.
  static std::shared_ptr<Run> load(Io& io, const std::string& path,
                                   std::uint64_t seq, std::string* err);

  /// Point lookup. nullopt = key provably absent from this run.
  /// `io_ok` is cleared if a block read or CRC failed (counted by the
  /// store; the lookup degrades to "absent here, keep searching").
  std::optional<RunHit> get(std::int64_t key, bool* io_ok) const;

  /// Append every entry (values AND tombstones) with low <= key <=
  /// high onto `out`, at most `cap` of them, in key order. Returns the
  /// number appended; sets *io_ok false on a block read/CRC failure.
  std::size_t read_range(std::int64_t low, std::int64_t high,
                         std::size_t cap, std::vector<Entry>& out,
                         bool* io_ok) const;

  /// Fence check: can this run contain `key` at all?
  bool fence_contains(std::int64_t key) const {
    return entry_count_ > 0 && key >= min_key_ && key <= max_key_;
  }
  /// Does [low, high] overlap the run's key fence?
  bool fence_overlaps(std::int64_t low, std::int64_t high) const {
    return entry_count_ > 0 && low <= max_key_ && high >= min_key_;
  }
  const Bloom& bloom() const { return bloom_; }
  std::uint64_t seq() const { return seq_; }
  std::uint64_t entry_count() const { return entry_count_; }
  std::int64_t min_key() const { return min_key_; }
  std::int64_t max_key() const { return max_key_; }

 private:
  Run() = default;

  struct IndexEntry {
    std::int64_t first_key;
    std::uint64_t offset;
    std::uint32_t len;
  };

  /// Read + verify block `idx`, decode its entries into `out`.
  bool read_block(std::size_t idx, std::vector<Entry>& out) const;

  Io* io_ = nullptr;
  int fd_ = -1;
  std::uint64_t seq_ = 0;
  std::uint64_t entry_count_ = 0;
  std::int64_t min_key_ = 0;
  std::int64_t max_key_ = 0;
  std::vector<IndexEntry> index_;
  Bloom bloom_;
};

/// Streaming writer: feed add() entries in strictly ascending key
/// order, then finish() seals blocks + index + bloom + footer and
/// fsyncs. An unfinished file is invalid by construction (no footer).
class RunWriter {
 public:
  /// `expected` sizes the bloom filter (entry count upper bound).
  RunWriter(Io& io, std::string path, std::size_t expected);

  void add(const Entry& e);

  /// Seal and fsync the file. False on I/O failure (caller deletes).
  bool finish(std::string* err);

  std::uint64_t entry_count() const { return entry_count_; }

 private:
  void seal_block();

  Io* io_;
  std::string path_;
  int fd_ = -1;
  bool io_error_ = false;
  std::uint64_t file_off_ = 0;
  std::uint64_t entry_count_ = 0;
  std::int64_t min_key_ = 0;
  std::int64_t max_key_ = 0;
  std::vector<std::uint8_t> block_;   // entries of the open block
  std::size_t block_entries_ = 0;
  std::int64_t block_first_key_ = 0;
  std::vector<std::uint8_t> index_;
  std::uint32_t block_count_ = 0;
  Bloom bloom_;
};

}  // namespace leap::store
