// leap::store::Store — the durable tier under a ShardedMap memtable.
// Per shard it keeps a write-ahead log (buffered appends + leader-
// follower group commit: the first waiter to take the shard's fsync
// mutex syncs EVERYTHING appended so far, and every batch that queued
// behind it finds its target already durable and skips its own fsync
// entirely), a tombstone set for erases logged since the last flush,
// and a newest-to-oldest list of immutable sorted runs (run.hpp). Checkpoint flushes rotate the WAL,
// freeze the shard's memtable contents + tombstones into a new run,
// retire the old WAL segments, and evict the flushed keys from the
// memtable so the dataset can outgrow RAM.
//
// Ordering contract: log_batch() locks every affected shard's commit
// mutex (ascending shard order), runs the caller's STM apply closure
// while holding them, appends one WAL record per shard, then releases
// the mutexes and waits for durability per FsyncMode. Commit order
// therefore equals log order per shard, and the caller acks the client
// only after log_batch returns — an acked write is durable to the
// chosen mode. (A write can be briefly visible to concurrent readers
// BEFORE it is durable; if the process dies in that window the write
// was never acked and recovery legitimately forgets it.)
//
// Recovery (open()): load every run file whose footer validates
// (delete the rest — partial flushes), drop WAL segments at or below
// the newest run's seq (their effects live in that run), replay the
// remaining segments in seq order over the memtable, tolerate a torn
// final record in each, and start a fresh segment. Replayed shards
// are checkpointed by the background flusher on its first pass so
// repeated crashes cannot grow replay time without bound.
//
// Failure semantics (every syscall goes through store::Io — io.hpp):
// a WAL write or fdatasync failure is FAIL-STOP. The store flips to
// read-only (fail_stop() / StoreStats::fail_stop), log_batch returns
// false for every subsequent mutation without applying it, and reads,
// scans, and close() keep working off what is already durable. The
// failed bytes are quarantined (truncated off the segment) and never
// re-buffered, and fdatasync is never retried after one failure —
// the kernel may have dropped the dirty pages it covered, so a retry
// that "succeeds" proves nothing (fsyncgate). A checkpoint failure is
// NOT fail-stop: the WAL still holds everything, so the partial run
// file is deleted, the failure is counted (checkpoint_retries), and
// the flusher retries on its next pass. A run block whose CRC fails
// mid-life is a counted read error (corrupt_blocks), degrading that
// run to "absent here", never a silent wrong answer. A restart on a
// healthy Io recovers everything acked.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "leaplist/sharded.hpp"
#include "leaplist/store/io.hpp"

namespace leap::store {

enum class FsyncMode {
  kAlways,  // every log_batch fdatasyncs its dirty shards before ack
  kGroup,   // leader-follower: concurrent batches share one fdatasync
  kOff,     // buffered append only; the background flusher writes the
            // bytes out, the OS decides when they reach the disk
};

/// Parse "always" / "group" / "off" (leapd's --fsync-mode values).
std::optional<FsyncMode> parse_fsync_mode(const std::string& text);
const char* fsync_mode_name(FsyncMode mode);

struct StoreOptions {
  std::string data_dir;
  FsyncMode fsync_mode = FsyncMode::kGroup;
  /// Rotate + flush a shard once its open WAL segment exceeds this.
  std::size_t checkpoint_bytes = 4u << 20;
  /// Background flusher poll period (0 = no background flusher; tests
  /// then drive checkpoint() explicitly). The flusher also drains
  /// each shard's buffered WAL bytes to the fd — in kOff mode that is
  /// the only thing writing them out between checkpoints.
  std::size_t flush_poll_ms = 50;
  /// Syscall seam (io.hpp). nullptr = the real syscalls; tests and
  /// leapd's --fault-spec plug a FaultIo here. Must outlive the Store.
  Io* io = nullptr;
};

/// One client mutation for log_batch (gets never log).
struct LogOp {
  bool erase = false;
  std::int64_t key = 0;
  std::int64_t value = 0;
};

/// Monotone counters, folded into ServerStats / the Stats opcode.
struct StoreStats {
  std::uint64_t wal_appends = 0;    // WAL records written
  std::uint64_t wal_fsyncs = 0;     // fdatasync calls (all causes)
  std::uint64_t wal_group_ops = 0;  // ops covered by group-mode fsyncs
  std::uint64_t flushes = 0;        // checkpoint flushes completed
  std::uint64_t runs = 0;           // live run files across shards
  std::uint64_t bloom_negatives = 0;  // cold gets a bloom proved absent
  std::uint64_t cold_hits = 0;        // gets answered from a run
  std::uint64_t recovered_ops = 0;    // WAL entries replayed at open()
  std::uint64_t fail_stop = 0;         // 1 once the store is read-only
  std::uint64_t corrupt_blocks = 0;    // run-block CRC/read failures
  std::uint64_t checkpoint_retries = 0;  // failed flush attempts
};

class Store {
 public:
  using MapType = ShardedMap<std::int64_t, std::int64_t, policy::TM>;

  /// Binds to the memtable it persists; `map` must outlive the Store.
  Store(MapType& map, const StoreOptions& opts);
  ~Store();
  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;

  /// Create the data dir if needed, recover (runs + WAL replay into
  /// the memtable), open fresh WAL segments, start the syncer and
  /// flusher threads. False (with *err) on unrecoverable I/O failure.
  bool open(std::string* err);

  /// Quiesce: stop background threads, final-fsync every shard's WAL.
  /// Idempotent; the destructor calls it.
  void close();

  /// Durably log `n` mutations and apply them to the memtable via
  /// `apply` (an STM txn closure), atomically per shard with respect
  /// to log order. Returns true once the batch is durable per
  /// FsyncMode. Returns false — and the caller must answer the client
  /// with an error, never an ack — when the store is (or just went)
  /// fail-stop: either the batch was rejected before `apply` ran, or
  /// its own WAL write/sync failed. In the latter case the mutations
  /// ARE in the memtable (briefly visible, like any pre-durability
  /// window) but are quarantined off the log, so a restart forgets
  /// them — exactly the contract for an un-acked write. A multi-shard
  /// batch that fails may still have logged its spans on healthy
  /// shards; those single-shard records replay after restart (the
  /// per-shard atomicity contract, unchanged). With n == 0 just runs
  /// `apply` and returns true (reads never fail-stop).
  [[nodiscard]] bool log_batch(const LogOp* ops, std::size_t n,
                               const std::function<void()>& apply);

  /// True once the store has entered read-only fail-stop.
  bool fail_stop() const {
    return fail_stop_.load(std::memory_order_acquire);
  }

  /// Human-readable cause of the first I/O failure ("" if none).
  std::string last_error() const;

  /// Cold point lookup for a key the memtable missed: tombstones, then
  /// newest-to-oldest runs (fence + bloom gated). A run hit re-checks
  /// the memtable so a concurrent re-insert is never shadowed by an
  /// older run value.
  std::optional<std::int64_t> get_cold(std::int64_t key);

  /// Merged scan: memtable (stitched ShardedMap scan) merged in key
  /// order with tombstones and every overlapping run, newest source
  /// wins per key. Same contract as ShardedMap::scan — up to `limit`
  /// live pairs from `low` upward, appended to `out`; returns the
  /// count appended. `out` is cleared of any partial round on entry
  /// growth only, never shrunk below its incoming size.
  using ScanPair = std::pair<std::int64_t, std::int64_t>;
  std::size_t scan_merged(std::int64_t low, std::size_t limit,
                          std::vector<ScanPair>& out);

  /// Flush every shard that has unflushed WAL bytes or tombstones.
  /// Serialized store-wide; safe concurrently with traffic.
  void checkpoint();

  StoreStats stats() const;

  std::size_t shard_count() const;

  /// Test hook: tear the final `bytes` off shard `s`'s open WAL
  /// segment on disk, as a crash mid-append would. Call only when
  /// quiesced (no concurrent log_batch on that shard).
  bool tear_wal_tail_for_test(std::size_t s, std::uint64_t bytes);

 private:
  struct ShardState;

  bool recover_shard(std::size_t s, std::string* err);
  bool flush_shard(std::size_t s);
  void flusher_main();
  [[nodiscard]] bool wait_durable(
      const std::vector<std::pair<std::size_t, std::uint64_t>>& targets);
  /// Flip to read-only fail-stop, recording `why` as last_error() if
  /// this call won the transition. Call with the failing shard's
  /// fsync mutex held (or the store quiesced).
  void enter_fail_stop(const std::string& why);
  void set_last_error(const std::string& why);

  MapType& map_;
  StoreOptions opts_;
  Io* io_;
  std::vector<std::unique_ptr<ShardState>> shards_;
  bool open_ = false;

  // background checkpoint flusher (see store.cpp); group-commit fsync
  // work is done by the waiters themselves (leader-follower on each
  // shard's fsync mutex), so there are no dedicated sync threads.
  std::thread flusher_;
  struct SyncShared;
  std::unique_ptr<SyncShared> sync_;

  std::mutex flush_mu_;  // serializes flushes store-wide

  std::atomic<std::uint64_t> wal_appends_{0};
  std::atomic<std::uint64_t> wal_fsyncs_{0};
  std::atomic<std::uint64_t> wal_group_ops_{0};
  std::atomic<std::uint64_t> flushes_{0};
  std::atomic<std::uint64_t> bloom_negatives_{0};
  std::atomic<std::uint64_t> cold_hits_{0};
  std::atomic<std::uint64_t> recovered_ops_{0};
  std::atomic<std::uint64_t> corrupt_blocks_{0};
  std::atomic<std::uint64_t> checkpoint_retries_{0};
  std::atomic<bool> fail_stop_{false};
  mutable std::mutex err_mu_;
  std::string last_error_;  // under err_mu_
};

}  // namespace leap::store
