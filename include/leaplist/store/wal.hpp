// One write-ahead-log segment: a preallocated fd, a user-space append
// buffer, and the byte accounting the group-commit machinery runs on.
// Each shard of the store owns a sequence of segments,
// `wal-<shard>-<seq>.log`; exactly one (the highest seq) is open for
// appending at a time, and a checkpoint flush retires every older
// segment.
//
// Appends are BUFFERED: append() is a memcpy under the shard's commit
// mutex (no syscall on the commit path); sync_flush() writes the
// buffer to the fd and fdatasyncs it. Segments are fallocate-
// preallocated so the fdatasync never journals block allocation or a
// size change — roughly half the latency of syncing a growing file.
// The preallocated tail is zeros, which replay_wal_file reads as a
// clean end of log (format.hpp).
//
// Offsets are LOGICAL and monotone across rotation: a segment opened
// after N logical bytes were ever appended to the shard starts at
// logical offset N, so a waiter's durability target ("my record ends
// at logical byte E") survives the segment it was written to being
// rotated away — the final sync of a retiring segment marks all of
// its bytes durable before the swap.
//
// Thread contract (enforced by the Store, see store.hpp):
//   * append() runs under the shard's commit mutex (one appender at a
//     time; commit order == log order). An internal buffer mutex
//     hands the bytes to the flush side.
//   * sync_flush()/flush_buffered()/durable accounting run under the
//     shard's fsync mutex (serializes fd writes, excludes a sync in
//     flight against the fd being swapped by rotation). The fsync
//     mutex is also the GROUP-COMMIT leader election: whoever holds
//     it syncs everything appended so far, and blocked waiters whose
//     target that covered return without syncing at all.
//   * appended()/durable() are lock-free reads for waiters.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "leaplist/store/format.hpp"
#include "leaplist/store/io.hpp"

namespace leap::store {

class Wal {
 public:
  Wal() = default;
  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Create and open segment file `path` (fresh, preallocated to
  /// `prealloc` bytes when the filesystem supports it) through `io`,
  /// which must outlive the Wal. `seq` is the segment's sequence
  /// number, `logical_base` the shard's logical byte count so far.
  /// Returns false (with *err set) on I/O failure — including ENOSPC
  /// from the preallocation, which is a hard error (an unprovisioned
  /// segment would hit the same wall mid-commit instead).
  bool open_fresh(Io& io, const std::string& path, std::uint64_t seq,
                  std::uint64_t logical_base, std::uint64_t prealloc,
                  std::string* err);

  /// Buffer `size` raw bytes (already-framed records). Returns the
  /// logical end offset of the append, i.e. the durability target for
  /// a waiter, or 0 if the segment is unhealthy. Caller holds the
  /// commit mutex.
  std::uint64_t append(const std::uint8_t* data, std::size_t size);

  /// Write any buffered bytes to the fd (no fsync). Caller holds the
  /// fsync mutex. False on write failure: the segment goes unhealthy
  /// and the on-disk tail is truncated back to the last fully-written
  /// offset, so a partial write can never replay as garbage — and the
  /// un-flushed bytes are dropped, never re-buffered (their batches
  /// were never acked). durable() is NOT advanced.
  bool flush_buffered();

  /// flush_buffered() + fdatasync, then advance durable() to every
  /// byte the flush covered (everything appended before the call —
  /// the group-commit step). Caller holds the fsync mutex. On sync
  /// failure the segment goes unhealthy and fdatasync is NEVER
  /// retried (the kernel may already have dropped the dirty pages —
  /// fsyncgate); with `quarantine_unsynced`, the on-disk content is
  /// truncated back to durable() so bytes whose sync failed (and
  /// whose batches were therefore never acked) cannot resurface at
  /// replay. Pass false in kOff mode, where un-synced bytes WERE
  /// acked and keeping them is strictly better.
  bool sync_flush(bool quarantine_unsynced);

  /// Close the fd (rotation retires this segment after a final sync).
  void close_fd();

  std::uint64_t appended() const {
    return appended_.load(std::memory_order_acquire);
  }
  std::uint64_t durable() const {
    return durable_.load(std::memory_order_acquire);
  }
  /// Bytes appended into THIS segment (checkpoint threshold input).
  std::uint64_t segment_bytes() const {
    return appended() - logical_base_;
  }
  std::uint64_t seq() const { return seq_; }
  const std::string& path() const { return path_; }
  /// io_error_ is atomic so the commit path (append, under the commit
  /// mutex) can observe a failure recorded by a flush-side holder of
  /// the fsync mutex without a data race.
  bool healthy() const {
    return fd_ >= 0 && !io_error_.load(std::memory_order_acquire);
  }
  /// errno captured at the first I/O failure (fsync-mutex holders).
  int last_errno() const { return err_no_; }

  /// Mark everything appended so far durable. ONLY legitimate after a
  /// successful sync that provably covered every appended byte (e.g.
  /// rotation's final sync runs under both the commit and fsync
  /// mutexes, so nothing can append concurrently). Never call this on
  /// an unhealthy segment — durable() must stay truthful, it is what
  /// group-commit followers ack against.
  void mark_all_durable() {
    durable_.store(appended_.load(std::memory_order_acquire),
                   std::memory_order_release);
  }

  /// Adopt state from a successor segment: keeps the atomics (shared
  /// accounting) but swaps fd/seq/path. Used by rotation, under both
  /// the commit and fsync mutexes, after a final sync_flush() (the
  /// buffer must be empty).
  void swap_segment(int fd, std::uint64_t seq, std::string path);

  /// Test hook: drop the last `bytes` of the CURRENT segment's
  /// CONTENT on disk (simulates a crash tearing the final record
  /// mid-append). Flushes the buffer first; truncation is relative to
  /// the content end, not the preallocated file size.
  bool truncate_tail_for_test(std::uint64_t bytes);

 private:
  Io* io_ = nullptr;
  int fd_ = -1;
  std::atomic<bool> io_error_{false};
  int err_no_ = 0;  // under the fsync mutex
  std::uint64_t seq_ = 0;
  std::uint64_t logical_base_ = 0;
  std::uint64_t write_off_ = 0;  // bytes written to THIS fd (fsync mu)
  std::string path_;
  std::atomic<std::uint64_t> appended_{0};
  std::atomic<std::uint64_t> durable_{0};
  // Append-side pending bytes; the commit path memcpys in under
  // buf_mu_, the flush side (fsync mutex holders) steals the whole
  // buffer under buf_mu_ and writes it outside.
  std::mutex buf_mu_;
  std::vector<std::uint8_t> pending_;
  std::vector<std::uint8_t> flushing_;  // flush-side scratch (fsync mu)
};

/// Replay one WAL segment file: decode records front-to-back into
/// `ops`, stopping cleanly at a torn tail or the preallocated zero
/// tail. Returns false only on a hard I/O error opening/reading the
/// file (a torn or empty file is a normal true return; *torn reports
/// whether a corrupt tail was dropped).
bool replay_wal_file(Io& io, const std::string& path,
                     std::vector<Entry>& ops, bool* torn, std::string* err);

}  // namespace leap::store
