// Leap list: a skiplist of fat nodes, each holding up to `node_size`
// key/value pairs in the key range (pred.high, high], supporting
// linearizable range queries (Avni, Shavit, Suissa — PODC 2013).
//
// Update model (paper §2): an update never edits a published node's
// content. It builds replacement node(s) — a copy with the pair
// added/removed, or a two-way split when full — and atomically swings
// the predecessor pointers while marking the victim's next pointers.
// Content is therefore immutable after publish, and only the `next`
// words carry synchronization (stm::TxField). Replaced nodes are
// reclaimed through util::ebr once no search can reference them.
//
// Four synchronization schemes over the same structure:
//   LeapListLT   lock the predecessors + victim, validate, then a short
//                transaction swings the pointers; lookups are
//                transaction-free raw searches (marked pointers make
//                stale traversals restart).
//   LeapListCOP  consistency-oblivious: raw (uninstrumented) traversal,
//                then validation + pointer swing inside one commit
//                transaction.
//   LeapListTM   fully transactional: even the traversal is
//                instrumented (search_predecessors_tx). Uniquely among
//                the variants it also composes: the `*_in` forms enlist
//                in a caller-owned transaction (leaplist/txn.hpp), so
//                one transaction can update and range-query several
//                lists as one atomic unit.
//   LeapListRW   global std::shared_mutex baseline.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <new>
#include <optional>
#include <shared_mutex>
#include <type_traits>
#include <vector>

#include "leaplist/bundle.hpp"
#include "leaplist/txn.hpp"
#include "stm/stm.hpp"
#include "util/ebr.hpp"
#include "util/marked_ptr.hpp"
#include "util/random.hpp"

namespace leap::core {

using Key = std::int64_t;
using Value = std::int64_t;

struct KV {
  Key key;
  Value value;
};

namespace detail {

/// Invoke a range visitor on one pair. A visitor returning void scans
/// to the end of the range; a bool-returning visitor stops the scan by
/// returning false.
template <typename F, typename KT, typename VT>
bool visit_one(F& fn, const KT& key, const VT& value) {
  if constexpr (std::is_void_v<decltype(fn(key, value))>) {
    fn(key, value);
    return true;
  } else {
    return static_cast<bool>(fn(key, value));
  }
}

/// Range visitation is speculative: an attempt that fails validation
/// re-visits from the low bound. A visitor that accumulates state may
/// expose an `on_restart()` member to roll that state back; visitors
/// without one are assumed stateless (count-only, early-exit probes).
template <typename F>
void visit_restart(F& fn) {
  if constexpr (requires { fn.on_restart(); }) fn.on_restart();
}

/// The canonical accumulating visitor: pairs APPEND to `out` (never
/// cleared), and on_restart truncates back to the size at construction,
/// so several appenders can stack ranges into one buffer inside one
/// transaction. Works for any vector whose value_type brace-constructs
/// from {key, value} (core::KV, std::pair, typed map entries).
template <typename Vec>
class Appender {
 public:
  explicit Appender(Vec& out) : out_(out), base_(out.size()) {}

  template <typename KT, typename VT>
  bool operator()(const KT& key, const VT& value) {
    out_.push_back({key, value});
    return true;
  }

  /// Bulk ingest of a whole in-range run (see visit_node): one resize,
  /// then a tight branch-free fill — no per-pair capacity check.
  template <typename KT, typename VT>
    requires requires(Vec v, const KT& k, const VT& val) {
      v.push_back({k, val});
    }
  void append_run(const KT* keys, const VT* values, std::size_t n) {
    const std::size_t at = out_.size();
    out_.resize(at + n);
    auto* dst = out_.data() + at;
    for (std::size_t i = 0; i < n; ++i) dst[i] = {keys[i], values[i]};
  }

  void on_restart() { out_.resize(base_); }

 private:
  Vec& out_;
  std::size_t base_;
};

/// First index in [0, n] whose key is >= probe: branchless binary
/// search over the flat key array. The per-step update compiles to a
/// conditional move, so the in-node hot loop carries no unpredictable
/// branch (measured against std::lower_bound and the PATRICIA trie in
/// abl_search / abl_trie; see ROADMAP's trie item).
inline std::size_t flat_lower_bound(const Key* keys, std::size_t n,
                                    Key probe) noexcept {
  std::size_t base = 0;
  while (n > 1) {
    const std::size_t half = n / 2;
    base += (keys[base + half - 1] < probe) ? half : 0;
    n -= half;
  }
  return base + static_cast<std::size_t>(n == 1 && keys[base] < probe);
}

/// First index in [0, n] whose key is > probe (strict), same branchless
/// shape. Safe for probe == kSentinelKey (no probe + 1 anywhere).
inline std::size_t flat_upper_bound(const Key* keys, std::size_t n,
                                    Key probe) noexcept {
  std::size_t base = 0;
  while (n > 1) {
    const std::size_t half = n / 2;
    base += (keys[base + half - 1] <= probe) ? half : 0;
    n -= half;
  }
  return base + static_cast<std::size_t>(n == 1 && keys[base] <= probe);
}

/// A visitor that bulk-ingests whole in-range runs instead of taking
/// pairs one at a time. Bulk visitors are unbounded accumulators by
/// contract — they cannot stop the scan early (Appender qualifies,
/// bounded collectors don't).
template <typename F>
concept BulkVisitor =
    requires(F& fn, const Key* keys, const Value* values, std::size_t n) {
      fn.append_run(keys, values, n);
    };

}  // namespace detail

/// Hard cap on index height; Params::max_level must stay below it.
inline constexpr int kMaxHeight = 24;

/// Reserved key: the rightmost data node always has high == kSentinelKey
/// so every user key (< kSentinelKey) belongs to exactly one node.
inline constexpr Key kSentinelKey = std::numeric_limits<Key>::max();

struct Params {
  std::size_t node_size = 300;
  int max_level = 10;
};

/// A fat node as ONE flat allocation: a fixed header followed by the
/// node's variable trailing storage, SoA preserved —
///
///   [ header | next: TxField<u64> × level | keys: Key × capacity |
///     values: Value × capacity ]
///
/// The `next` marked-pointer words are the only transactional state;
/// every next(i) access holds i < level by the skiplist invariant (a
/// level-i predecessor is linked at level i). keys/values are sorted
/// and immutable once published (RW, which runs under an exclusive
/// lock, excepted). LT's per-node lock lives in a striped side table
/// (detail::stripe_lock), not in the node, so COP/TM/RW — which never
/// lock — don't carry it. Blocks come from util::ebr's recycling pool
/// (make_node) and return to it once a victim's grace period elapses
/// (recycle_node), so steady-state updates never touch the heap.
/// birth_ts value of a node not yet published: as-of scans reject it as
/// a walk start until the publishing commit stamps the real timestamp.
inline constexpr std::uint64_t kUnbornTs = ~std::uint64_t{0};

struct Node {
  Key high;                      // inclusive upper bound of the key range
  std::uint32_t count;           // live pairs
  const std::uint32_t capacity;  // trailing key/value slots
  const std::int32_t level;      // index levels this node is linked at
  std::atomic<bool> live{true};
  /// Commit timestamp of the swap that published this node (kUnbornTs
  /// until then). A node with birth_ts <= ts that is unmarked — or was
  /// marked only after ts — was on the level-0 chain at instant ts.
  std::atomic<std::uint64_t> birth_ts{kUnbornTs};
  /// Timestamped history of this node's level-0 link (bundled
  /// references): newest entry first, maintained inside the publishing
  /// commit's TL2 publish window, pruned against the oldest announced
  /// scan timestamp.
  std::atomic<bundle::Entry*> bundle0{nullptr};

  Node(std::uint32_t capacity_in, int level_in, Key high_in)
      : high(high_in),
        count(0),
        capacity(capacity_in),
        level(level_in) {}

  Key high_raw() const { return high; }

  // Trailing-array accessors; only the key/value offset depends on
  // runtime state (level), one add on the hot path.
  stm::TxField<std::uint64_t>& next(int i) noexcept;
  const stm::TxField<std::uint64_t>& next(int i) const noexcept;
  Key* keys() noexcept;
  const Key* keys() const noexcept;
  Value* values() noexcept;
  const Value* values() const noexcept;

  /// Append one pair while bulk-building an unpublished node.
  void append(Key key, Value value) noexcept {
    assert(count < capacity);
    keys()[count] = key;
    values()[count] = value;
    ++count;
  }

  static std::size_t bytes_for(std::uint32_t capacity, int level) noexcept;
  std::size_t alloc_bytes() const noexcept {
    return bytes_for(capacity, level);
  }
};

/// Header size rounded up to the trailing arrays' alignment.
inline constexpr std::size_t kNodeHeaderBytes =
    (sizeof(Node) + alignof(stm::TxField<std::uint64_t>) - 1) &
    ~(alignof(stm::TxField<std::uint64_t>) - 1);

inline stm::TxField<std::uint64_t>& Node::next(int i) noexcept {
  assert(i >= 0 && i < level);
  return reinterpret_cast<stm::TxField<std::uint64_t>*>(
      reinterpret_cast<std::byte*>(this) + kNodeHeaderBytes)[i];
}

inline const stm::TxField<std::uint64_t>& Node::next(int i) const noexcept {
  assert(i >= 0 && i < level);
  return reinterpret_cast<const stm::TxField<std::uint64_t>*>(
      reinterpret_cast<const std::byte*>(this) + kNodeHeaderBytes)[i];
}

inline Key* Node::keys() noexcept {
  return reinterpret_cast<Key*>(
      reinterpret_cast<std::byte*>(this) + kNodeHeaderBytes +
      static_cast<std::size_t>(level) * sizeof(stm::TxField<std::uint64_t>));
}

inline const Key* Node::keys() const noexcept {
  return reinterpret_cast<const Key*>(
      reinterpret_cast<const std::byte*>(this) + kNodeHeaderBytes +
      static_cast<std::size_t>(level) * sizeof(stm::TxField<std::uint64_t>));
}

inline Value* Node::values() noexcept {
  return reinterpret_cast<Value*>(
      reinterpret_cast<std::byte*>(keys()) +
      static_cast<std::size_t>(capacity) * sizeof(Key));
}

inline const Value* Node::values() const noexcept {
  return reinterpret_cast<const Value*>(
      reinterpret_cast<const std::byte*>(keys()) +
      static_cast<std::size_t>(capacity) * sizeof(Key));
}

inline std::size_t Node::bytes_for(std::uint32_t capacity,
                                   int level) noexcept {
  return kNodeHeaderBytes +
         static_cast<std::size_t>(level) *
             sizeof(stm::TxField<std::uint64_t>) +
         static_cast<std::size_t>(capacity) * (sizeof(Key) + sizeof(Value));
}

static_assert(std::is_trivially_destructible_v<Node>,
              "flat nodes are reclaimed as raw blocks");
static_assert(alignof(Node) <= alignof(std::max_align_t) &&
                  alignof(stm::TxField<std::uint64_t>) <= alignof(Node),
              "one operator-new block must satisfy every segment");

/// Placement-build a node in one pool block: header and next TxFields
/// are placement-constructed; keys/values are implicit-lifetime arrays
/// inside the same block.
inline Node* make_node(std::uint32_t capacity, int level, Key high) {
  void* raw = util::ebr::pool_alloc(Node::bytes_for(capacity, level));
  Node* node = new (raw) Node(capacity, level, high);
  stm::TxField<std::uint64_t>::construct_array(
      reinterpret_cast<std::byte*>(raw) + kNodeHeaderBytes,
      static_cast<std::size_t>(level));
  return node;
}

/// Tear down an unreachable node — never published, or retired and
/// past its EBR grace period — and hand the block back to the pool.
/// Bundle entries still chained to the node are unreachable with it
/// (pruning detaches through the head), so they free directly.
inline void destroy_node(Node* node) noexcept {
  if (node == nullptr) return;
  bundle::free_all(node->bundle0);
  util::ebr::pool_free(node, node->alloc_bytes());
}

/// ebr::retire deleter: recycle the victim's block.
inline void recycle_node(void* raw) {
  destroy_node(static_cast<Node*>(raw));
}

namespace detail {

/// LT's per-node locks as a striped side table keyed by node address,
/// so the shared node layout carries no mutex. Two nodes may collide on
/// a stripe — that only serializes their publishes, never admits an
/// invalid one — and publish_locked acquires stripes in index order,
/// which keeps locking deadlock-free exactly like the old address
/// order.
inline constexpr std::size_t kLockStripes = 1024;  // power of two

inline std::size_t lock_stripe(const void* node) noexcept {
  auto hash = static_cast<std::uint64_t>(
      reinterpret_cast<std::uintptr_t>(node) >> 6);
  hash *= 0x9E3779B97F4A7C15ull;
  return static_cast<std::size_t>((hash >> 32) & (kLockStripes - 1));
}

/// Cache-line-aligned so neighboring stripes never false-share.
struct alignas(64) StripeMutex {
  std::mutex mu;
};

inline std::mutex& stripe_lock(std::size_t stripe) noexcept {
  static std::array<StripeMutex, kLockStripes> locks;
  return locks[stripe].mu;
}

/// Prefetch a node's first key cache line; issued during the index
/// descent so the line lands before the in-node search needs it.
inline void prefetch_keys(const Node* node) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(static_cast<const void*>(node->keys()));
#endif
}

}  // namespace detail

/// User keys live strictly between the head sentinel (Key min) and the
/// rightmost node's kSentinelKey bound.
inline void assert_user_key([[maybe_unused]] Key key) {
  assert(key > std::numeric_limits<Key>::min());
  assert(key < kSentinelKey);
}

/// Always-on nesting guard (NOT an assert: Release builds must fail
/// just as loudly). LT/COP/Skip-tm update paths act on commit success
/// immediately, so enlisting them in an enclosing transaction — which
/// would flat-nest their internal atomically and defer the publish —
/// silently corrupts the structure: locks released and victims retired
/// for an update that may never commit. The composable, nestable API
/// is LeapListTM's `*_in` forms (and its single-op wrappers).
inline void require_no_open_tx(const char* what) {
  if (stm::tls_tx().in_tx()) {
    std::fprintf(stderr,
                 "leaplist: %s cannot enlist in an open transaction; use "
                 "LeapListTM\n",
                 what);
    std::abort();
  }
}

/// Sort by key; duplicate keys keep the last value (the semantics every
/// bulk_load in this repo shares).
inline std::vector<KV> sorted_unique(const std::vector<KV>& pairs) {
  std::vector<KV> sorted = pairs;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const KV& a, const KV& b) { return a.key < b.key; });
  std::vector<KV> unique;
  unique.reserve(sorted.size());
  for (const KV& kv : sorted) {
    if (!unique.empty() && unique.back().key == kv.key) {
      unique.back().value = kv.value;
    } else {
      unique.push_back(kv);
    }
  }
  return unique;
}

struct SearchResult {
  std::array<Node*, kMaxHeight> pa{};  // predecessor per level
  std::array<Node*, kMaxHeight> na{};  // first node with high >= key
};

/// Uninstrumented predecessor search (the LT/COP fast path). Restarts
/// when it steps on a marked pointer or a retired node; must run under
/// an ebr::Guard.
inline SearchResult search_predecessors(Node* head, int max_level, Key key) {
  while (true) {
    SearchResult result;
    bool restart = false;
    Node* x = head;
    for (int i = max_level - 1; i >= 0 && !restart; --i) {
      Node* x_next = nullptr;
      while (true) {
        const std::uint64_t word = x->next(i).load_word();
        if (util::is_marked(word)) {
          restart = true;
          break;
        }
        x_next = util::to_ptr<Node>(word);
        if (!x_next->live.load(std::memory_order_acquire)) {
          restart = true;
          break;
        }
        if (x_next->high_raw() >= key) {
          // The cover candidate's keys get searched right after the
          // descent lands; start the line toward L1 now, while the
          // remaining levels still hide the latency.
          if (i <= 1) detail::prefetch_keys(x_next);
          break;
        }
        x = x_next;
      }
      result.pa[i] = x;
      result.na[i] = x_next;
    }
    if (!restart) return result;
  }
}

/// Fully instrumented search (what Leap-tm pays, §2.1): every pointer
/// hop is a transactional read, validated at commit. Aborts on marks.
inline SearchResult search_predecessors_tx(stm::Tx& tx, Node* head,
                                           int max_level, Key key) {
  SearchResult result;
  Node* x = head;
  for (int i = max_level - 1; i >= 0; --i) {
    Node* x_next = nullptr;
    while (true) {
      const std::uint64_t word = x->next(i).tx_read(tx);
      if (util::is_marked(word)) tx.abort();
      x_next = util::to_ptr<Node>(word);
      if (x_next->high_raw() >= key) {
        if (i <= 1) detail::prefetch_keys(x_next);
        break;
      }
      x = x_next;
    }
    result.pa[i] = x;
    result.na[i] = x_next;
  }
  return result;
}

class LeapListBase {
 public:
  explicit LeapListBase(const Params& params) : params_(params) {
    assert(params_.max_level >= 1 && params_.max_level <= kMaxHeight);
    assert(params_.node_size >= 2);
    assert(params_.node_size <= 0xFFFFFFFFull - 1);
    head_ = alloc_node(params_.max_level, std::numeric_limits<Key>::min());
    tail_ = alloc_node(params_.max_level, kSentinelKey);
    Node* first = alloc_node(params_.max_level, kSentinelKey);
    for (int i = 0; i < params_.max_level; ++i) {
      head_->next(i).init(util::to_word(first));
      first->next(i).init(util::to_word(tail_));
      tail_->next(i).init(0);
    }
    head_->birth_ts.store(0, std::memory_order_relaxed);
    first->birth_ts.store(0, std::memory_order_relaxed);
    tail_->birth_ts.store(0, std::memory_order_relaxed);
    bundle::insert(head_->bundle0, 0, first);
    bundle::insert(first->bundle0, 0, tail_);
  }

  ~LeapListBase() {
    Node* cur = head_;
    while (cur != tail_) {
      Node* nxt =
          util::to_ptr<Node>(util::without_mark(cur->next(0).load_word()));
      destroy_node(cur);
      cur = nxt;
    }
    destroy_node(tail_);
    util::ebr::collect();
  }

  LeapListBase(const LeapListBase&) = delete;
  LeapListBase& operator=(const LeapListBase&) = delete;

  const Params& params() const { return params_; }

  /// Single-threaded preload of a quiescent (freshly built) list.
  /// Duplicate keys keep the last value; nodes are filled to half
  /// capacity so early updates have headroom.
  void bulk_load(const std::vector<KV>& pairs) {
    const std::vector<KV> unique = sorted_unique(pairs);
    for (const KV& kv : unique) assert_user_key(kv.key);
    // Drop the existing data chain.
    Node* cur =
        util::to_ptr<Node>(util::without_mark(head_->next(0).load_word()));
    while (cur != tail_) {
      Node* nxt =
          util::to_ptr<Node>(util::without_mark(cur->next(0).load_word()));
      destroy_node(cur);
      cur = nxt;
    }
    const std::size_t fill = std::max<std::size_t>(1, params_.node_size / 2);
    std::array<Node*, kMaxHeight> last;
    last.fill(head_);
    std::size_t offset = 0;
    std::vector<Node*> nodes;
    while (offset < unique.size()) {
      const std::size_t take = std::min(fill, unique.size() - offset);
      Node* node = alloc_node(random_level(), unique[offset + take - 1].key);
      for (std::size_t j = 0; j < take; ++j) {
        node->append(unique[offset + j].key, unique[offset + j].value);
      }
      nodes.push_back(node);
      offset += take;
    }
    if (nodes.empty()) {
      nodes.push_back(alloc_node(params_.max_level, kSentinelKey));
    }
    nodes.back()->high = kSentinelKey;
    for (Node* node : nodes) {
      for (int i = 0; i < node->level; ++i) {
        last[i]->next(i).init(util::to_word(node));
        last[i] = node;
      }
    }
    for (int i = 0; i < params_.max_level; ++i) {
      last[i]->next(i).init(util::to_word(tail_));
    }
    // Rebase the bundle layer on the rebuilt chain. bulk_load's
    // quiescence contract means no scan is pinned at an older
    // timestamp, so the head's previous history (whose targets were
    // just destroyed) is dropped rather than pruned.
    const std::uint64_t ts0 = stm::clock_now();
    bundle::free_all(head_->bundle0);
    head_->birth_ts.store(0, std::memory_order_relaxed);
    bundle::insert(head_->bundle0, ts0, nodes.front());
    for (std::size_t j = 0; j < nodes.size(); ++j) {
      Node* succ = j + 1 < nodes.size() ? nodes[j + 1] : tail_;
      nodes[j]->birth_ts.store(ts0, std::memory_order_relaxed);
      bundle::insert(nodes[j]->bundle0, ts0, succ);
    }
  }

  /// Quiescent structural invariant check (tests / debugging only).
  bool debug_validate() const {
    Key prev_high = std::numeric_limits<Key>::min();
    Node* last_data = nullptr;
    for (Node* n = data_next(head_); n != tail_; n = data_next(n)) {
      if (n->level < 1 || n->level > params_.max_level) return false;
      if (n->high <= prev_high) return false;
      if (n->count > n->capacity) return false;
      const Key* keys = n->keys();
      for (std::size_t j = 0; j < n->count; ++j) {
        if (keys[j] <= prev_high || keys[j] > n->high) return false;
        if (j > 0 && keys[j] <= keys[j - 1]) return false;
      }
      prev_high = n->high;
      last_data = n;
    }
    if (last_data == nullptr || last_data->high != kSentinelKey) return false;
    for (int i = 0; i < params_.max_level; ++i) {
      Key level_prev = std::numeric_limits<Key>::min();
      for (Node* n = data_next(head_, i); n != tail_; n = data_next(n, i)) {
        if (n->level <= i) return false;
        if (n->high <= level_prev) return false;
        level_prev = n->high;
      }
    }
    // Bundle invariants, quiescent: every on-chain node's newest entry
    // matches its current level-0 link (every link change inserts at
    // the same commit), and entry timestamps strictly decrease.
    for (Node* n = head_; n != tail_; n = data_next(n)) {
      const bundle::Entry* e =
          n->bundle0.load(std::memory_order_acquire);
      if (e == nullptr) return false;
      if (e->target != static_cast<void*>(data_next(n))) return false;
      std::uint64_t prev_ts = e->ts;
      for (const bundle::Entry* o = e->older.load(std::memory_order_acquire);
           o != nullptr; o = o->older.load(std::memory_order_acquire)) {
        if (o->ts >= prev_ts) return false;
        prev_ts = o->ts;
      }
    }
    return true;
  }

  /// Quiescent element count (tests only).
  std::size_t size_slow() const {
    std::size_t total = 0;
    for (Node* n = data_next(head_); n != tail_; n = data_next(n)) {
      total += n->count;
    }
    return total;
  }

  // --- Bundled-reference (as-of) range scans -------------------------
  //
  // Timestamped scans work on EVERY variant: updates maintain the
  // level-0 bundles inside their publish commits regardless of policy,
  // so a reader that pins a timestamp walks the chain exactly as it
  // was at that instant — no STM transaction, no validation, no
  // retries against concurrent updaters. ShardedMap replays ONE pinned
  // timestamp across all shards, which is what makes stitched scans
  // linearizable on LT/COP/RW (policy::TM keeps its transactional
  // stitch for composability).

  /// One attempt at visiting [low, high] as of `ts`. The caller owns
  /// the pin (bundle::ScanPin) whose announce protocol guarantees the
  /// needed history is retained; returns false on the defensive-restart
  /// path (pruned-past lookup), after which the caller re-pins a fresh
  /// timestamp. `stopped` reports a visitor early exit (scan delivered
  /// a consistent prefix and stopped).
  template <typename F>
  bool try_for_range_asof(std::uint64_t ts, Key low, Key high, F& fn,
                          std::size_t& count, bool& stopped) const {
    const SearchResult sr =
        search_predecessors(head_, params_.max_level, low);
    const Node* x = head_;
    for (int i = 0; i < params_.max_level; ++i) {
      if (asof_start_ok(sr.pa[i], ts)) {
        x = sr.pa[i];
        break;
      }
    }
    while (true) {
      const Node* n = succ_at(x, ts);
      if (n == nullptr) return false;
      if (n == tail_) return true;
      if (n->high_raw() >= low) {
        if (!visit_node(n, low, high, fn, count)) {
          stopped = true;
          return true;
        }
        if (n->high_raw() >= high) return true;
      }
      x = n;
    }
  }

  /// Pin a timestamp and visit [low, high] as of it. Linearizes at the
  /// pin's clock read; the committed visitation is one consistent
  /// snapshot. Same visitor contract as for_range (on_restart fires on
  /// the defensive-restart path).
  template <typename F>
  std::size_t for_range_asof(Key low, Key high, F&& fn) const {
    bundle::ScanPin pin;
    while (true) {
      detail::visit_restart(fn);
      std::size_t count = 0;
      bool stopped = false;
      if (try_for_range_asof(pin.ts(), low, high, fn, count, stopped)) {
        return count;
      }
      pin.refresh();
    }
  }

  /// Longest level-0 bundle on the current chain (tests/debug).
  std::size_t debug_max_bundle() const {
    std::size_t max = 0;
    for (Node* n = head_; n != tail_; n = data_next(n)) {
      max = std::max(max, bundle::length(n->bundle0));
    }
    return max;
  }

  /// Prune every on-chain bundle against the oldest announced scan
  /// timestamp (tests and maintenance sweeps; the insert path prunes
  /// incrementally on its own).
  void bundle_prune_all() {
    util::ebr::Guard guard;
    const std::uint64_t min = bundle::min_active_ts();
    for (Node* n = head_; n != tail_; n = data_next(n)) {
      bundle::prune(n->bundle0, min);
    }
  }

 protected:
  /// True when `x` is a safe as-of walk start: published at or before
  /// `ts`, and still on the chain at `ts` (unmarked now, or marked only
  /// by a commit newer than ts). head_ always qualifies.
  static bool asof_start_ok(const Node* x, std::uint64_t ts) {
    if (x->birth_ts.load(std::memory_order_acquire) > ts) return false;
    std::uint64_t version = 0;
    const std::uint64_t word = x->next(0).snapshot_word(version);
    return !util::is_marked(word) || version > ts;
  }

  /// `x`'s level-0 successor at instant `ts` (x must have been on the
  /// chain at ts). Current link when its last change is <= ts, bundle
  /// lookup otherwise; nullptr means the needed history is gone and the
  /// scan must restart with a fresh timestamp.
  static const Node* succ_at(const Node* x, std::uint64_t ts) {
    std::uint64_t version = 0;
    const std::uint64_t word = x->next(0).snapshot_word(version);
    if (version <= ts) {
      if (util::is_marked(word)) return nullptr;
      return util::to_ptr<Node>(word);
    }
    return static_cast<const Node*>(bundle::find(x->bundle0, ts));
  }
  /// Replacement plan for one update: n1 (always) and n2 (splits only),
  /// plus how many index levels the swing must rewrite.
  struct Replacement {
    Node* n1 = nullptr;
    Node* n2 = nullptr;
    int link_top = 0;
    bool inserted = false;
  };

  /// THE single source of node capacity: every replacement outcome
  /// fits in `node_size` slots — a non-split replacement holds at most
  /// node_size pairs (plan_insert splits instead of overflowing), and
  /// a split distributes node_size + 1 pairs as ceil/floor halves,
  /// each ≤ node_size for node_size ≥ 2. alloc_node and the split
  /// planner both size through here, so flat-block sizing cannot drift
  /// from the planner (the seed re-derived capacity ad hoc in two
  /// places).
  std::uint32_t node_capacity() const {
    return static_cast<std::uint32_t>(params_.node_size);
  }

  Node* alloc_node(int level, Key high) const {
    return make_node(node_capacity(), level, high);
  }

  int random_level() const {
    return util::random_geometric_level(params_.max_level);
  }

  /// Index of `key` in `n`, or -1.
  static int find_in(const Node* n, Key key) {
    const Key* keys = n->keys();
    const std::size_t idx = detail::flat_lower_bound(keys, n->count, key);
    if (idx == n->count || keys[idx] != key) return -1;
    return static_cast<int>(idx);
  }

  /// Visit `n`'s pairs in [low, high] in key order; returns false when
  /// the visitor stopped the scan early. The engine never materializes
  /// a vector here — accumulation is the visitor's business. The
  /// in-range run [first, end) is resolved by two branchless searches,
  /// so the per-pair loop carries no bound compare; a BulkVisitor
  /// ingests the whole run in one call.
  template <typename F>
  static bool visit_node(const Node* n, Key low, Key high, F& fn,
                         std::size_t& count) {
    const Key* keys = n->keys();
    const Value* values = n->values();
    const std::size_t first = detail::flat_lower_bound(keys, n->count, low);
    const std::size_t end =
        n->high_raw() <= high ? n->count
                              : detail::flat_upper_bound(keys, n->count, high);
    if constexpr (detail::BulkVisitor<F>) {
      if (end > first) {
        fn.append_run(keys + first, values + first, end - first);
        count += end - first;
      }
      return true;
    } else {
      for (std::size_t i = first; i < end; ++i) {
        ++count;
        if (!detail::visit_one(fn, keys[i], values[i])) return false;
      }
      return true;
    }
  }

  Replacement plan_insert(Node* n, Key key, Value value) const {
    Replacement plan;
    const Key* skeys = n->keys();
    const Value* svalues = n->values();
    const std::uint32_t count = n->count;
    const std::size_t pos = detail::flat_lower_bound(skeys, count, key);
    if (pos < count && skeys[pos] == key) {
      // Same key: replacement with the value swapped.
      Node* n1 = alloc_node(n->level, n->high);
      std::copy(skeys, skeys + count, n1->keys());
      std::copy(svalues, svalues + count, n1->values());
      n1->values()[pos] = value;
      n1->count = count;
      plan.n1 = n1;
      plan.link_top = n->level;
      return plan;
    }
    // Copy the merged sequence — skeys[0, pos) + {key} + skeys[pos,
    // count) — for merged indexes [from, to) into `dst`.
    const auto copy_merged = [&](Node* dst, std::size_t from,
                                 std::size_t to) {
      Key* dkeys = dst->keys();
      Value* dvalues = dst->values();
      std::size_t out = 0;
      if (from < pos) {
        const std::size_t end = std::min(to, pos);
        std::copy(skeys + from, skeys + end, dkeys);
        std::copy(svalues + from, svalues + end, dvalues);
        out = end - from;
      }
      if (pos >= from && pos < to) {
        dkeys[out] = key;
        dvalues[out] = value;
        ++out;
      }
      const std::size_t tail_from = std::max(from, pos + 1);
      if (tail_from < to) {
        std::copy(skeys + (tail_from - 1), skeys + (to - 1), dkeys + out);
        std::copy(svalues + (tail_from - 1), svalues + (to - 1),
                  dvalues + out);
        out += to - tail_from;
      }
      assert(out == to - from && out <= dst->capacity);
      dst->count = static_cast<std::uint32_t>(out);
    };
    if (count < params_.node_size) {
      Node* n1 = alloc_node(n->level, n->high);
      copy_merged(n1, 0, count + 1);
      plan.n1 = n1;
      plan.link_top = n->level;
      plan.inserted = true;
      return plan;
    }
    // Full node: split into n1 (new left, fresh level) and n2 (right,
    // inheriting n's level and high — and with it the sentinel role).
    const std::size_t total = count + 1;
    const std::size_t left = (total + 1) / 2;
    Node* n1 = alloc_node(random_level(), 0);
    Node* n2 = alloc_node(n->level, n->high);
    copy_merged(n1, 0, left);
    copy_merged(n2, left, total);
    n1->high = n1->keys()[n1->count - 1];
    plan.n1 = n1;
    plan.n2 = n2;
    plan.link_top = std::max(n1->level, n->level);
    plan.inserted = true;
    return plan;
  }

  /// Replacement with `key` removed, or nullptr when absent.
  Node* plan_erase(Node* n, Key key) const {
    const int idx = find_in(n, key);
    if (idx < 0) return nullptr;
    Node* n1 = alloc_node(n->level, n->high);
    const auto pos = static_cast<std::size_t>(idx);
    const Key* skeys = n->keys();
    const Value* svalues = n->values();
    std::copy(skeys, skeys + pos, n1->keys());
    std::copy(skeys + pos + 1, skeys + n->count, n1->keys() + pos);
    std::copy(svalues, svalues + pos, n1->values());
    std::copy(svalues + pos + 1, svalues + n->count, n1->values() + pos);
    n1->count = n->count - 1;
    return n1;
  }

  static void discard(Replacement& plan) {
    destroy_node(plan.n1);
    destroy_node(plan.n2);
    plan.n1 = plan.n2 = nullptr;
  }

  /// Fresh-node next word: initialize the memory now — a raw traversal
  /// crossing the node mid-publish must see a valid pointer — AND
  /// enlist the word in the write set so it publishes carrying the
  /// commit version. A fresh field left at version 0 would let a
  /// read-only transaction whose snapshot predates this commit read
  /// post-commit state undetected (TL2 opacity hole: the version check
  /// `0 <= rv_` always passes).
  static void publish_word(stm::Tx& tx, stm::TxField<std::uint64_t>& field,
                           std::uint64_t word) {
    field.init(word);
    field.tx_write(tx, word);
  }

  /// Transactional pointer swing: initializes the replacement nodes'
  /// next words from in-transaction reads of the victim's, relinks the
  /// predecessors, and marks the victim. The victim's content must be
  /// protected by locks (LT), validation in the same transaction (COP),
  /// or an instrumented search (TM).
  static void apply_swap(stm::Tx& tx, const SearchResult& sr, Node* n,
                         const Replacement& plan) {
    Node* n1 = plan.n1;
    Node* n2 = plan.n2;
    if (n2 != nullptr) {
      for (int i = 0; i < n2->level; ++i) {
        publish_word(tx, n2->next(i), n->next(i).tx_read(tx));
      }
      for (int i = 0; i < n1->level; ++i) {
        publish_word(tx, n1->next(i),
                     i < n2->level ? util::to_word(n2)
                                   : util::to_word(sr.na[i]));
      }
    } else {
      for (int i = 0; i < n1->level; ++i) {
        publish_word(tx, n1->next(i), n->next(i).tx_read(tx));
      }
    }
    for (int i = 0; i < plan.link_top; ++i) {
      Node* target = i < n1->level ? n1 : n2;
      sr.pa[i]->next(i).tx_write(tx, util::to_word(target));
    }
    for (int i = 0; i < n->level; ++i) {
      n->next(i).tx_write(tx, util::with_mark(n->next(i).tx_read(tx)));
    }
    // Bundle publication: runs in the TL2 publish window (values
    // stored, versioned locks still held), so the entries carry the
    // commit timestamp and are visible before any seqlock reader can
    // observe that version on the links. Targets are read back from
    // the stored words rather than captured — a composed transaction
    // may rewire the same link again at the same timestamp, and only
    // the final state exists at wv (bundle::insert overwrites the
    // equal-ts head entry).
    Node* pred = sr.pa[0];
    tx.defer_on_publish([pred, n1, n2](std::uint64_t wv) {
      const auto stored = [](const Node* node) {
        return util::to_ptr<Node>(
            util::without_mark(node->next(0).load_word()));
      };
      n1->birth_ts.store(wv, std::memory_order_relaxed);
      bundle::insert(n1->bundle0, wv, stored(n1));
      if (n2 != nullptr) {
        n2->birth_ts.store(wv, std::memory_order_relaxed);
        bundle::insert(n2->bundle0, wv, stored(n2));
      }
      bundle::insert(pred->bundle0, wv, stored(pred));
      bundle::maybe_prune(pred->bundle0);
    });
  }

  /// In-transaction validation that the searched window is unchanged:
  /// every predecessor still points at the node the search saw (a
  /// retired predecessor fails this automatically — its word is
  /// marked), and the victim is still the cover node at every level it
  /// occupies.
  static bool validate_tx(stm::Tx& tx, const SearchResult& sr, Node* n,
                          int top) {
    for (int i = 0; i < top; ++i) {
      if (i < n->level && sr.na[i] != n) return false;
      if (sr.pa[i]->next(i).tx_read(tx) != util::to_word(sr.na[i])) {
        return false;
      }
    }
    return true;
  }

  // --- Composable (in-transaction) operation core --------------------
  //
  // The txn_* methods enlist one list operation in a caller-owned open
  // transaction: structural writes buffer in the caller's write set,
  // the victim retires through a deferred commit action, and the
  // speculative replacement nodes are freed by a deferred abort action,
  // so any number of operations over any number of lists commit (or
  // vanish) as one unit. Callers must hold an ebr::Guard for the whole
  // transaction — leap::txn does.
  //
  // kHybrid search safety: the raw traversal runs after the attempt's
  // begin(), so every word it observed either still carries a version
  // <= rv_ at commit (commit_locked rejects written fields newer than
  // rv_, and tx_read rejects read fields newer than rv_) or the
  // attempt aborts — a concurrently reshaped window can never publish.
  // The one thing the raw traversal cannot see is this transaction's
  // OWN buffered writes; window_self_dirty detects that overlap and
  // routes the operation to the instrumented search, which reads its
  // own writes.

  /// How a composable operation locates its window: kHybrid pays a raw
  /// COP-style search when possible; kInstrumented always pays the
  /// fully instrumented search (the paper's Leap-tm discipline).
  enum class TxSearch { kHybrid, kInstrumented };

  /// True when the open transaction already buffered a write to any
  /// word this update's swap would read or overwrite.
  bool window_self_dirty(const stm::Tx& tx, const SearchResult& sr,
                         Node* n) const {
    for (int i = 0; i < n->level; ++i) {
      if (tx.has_write(n->next(i))) return true;
    }
    for (int i = 0; i < params_.max_level; ++i) {
      if (tx.has_write(sr.pa[i]->next(i))) return true;
    }
    return false;
  }

  /// Tie a planned replacement to the transaction outcome. Must run
  /// before apply_swap so an abort inside the swap still reclaims the
  /// plan nodes (nothing has seen them).
  static void enlist_swap(stm::Tx& tx, Node* victim,
                          const Replacement& plan) {
    Node* n1 = plan.n1;
    Node* n2 = plan.n2;
    tx.defer_on_abort([n1, n2] {
      destroy_node(n1);
      destroy_node(n2);
    });
    tx.defer_on_commit([victim] {
      victim->live.store(false, std::memory_order_release);
      util::ebr::retire(victim, &recycle_node);
    });
  }

  bool txn_insert(stm::Tx& tx, Key key, Value value, TxSearch mode) {
    assert_user_key(key);
    assert(tx.in_tx());
    SearchResult sr;
    Node* n = nullptr;
    if (mode == TxSearch::kHybrid) {
      sr = search_predecessors(head_, params_.max_level, key);
      if (!window_self_dirty(tx, sr, sr.na[0])) n = sr.na[0];
    }
    if (n == nullptr) {
      sr = search_predecessors_tx(tx, head_, params_.max_level, key);
      n = sr.na[0];
    }
    const Replacement plan = plan_insert(n, key, value);
    enlist_swap(tx, n, plan);
    apply_swap(tx, sr, n, plan);
    return plan.inserted;
  }

  bool txn_erase(stm::Tx& tx, Key key, TxSearch mode) {
    assert(tx.in_tx());
    SearchResult sr;
    Node* n = nullptr;
    bool hybrid = false;
    if (mode == TxSearch::kHybrid) {
      sr = search_predecessors(head_, params_.max_level, key);
      if (!window_self_dirty(tx, sr, sr.na[0])) {
        n = sr.na[0];
        hybrid = true;
      }
    }
    if (n == nullptr) {
      sr = search_predecessors_tx(tx, head_, params_.max_level, key);
      n = sr.na[0];
    }
    Node* n1 = plan_erase(n, key);
    if (n1 == nullptr) {
      // Absent. Pin the cover node's identity so the absence is part of
      // the read set (the instrumented search did this implicitly).
      if (hybrid) (void)sr.pa[0]->next(0).tx_read(tx);
      return false;
    }
    Replacement plan;
    plan.n1 = n1;
    plan.link_top = n->level;
    enlist_swap(tx, n, plan);
    apply_swap(tx, sr, n, plan);
    return true;
  }

  std::optional<Value> txn_get(stm::Tx& tx, Key key, TxSearch mode) const {
    assert(tx.in_tx());
    if (mode == TxSearch::kHybrid) {
      const SearchResult sr =
          search_predecessors(head_, params_.max_level, key);
      // Replacing the cover node rewrites its (unique) bottom-level
      // predecessor word, so one clean hop pins the node's identity and
      // immutable content makes the read valid.
      if (!tx.has_write(sr.pa[0]->next(0))) {
        (void)sr.pa[0]->next(0).tx_read(tx);
        const Node* n = sr.na[0];
        const int idx = find_in(n, key);
        if (idx < 0) return std::nullopt;
        return n->values()[idx];
      }
    }
    const SearchResult sr =
        search_predecessors_tx(tx, head_, params_.max_level, key);
    const Node* n = sr.na[0];
    const int idx = find_in(n, key);
    if (idx < 0) return std::nullopt;
    return n->values()[idx];
  }

  /// Visitor-driven in-transaction range scan. The visitor runs during
  /// the (speculative) walk so it can stop the scan early; a hybrid
  /// walk that trips over this transaction's own buffered writes is
  /// rolled back via visit_restart and redone instrumented. Returns the
  /// number of pairs visited.
  template <typename F>
  std::size_t txn_for_range(stm::Tx& tx, Key low, Key high, F&& fn,
                            TxSearch mode) const {
    assert(tx.in_tx());
    std::size_t count = 0;
    if (mode == TxSearch::kHybrid) {
      detail::visit_restart(fn);
      const SearchResult sr =
          search_predecessors(head_, params_.max_level, low);
      Node* x = sr.pa[0];
      bool self_dirty = false;
      while (true) {
        if (tx.has_write(x->next(0))) {
          // The chain ahead was reshaped by this transaction; only the
          // instrumented walk sees the buffered pointers.
          self_dirty = true;
          break;
        }
        const std::uint64_t word = x->next(0).tx_read(tx);
        if (util::is_marked(word)) {
          // Unreachable by construction (a pre-begin mark implies the
          // hop word was re-pointed; a post-begin mark aborts the
          // tx_read above) — abort defensively rather than hop on it.
          tx.abort();
        }
        Node* n = util::to_ptr<Node>(word);
        if (!visit_node(n, low, high, fn, count)) return count;
        if (n->high_raw() >= high) return count;
        x = n;
      }
      assert(self_dirty);
      (void)self_dirty;
    }
    detail::visit_restart(fn);
    count = 0;
    const SearchResult sr =
        search_predecessors_tx(tx, head_, params_.max_level, low);
    Node* n = sr.na[0];
    while (true) {
      if (!visit_node(n, low, high, fn, count)) break;
      if (n->high_raw() >= high) break;
      const std::uint64_t word = n->next(0).tx_read(tx);
      if (util::is_marked(word)) tx.abort();
      n = util::to_ptr<Node>(word);
    }
    return count;
  }

  Node* data_next(const Node* n, int level = 0) const {
    return util::to_ptr<Node>(util::without_mark(n->next(level).load_word()));
  }

  Params params_;
  Node* head_;
  Node* tail_;
};

/// Leap-LT (paper §2.1, the winning variant): raw searches; updates
/// lock the unique predecessor set plus the victim (address-ordered),
/// validate, and publish with a short transaction.
class LeapListLT : public LeapListBase {
 public:
  using LeapListBase::LeapListBase;

  bool insert(Key key, Value value) {
    assert_user_key(key);
    require_no_open_tx("LeapListLT update");
    util::ebr::Guard guard;
    while (true) {
      const SearchResult sr =
          search_predecessors(head_, params_.max_level, key);
      Node* n = sr.na[0];
      Replacement plan = plan_insert(n, key, value);
      if (publish_locked(sr, n, plan)) return plan.inserted;
      discard(plan);
    }
  }

  bool erase(Key key) {
    require_no_open_tx("LeapListLT update");
    util::ebr::Guard guard;
    while (true) {
      const SearchResult sr =
          search_predecessors(head_, params_.max_level, key);
      Node* n = sr.na[0];
      Node* n1 = plan_erase(n, key);
      if (n1 == nullptr) return false;
      Replacement plan;
      plan.n1 = n1;
      plan.link_top = n->level;
      if (publish_locked(sr, n, plan)) return true;
      discard(plan);
    }
  }

  /// Transaction-free lookup: the raw search only accepts live,
  /// unmarked hops, and node content is immutable.
  std::optional<Value> get(Key key) const {
    util::ebr::Guard guard;
    const SearchResult sr =
        search_predecessors(head_, params_.max_level, key);
    const Node* n = sr.na[0];
    const int idx = find_in(n, key);
    if (idx < 0) return std::nullopt;
    return n->values()[idx];
  }

  /// Linearizable range visitation via bundled references: pin a
  /// timestamp, walk each node as of it. No transaction, no commit
  /// validation, and no retries against concurrent updaters — the scan
  /// linearizes at the pin's clock read, and immutable node content
  /// plus the link history makes the visitation one consistent
  /// snapshot. The visitor may stop the scan early (return false); the
  /// visited prefix is itself a snapshot at the pinned instant.
  template <typename F>
  std::size_t for_range(Key low, Key high, F&& fn) const {
    return for_range_asof(low, high, fn);
  }

  /// Legacy bulk form: REPLACES `out` (clears, then collects). New code
  /// should prefer for_range with leap::append_to for explicit append.
  std::size_t range_query(Key low, Key high, std::vector<KV>& out) const {
    out.clear();
    return for_range(low, high, detail::Appender(out));
  }

 private:
  bool publish_locked(const SearchResult& sr, Node* n,
                      const Replacement& plan) {
    // Stripe set for the victim + predecessors, deduplicated and taken
    // in ascending index order (the stripe table's global lock order).
    std::array<std::size_t, kMaxHeight + 1> stripes;
    int count = 0;
    stripes[count++] = detail::lock_stripe(n);
    for (int i = 0; i < plan.link_top; ++i) {
      stripes[count++] = detail::lock_stripe(sr.pa[i]);
    }
    std::sort(stripes.begin(), stripes.begin() + count);
    count = static_cast<int>(
        std::unique(stripes.begin(), stripes.begin() + count) -
        stripes.begin());
    for (int i = 0; i < count; ++i) detail::stripe_lock(stripes[i]).lock();
    bool valid = n->live.load(std::memory_order_acquire);
    for (int i = 0; valid && i < plan.link_top; ++i) {
      if (i < n->level && sr.na[i] != n) valid = false;
      if (valid &&
          sr.pa[i]->next(i).load_word() != util::to_word(sr.na[i])) {
        valid = false;
      }
    }
    if (valid) {
      stm::Tx& tx = stm::tls_tx();
      stm::atomically(tx, [&](stm::Tx& t) { apply_swap(t, sr, n, plan); });
      n->live.store(false, std::memory_order_release);
    }
    for (int i = count - 1; i >= 0; --i) {
      detail::stripe_lock(stripes[i]).unlock();
    }
    if (valid) util::ebr::retire(n, &recycle_node);
    return valid;
  }
};

/// Leap-COP (paper §2.2): consistency-oblivious — traverse raw, then
/// validate the observed window and swing the pointers inside a single
/// commit transaction; on validation failure, redo the traversal.
class LeapListCOP : public LeapListBase {
 public:
  using LeapListBase::LeapListBase;

  bool insert(Key key, Value value) {
    assert_user_key(key);
    require_no_open_tx("LeapListCOP update");
    util::ebr::Guard guard;
    stm::Tx& tx = stm::tls_tx();
    while (true) {
      const SearchResult sr =
          search_predecessors(head_, params_.max_level, key);
      Node* n = sr.na[0];
      Replacement plan = plan_insert(n, key, value);
      bool valid = false;
      stm::atomically(tx, [&](stm::Tx& t) {
        valid = validate_tx(t, sr, n, plan.link_top);
        if (valid) apply_swap(t, sr, n, plan);
      });
      if (valid) {
        n->live.store(false, std::memory_order_release);
        util::ebr::retire(n, &recycle_node);
        return plan.inserted;
      }
      discard(plan);
    }
  }

  bool erase(Key key) {
    require_no_open_tx("LeapListCOP update");
    util::ebr::Guard guard;
    stm::Tx& tx = stm::tls_tx();
    while (true) {
      const SearchResult sr =
          search_predecessors(head_, params_.max_level, key);
      Node* n = sr.na[0];
      Node* n1 = plan_erase(n, key);
      if (n1 == nullptr) return false;
      Replacement plan;
      plan.n1 = n1;
      plan.link_top = n->level;
      bool valid = false;
      stm::atomically(tx, [&](stm::Tx& t) {
        valid = validate_tx(t, sr, n, plan.link_top);
        if (valid) apply_swap(t, sr, n, plan);
      });
      if (valid) {
        n->live.store(false, std::memory_order_release);
        util::ebr::retire(n, &recycle_node);
        return true;
      }
      discard(plan);
    }
  }

  std::optional<Value> get(Key key) const {
    util::ebr::Guard guard;
    stm::Tx& tx = stm::tls_tx();
    while (true) {
      const SearchResult sr =
          search_predecessors(head_, params_.max_level, key);
      Node* n = sr.na[0];
      bool valid = false;
      std::optional<Value> result;
      stm::atomically(tx, [&](stm::Tx& t) {
        result.reset();
        valid = sr.pa[0]->next(0).tx_read(t) == util::to_word(n);
        if (!valid) return;
        const int idx = find_in(n, key);
        if (idx >= 0) result = n->values()[idx];
      });
      if (valid) return result;
    }
  }

  /// Range visitation via bundled references (see LeapListLT::for_range
  /// — the as-of walk is policy-independent): pin a timestamp, walk as
  /// of it. COP's historical validate-at-commit scan is subsumed; the
  /// consistency-oblivious discipline lives on in the update paths.
  template <typename F>
  std::size_t for_range(Key low, Key high, F&& fn) const {
    return for_range_asof(low, high, fn);
  }

  /// Legacy bulk form: REPLACES `out` (clears, then collects).
  std::size_t range_query(Key low, Key high, std::vector<KV>& out) const {
    out.clear();
    return for_range(low, high, detail::Appender(out));
  }
};

/// Leap-tm (paper §2.3): every operation, traversal included, runs as
/// one fully instrumented transaction. The only variant with a
/// composable surface: the `*_in` forms enlist in a caller-owned open
/// transaction (leap::txn), so one transaction can move keys between
/// lists, update several lists, and take multi-list range snapshots as
/// one atomic unit. Composable forms use the hybrid search (raw
/// COP-style traversal validated against the transaction's write set);
/// single-op forms keep the paper's fully instrumented discipline and
/// flat-nest into an enclosing leap::txn when called from one.
class LeapListTM : public LeapListBase {
 public:
  using LeapListBase::LeapListBase;

  // Composable forms — require an open transaction.
  bool insert_in(stm::Tx& tx, Key key, Value value) {
    return txn_insert(tx, key, value, TxSearch::kHybrid);
  }

  bool erase_in(stm::Tx& tx, Key key) {
    return txn_erase(tx, key, TxSearch::kHybrid);
  }

  std::optional<Value> get_in(stm::Tx& tx, Key key) const {
    return txn_get(tx, key, TxSearch::kHybrid);
  }

  /// Composable range visitation: enlists in the caller's open
  /// transaction. Like the enclosing leap::txn closure, the visitor may
  /// be re-invoked (after visit_restart) when the attempt conflicts or
  /// the hybrid walk falls back to the instrumented search.
  template <typename F>
  std::size_t for_range_in(stm::Tx& tx, Key low, Key high, F&& fn) const {
    return txn_for_range(tx, low, high, fn, TxSearch::kHybrid);
  }

  /// Legacy bulk form: REPLACES `out` (clears, then collects).
  std::size_t range_in(stm::Tx& tx, Key low, Key high,
                       std::vector<KV>& out) const {
    out.clear();
    return txn_for_range(tx, low, high, detail::Appender(out),
                         TxSearch::kHybrid);
  }

  // Single-op forms — one transaction per call.
  bool insert(Key key, Value value) {
    return leap::txn([&](stm::Tx& tx) {
      return txn_insert(tx, key, value, TxSearch::kInstrumented);
    });
  }

  bool erase(Key key) {
    return leap::txn([&](stm::Tx& tx) {
      return txn_erase(tx, key, TxSearch::kInstrumented);
    });
  }

  std::optional<Value> get(Key key) const {
    return leap::txn([&](stm::Tx& tx) {
      return txn_get(tx, key, TxSearch::kInstrumented);
    });
  }

  template <typename F>
  std::size_t for_range(Key low, Key high, F&& fn) const {
    return leap::txn([&](stm::Tx& tx) {
      return txn_for_range(tx, low, high, fn, TxSearch::kInstrumented);
    });
  }

  /// Legacy bulk form: REPLACES `out` (clears, then collects).
  std::size_t range_query(Key low, Key high, std::vector<KV>& out) const {
    out.clear();
    return for_range(low, high, detail::Appender(out));
  }
};

/// Global reader-writer-lock baseline (paper's "rwlock" series).
/// Updates serialize on an exclusive lock; point lookups take it
/// shared. Publication is copy-node-and-swap through the same
/// timestamped commit as every other variant (the exclusive lock makes
/// the transaction conflict-free, so it commits first try), which is
/// what lets range scans run as lock-free bundled-reference walks —
/// readers never touch the rwlock, and a stitched multi-shard scan at
/// one timestamp is linearizable even against writers holding other
/// shards' locks. The price of the bundle contract: in-place node
/// edits are gone (content is immutable once published) and victims
/// retire through EBR instead of being freed inline.
class LeapListRW : public LeapListBase {
 public:
  using LeapListBase::LeapListBase;

  bool insert(Key key, Value value) {
    assert_user_key(key);
    require_no_open_tx("LeapListRW update");
    util::ebr::Guard guard;
    std::unique_lock<std::shared_mutex> lk(mu_);
    const SearchResult sr = search_predecessors(head_, params_.max_level, key);
    Node* n = sr.na[0];
    const Replacement plan = plan_insert(n, key, value);
    publish_exclusive(sr, n, plan);
    return plan.inserted;
  }

  bool erase(Key key) {
    require_no_open_tx("LeapListRW update");
    util::ebr::Guard guard;
    std::unique_lock<std::shared_mutex> lk(mu_);
    const SearchResult sr = search_predecessors(head_, params_.max_level, key);
    Node* n = sr.na[0];
    Node* n1 = plan_erase(n, key);
    if (n1 == nullptr) return false;
    Replacement plan;
    plan.n1 = n1;
    plan.link_top = n->level;
    publish_exclusive(sr, n, plan);
    return true;
  }

  std::optional<Value> get(Key key) const {
    std::shared_lock<std::shared_mutex> lk(mu_);
    const SearchResult sr = search_predecessors(head_, params_.max_level, key);
    const Node* n = sr.na[0];
    const int idx = find_in(n, key);
    if (idx < 0) return std::nullopt;
    return n->values()[idx];
  }

  /// Range visitation via bundled references: lock-free for readers —
  /// the scan pins a timestamp and never takes the rwlock at all.
  template <typename F>
  std::size_t for_range(Key low, Key high, F&& fn) const {
    return for_range_asof(low, high, fn);
  }

  /// Legacy bulk form: REPLACES `out` (clears, then collects).
  std::size_t range_query(Key low, Key high, std::vector<KV>& out) const {
    out.clear();
    return for_range(low, high, detail::Appender(out));
  }

 private:
  /// Timestamped publish under the exclusive lock: no other writer can
  /// exist, so validation is unnecessary and the commit succeeds
  /// without conflicts — but it still stamps the links and bundles
  /// with a commit version, which the lock-free scans rely on.
  void publish_exclusive(const SearchResult& sr, Node* n,
                         const Replacement& plan) {
    stm::Tx& tx = stm::tls_tx();
    stm::atomically(tx, [&](stm::Tx& t) { apply_swap(t, sr, n, plan); });
    n->live.store(false, std::memory_order_release);
    util::ebr::retire(n, &recycle_node);
  }

  mutable std::shared_mutex mu_;
};

}  // namespace leap::core
