// leap::txn — one STM transaction spanning any number of leap lists
// (the paper's headline API: TM support makes range queries and updates
// over several lists composable into a single atomic unit).
//
//   leap::txn([&](leap::stm::Tx& tx) {
//     const auto value = orders.get_in(tx, key);
//     if (value) {
//       orders.erase_in(tx, key);
//       archive.insert_in(tx, key, *value);
//     }
//   });
//
// The closure runs under the optimistic-retry/irrevocable-fallback
// policy of stm::atomically and must therefore be idempotent up to its
// `*_in` calls: it may re-run after a conflict, and nothing it did
// through the composable API is visible until the one commit at the
// end. An EBR guard is held for the whole transaction so composable ops
// may traverse unlocked and defer victim retirement to commit.
//
// Nesting: txn inside txn (or a single-op leap-list call inside txn)
// flat-nests into the enclosing transaction. Only LeapListTM exposes
// composable/nestable operations; LT and COP updates assert out of an
// open transaction because their publish path acts on commit success
// immediately.
#pragma once

#include <optional>
#include <type_traits>
#include <utility>

#include "stm/stm.hpp"
#include "util/ebr.hpp"

namespace leap {

/// Run `fn` (callable as fn(stm::Tx&)) as one atomic transaction and
/// return the result of its committed run.
template <typename Fn>
auto txn(Fn&& fn) {
  using Result = std::invoke_result_t<Fn&, stm::Tx&>;
  util::ebr::Guard guard;
  stm::Tx& tx = stm::tls_tx();
  if constexpr (std::is_void_v<Result>) {
    stm::atomically(tx, fn);
  } else {
    std::optional<Result> result;
    stm::atomically(tx, [&](stm::Tx& t) { result.emplace(fn(t)); });
    return std::move(*result);
  }
}

}  // namespace leap
