// Codec traits for leap::Map (leaplist/map.hpp): order-preserving
// mappings between user key types and the engine's core::Key word, and
// bit-exact mappings between user value types and core::Value.
//
// A key codec must be an order-preserving bijection onto the engine's
// legal key window (core::Key strictly between the head sentinel,
// INT64_MIN, and the tail sentinel, INT64_MAX): k1 < k2 iff
// encode(k1) < encode(k2), and decode(encode(k)) == k. Value codecs
// carry no ordering obligation — any trivially copyable type up to one
// word round-trips by bit copy. Both are pure compile-time traits, so
// the typed facade compiles down to the raw word engine with zero
// runtime overhead.
//
// User-supplied codecs plug in through the KeyCodecFor / ValueCodecFor
// concepts; Default<K> picks the built-in for integral and packed-pair
// keys.
#pragma once

#include <cassert>
#include <concepts>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <type_traits>

#include "leaplist/leaplist.hpp"

namespace leap::codec {

/// Always-on window check (NOT an assert: a key encoding onto a
/// sentinel word silently corrupts node ordering, so Release builds
/// must fail just as loudly). Only the two extreme representable
/// values of a 64-bit key type can trip it.
inline void require_in_window(core::Key word, const char* codec) {
  if (word == std::numeric_limits<core::Key>::min() ||
      word == core::kSentinelKey) {
    std::fprintf(stderr,
                 "leap::codec: %s key encodes onto an engine sentinel "
                 "word (the two extreme 64-bit values are reserved)\n",
                 codec);
    std::abort();
  }
}

/// An order-preserving key codec for K: encode into the engine's word
/// order, decode back exactly.
template <typename C, typename K>
concept KeyCodecFor = requires(const K& key, core::Key word) {
  { C::encode(key) } -> std::same_as<core::Key>;
  { C::decode(word) } -> std::same_as<K>;
};

/// A value codec for V: any bijection onto core::Value words.
template <typename C, typename V>
concept ValueCodecFor = requires(const V& value, core::Value word) {
  { C::encode(value) } -> std::same_as<core::Value>;
  { C::decode(word) } -> std::same_as<V>;
};

/// Signed integral keys: a value-preserving widen (so the encoded word
/// reads naturally in debuggers). For 64-bit K the engine's sentinel
/// window excludes INT64_MIN and INT64_MAX; narrower types always fit.
template <std::signed_integral K>
struct SignedKey {
  static core::Key encode(K key) {
    const auto word = static_cast<core::Key>(key);
    if constexpr (sizeof(K) == sizeof(core::Key)) {
      require_in_window(word, "SignedKey<int64>");
    }
    return word;
  }
  static K decode(core::Key word) { return static_cast<K>(word); }
};

/// Unsigned integral keys. Narrow types widen in place (non-negative,
/// order trivially preserved). uint64_t wrap-adds a bias of 2^63 + 1 so
/// 0 lands just above the head sentinel and order is preserved across
/// the signed midpoint; the top two values (2^64 - 2 and 2^64 - 1)
/// would land on the sentinels and are rejected loudly.
template <std::unsigned_integral K>
struct UnsignedKey {
  static core::Key encode(K key) {
    if constexpr (sizeof(K) == sizeof(core::Key)) {
      const auto word =
          static_cast<core::Key>(static_cast<std::uint64_t>(key) + kBias);
      require_in_window(word, "UnsignedKey<uint64>");
      return word;
    } else {
      return static_cast<core::Key>(key);
    }
  }
  static K decode(core::Key word) {
    if constexpr (sizeof(K) == sizeof(core::Key)) {
      return static_cast<K>(static_cast<std::uint64_t>(word) - kBias);
    } else {
      return static_cast<K>(word);
    }
  }

 private:
  static constexpr std::uint64_t kBias = (std::uint64_t{1} << 63) + 1;
};

/// A two-component key ordered by (hi, lo) and packed into one word
/// with `lo` in the low kLoBits — the LeapTable secondary-index shape,
/// where duplicate column values stay distinct by row id.
template <std::signed_integral Hi, std::unsigned_integral Lo, int kLoBits>
struct PackedPair {
  static_assert(kLoBits > 0 && kLoBits < 62);
  Hi hi{};
  Lo lo{};
  friend constexpr auto operator<=>(const PackedPair&,
                                    const PackedPair&) = default;
};

template <std::signed_integral Hi, std::unsigned_integral Lo, int kLoBits>
struct PackedPairKey {
  using pair_type = PackedPair<Hi, Lo, kLoBits>;

  /// lo must fit kLoBits; hi must fit the remaining signed bits with a
  /// sentinel-safety margin (|hi| < 2^(62 - kLoBits)), so the packed
  /// word is hi * 2^kLoBits + lo — monotone in (hi, lo).
  static core::Key encode(const pair_type& pair) {
    assert(static_cast<std::uint64_t>(pair.lo) <
           (std::uint64_t{1} << kLoBits));
    assert(static_cast<core::Key>(pair.hi) >=
               -(core::Key{1} << (62 - kLoBits)) &&
           static_cast<core::Key>(pair.hi) <
               (core::Key{1} << (62 - kLoBits)));
    return (static_cast<core::Key>(pair.hi) << kLoBits) |
           static_cast<core::Key>(pair.lo);
  }
  static pair_type decode(core::Key word) {
    return pair_type{
        static_cast<Hi>(word >> kLoBits),
        static_cast<Lo>(word & ((core::Key{1} << kLoBits) - 1))};
  }
};

/// Default value codec: bit copy of any trivially copyable type that
/// fits one word (integrals, floats, pointers, small PODs).
template <typename V>
  requires(std::is_trivially_copyable_v<V> &&
           sizeof(V) <= sizeof(core::Value))
struct BitcastValue {
  static core::Value encode(const V& value) {
    core::Value word = 0;
    std::memcpy(&word, &value, sizeof(V));
    return word;
  }
  static V decode(core::Value word) {
    V value;
    std::memcpy(&value, &word, sizeof(V));
    return value;
  }
};

/// Built-in key codec selection; specialize (or pass a codec type to
/// leap::Map explicitly) for user-defined key types.
template <typename K>
struct Default;

template <std::signed_integral K>
struct Default<K> : SignedKey<K> {};

template <std::unsigned_integral K>
struct Default<K> : UnsignedKey<K> {};

template <std::signed_integral Hi, std::unsigned_integral Lo, int kLoBits>
struct Default<PackedPair<Hi, Lo, kLoBits>>
    : PackedPairKey<Hi, Lo, kLoBits> {};

}  // namespace leap::codec
