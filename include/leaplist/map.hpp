// leap::Map<K, V, Policy> — the typed ordered-map facade over the leap
// list word engine. Keys and values are trivially copyable user types
// mapped through codec traits (leaplist/codec.hpp) with zero runtime
// overhead; the Policy parameter picks the synchronization scheme
// behind one uniform interface:
//
//   policy::LT    raw searches + locked publish (the paper's winner)
//   policy::COP   consistency-oblivious traversal + validating commit
//   policy::TM    fully transactional; the only composable policy —
//                 the `*_in` forms enlist in a caller-owned leap::txn
//   policy::RW    global reader-writer-lock baseline
//   (policy::SkipCAS / policy::SkipTM in leaplist/skiplist.hpp drive
//   the single-pair-per-node baselines through the same facade.)
//
// Range queries are visitation, not bulk copies:
//
//   leap::Map<std::uint32_t, Order> book(params);
//   book.for_range(low, high, leap::append_to(hits));  // accumulate
//   book.scan(low, 32, out);       // bounded, APPENDS to out
//   book.for_range(low, high, [&](std::uint32_t id, const Order& o) {
//     if (o.qty < 1000) return true;
//     first_big = id;              // overwrite, not accumulate
//     return false;                // early exit
//   });
//   for (const auto& [id, o] : book.snapshot(low, high)) ...  // Cursor
//
// Visitor contract: optimistic policies may re-visit from `low` after a
// conflicting attempt, so a visitor that ACCUMULATES must expose
// `on_restart()` to roll its state back — leap::append_to does;
// overwrite-style or stateless visitors (like the early-exit probe
// above) need nothing. The committed visitation is always one
// consistent snapshot for the leap-list policies.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "leaplist/codec.hpp"
#include "leaplist/leaplist.hpp"
#include "leaplist/txn.hpp"
#include "stm/stm.hpp"

namespace leap {

namespace policy {
struct LT {
  using engine = core::LeapListLT;
  static constexpr bool kComposable = false;
};
struct COP {
  using engine = core::LeapListCOP;
  static constexpr bool kComposable = false;
};
struct TM {
  using engine = core::LeapListTM;
  static constexpr bool kComposable = true;
};
struct RW {
  using engine = core::LeapListRW;
  static constexpr bool kComposable = false;
};
}  // namespace policy

template <typename P>
concept MapPolicy = requires {
  typename P::engine;
  { P::kComposable } -> std::convertible_to<bool>;
};

/// Appending collector: pairs append to `out` (which is never cleared);
/// an attempt restart truncates back to the size at construction, so
/// stacking several ranges into one buffer — even inside one
/// transaction — composes correctly. Construct it at the point of use
/// (inside the txn closure for composable scans) so the truncation base
/// is per-attempt.
template <typename Vec>
auto append_to(Vec& out) {
  return core::detail::Appender<Vec>(out);
}

/// A materialized range snapshot: captured through one range
/// visitation (with whatever consistency the capturing map's policy
/// provides), then iterated with no further synchronization — safe to
/// hold across later updates. Map and ShardedMap alias this as their
/// Cursor type.
template <typename K, typename V>
class SnapshotCursor {
 public:
  using value_type = std::pair<K, V>;

  SnapshotCursor() = default;
  explicit SnapshotCursor(std::vector<value_type> items)
      : items_(std::move(items)) {}

  bool valid() const { return pos_ < items_.size(); }
  const K& key() const { return items_[pos_].first; }
  const V& value() const { return items_[pos_].second; }
  void next() { ++pos_; }
  void rewind() { pos_ = 0; }
  std::size_t size() const { return items_.size(); }
  auto begin() const { return items_.begin(); }
  auto end() const { return items_.end(); }

 private:
  std::vector<value_type> items_;
  std::size_t pos_ = 0;
};

/// The uniform ordered-map shape the harness and db layers program
/// against: typed point ops, visitor ranges, bounded scans, bulk
/// preload. leap::Map models it for every policy; so does anything
/// else offering the same surface.
template <typename M>
concept OrderedMap =
    requires(M map, const M cmap, const typename M::key_type& key,
             const typename M::mapped_type& value,
             std::vector<typename M::value_type>& out) {
      typename M::key_type;
      typename M::mapped_type;
      typename M::value_type;
      { map.insert(key, value) } -> std::same_as<bool>;
      { map.erase(key) } -> std::same_as<bool>;
      {
        cmap.get(key)
      } -> std::same_as<std::optional<typename M::mapped_type>>;
      {
        cmap.for_range(key, key,
                       [](const typename M::key_type&,
                          const typename M::mapped_type&) {})
      } -> std::convertible_to<std::size_t>;
      {
        cmap.scan(key, std::size_t{1}, out)
      } -> std::convertible_to<std::size_t>;
      map.bulk_load(std::vector<typename M::value_type>{});
    };

template <typename K, typename V, MapPolicy Policy = policy::LT,
          typename KeyCodec = codec::Default<K>,
          typename ValueCodec = codec::BitcastValue<V>>
  requires codec::KeyCodecFor<KeyCodec, K> &&
           codec::ValueCodecFor<ValueCodec, V>
class Map {
 public:
  using key_type = K;
  using mapped_type = V;
  using value_type = std::pair<K, V>;
  using policy_type = Policy;
  using engine_type = typename Policy::engine;
  using key_codec = KeyCodec;
  using value_codec = ValueCodec;

  explicit Map(const core::Params& params = {}) : engine_(params) {}

  // --- Point operations ----------------------------------------------

  /// True when `key` was absent (insert); false overwrites in place.
  bool insert(const K& key, const V& value) {
    return engine_.insert(KeyCodec::encode(key), ValueCodec::encode(value));
  }

  bool erase(const K& key) { return engine_.erase(KeyCodec::encode(key)); }

  std::optional<V> get(const K& key) const {
    const auto word = engine_.get(KeyCodec::encode(key));
    if (!word) return std::nullopt;
    return ValueCodec::decode(*word);
  }

  bool contains(const K& key) const {
    return engine_.get(KeyCodec::encode(key)).has_value();
  }

  // --- Range queries as visitation -----------------------------------

  /// Visit every pair with low <= key <= high in key order. The visitor
  /// is fn(const K&, const V&) returning void (visit all) or bool
  /// (false stops the scan). Returns the number of pairs visited. See
  /// the header comment for the restart contract.
  template <typename F>
  std::size_t for_range(const K& low, const K& high, F&& fn) const {
    Decoded<F> visitor{fn};
    return engine_.for_range(KeyCodec::encode(low), KeyCodec::encode(high),
                             visitor);
  }

  /// Bounded scan: APPEND up to `limit` pairs with key >= low onto
  /// `out` (explicitly append — the caller owns clearing). Returns the
  /// number appended.
  std::size_t scan(const K& low, std::size_t limit,
                   std::vector<value_type>& out) const {
    if (limit == 0) return 0;
    BoundedAppend sink{out, out.size(), limit};
    Decoded<BoundedAppend> visitor{sink};
    engine_.for_range(KeyCodec::encode(low), core::kSentinelKey - 1,
                      visitor);
    return out.size() - sink.base;
  }

  // --- As-of building blocks (bundled-reference stitching) -----------
  // ShardedMap pins ONE timestamp and replays it across shards through
  // these; a false return means the bundle history needed at `ts` is
  // gone and the WHOLE stitched walk restarts with a fresh pin — no
  // per-shard restart happens here, which is what lets the stitcher
  // deliver straight into the caller's visitor without staging.

  /// Visit [low, high] as of the pinned timestamp `ts`, delivering into
  /// `fn` and accumulating into `delivered`. Sets `stopped` when the
  /// visitor ended the scan early.
  template <typename F>
  bool try_for_range_at(std::uint64_t ts, const K& low, const K& high,
                        F& fn, std::size_t& delivered, bool& stopped) const
    requires requires(const engine_type& e) { e.debug_max_bundle(); }
  {
    Decoded<F> visitor{fn};
    return engine_.try_for_range_asof(ts, KeyCodec::encode(low),
                                      KeyCodec::encode(high), visitor,
                                      delivered, stopped);
  }

  /// Append up to `limit` pairs with key >= low as of `ts` onto `out`.
  /// Sets `filled` when the limit was reached. The caller owns rolling
  /// `out` back across stitched-walk retries.
  bool try_scan_at(std::uint64_t ts, const K& low, std::size_t limit,
                   std::vector<value_type>& out, bool& filled) const
    requires requires(const engine_type& e) { e.debug_max_bundle(); }
  {
    BoundedAppend sink{out, out.size(), limit};
    Decoded<BoundedAppend> visitor{sink};
    std::size_t delivered = 0;
    bool stopped = false;
    if (!engine_.try_for_range_asof(ts, KeyCodec::encode(low),
                                    core::kSentinelKey - 1, visitor,
                                    delivered, stopped)) {
      return false;
    }
    filled = stopped;
    return true;
  }

  /// A materialized snapshot of [low, high]: captured through one
  /// (policy-consistent) range visitation, then iterated with no
  /// further synchronization — safe to hold across later updates.
  using Cursor = SnapshotCursor<K, V>;

  Cursor snapshot(const K& low, const K& high) const {
    std::vector<value_type> items;
    for_range(low, high, append_to(items));
    return Cursor(std::move(items));
  }

  // --- Composable forms (policy::TM only) ----------------------------
  // Enlist in a caller-owned open transaction (leap::txn), so typed
  // maps participate in multi-map transactions unchanged.

  bool insert_in(stm::Tx& tx, const K& key, const V& value)
    requires(Policy::kComposable)
  {
    return engine_.insert_in(tx, KeyCodec::encode(key),
                             ValueCodec::encode(value));
  }

  bool erase_in(stm::Tx& tx, const K& key)
    requires(Policy::kComposable)
  {
    return engine_.erase_in(tx, KeyCodec::encode(key));
  }

  std::optional<V> get_in(stm::Tx& tx, const K& key) const
    requires(Policy::kComposable)
  {
    const auto word = engine_.get_in(tx, KeyCodec::encode(key));
    if (!word) return std::nullopt;
    return ValueCodec::decode(*word);
  }

  template <typename F>
  std::size_t for_range_in(stm::Tx& tx, const K& low, const K& high,
                           F&& fn) const
    requires(Policy::kComposable)
  {
    Decoded<F> visitor{fn};
    return engine_.for_range_in(tx, KeyCodec::encode(low),
                                KeyCodec::encode(high), visitor);
  }

  /// Composable bounded scan: like scan, but enlisted in the caller's
  /// open transaction. The append base is captured per call, so an
  /// in-transaction restart of this visitation rolls back exactly this
  /// call's contribution (a whole-transaction retry is the caller's
  /// closure contract, as for every `*_in` form).
  std::size_t scan_in(stm::Tx& tx, const K& low, std::size_t limit,
                      std::vector<value_type>& out) const
    requires(Policy::kComposable)
  {
    if (limit == 0) return 0;
    BoundedAppend sink{out, out.size(), limit};
    Decoded<BoundedAppend> visitor{sink};
    engine_.for_range_in(tx, KeyCodec::encode(low), core::kSentinelKey - 1,
                         visitor);
    return out.size() - sink.base;
  }

  // --- Loading / introspection ---------------------------------------

  /// Single-threaded preload of a quiescent map; duplicate keys keep
  /// the last value.
  void bulk_load(const std::vector<value_type>& pairs) {
    std::vector<core::KV> encoded;
    encoded.reserve(pairs.size());
    for (const value_type& pair : pairs) {
      encoded.push_back(core::KV{KeyCodec::encode(pair.first),
                                 ValueCodec::encode(pair.second)});
    }
    engine_.bulk_load(encoded);
  }

  bool debug_validate() const
    requires requires(const engine_type& e) { e.debug_validate(); }
  {
    return engine_.debug_validate();
  }

  std::size_t size_slow() const
    requires requires(const engine_type& e) { e.size_slow(); }
  {
    return engine_.size_slow();
  }

  const core::Params& params() const
    requires requires(const engine_type& e) { e.params(); }
  {
    return engine_.params();
  }

  /// Escape hatch to the raw word engine (benches, migration).
  engine_type& engine() { return engine_; }
  const engine_type& engine() const { return engine_; }

 private:
  /// Word-level visitor decoding into the user's typed visitor,
  /// forwarding early exit and restart notifications. When the typed
  /// visitor bulk-ingests (append_run, e.g. leap::append_to), whole
  /// in-range runs flow through in decoded chunks — tight codec loops
  /// over stack arrays instead of a per-pair virtual-ish dispatch —
  /// which keeps the engine's bulk fast path intact across the facade.
  template <typename F>
  struct Decoded {
    F& fn;
    bool operator()(core::Key key, core::Value value) {
      return core::detail::visit_one(fn, KeyCodec::decode(key),
                                     ValueCodec::decode(value));
    }

    void append_run(const core::Key* keys, const core::Value* values,
                    std::size_t n)
      requires requires(F& f, const K* dk, const V* dv, std::size_t m) {
        f.append_run(dk, dv, m);
      } && std::default_initializable<K> && std::default_initializable<V>
    {
      // Identity codecs (the default int64 -> int64 map) pass the
      // engine's SoA slices straight through.
      if constexpr (std::is_same_v<K, core::Key> &&
                    std::is_same_v<V, core::Value> &&
                    std::is_same_v<KeyCodec, codec::Default<K>> &&
                    std::is_same_v<ValueCodec, codec::BitcastValue<V>>) {
        fn.append_run(keys, values, n);
        return;
      }
      constexpr std::size_t kChunk = 128;
      K dkeys[kChunk];
      V dvalues[kChunk];
      for (std::size_t at = 0; at < n; at += kChunk) {
        const std::size_t len = std::min(kChunk, n - at);
        for (std::size_t i = 0; i < len; ++i) {
          dkeys[i] = KeyCodec::decode(keys[at + i]);
          dvalues[i] = ValueCodec::decode(values[at + i]);
        }
        fn.append_run(dkeys, dvalues, len);
      }
    }

    void on_restart() { core::detail::visit_restart(fn); }
  };

  struct BoundedAppend {
    std::vector<value_type>& out;
    std::size_t base;
    std::size_t limit;
    bool operator()(const K& key, const V& value) {
      out.push_back({key, value});
      return out.size() - base < limit;
    }
    void on_restart() { out.resize(base); }
  };

  engine_type engine_;
};

}  // namespace leap
