// Bitwise (PATRICIA-style) trie over a sorted key array, after the
// String-B-tree device the paper adopts "to facilitate fast lookups
// when K is large" (§1.2). Internal nodes test one bit; leaves hold an
// index into the key array; a final compare resolves blind descents.
//
// Keys are mapped through a sign-flip bias so negative keys keep their
// order under unsigned bit tests.
#pragma once

#include <cstdint>
#include <vector>

namespace leap::trie {

class BitTrie {
 public:
  /// Build from strictly ascending keys. The trie stores positions, not
  /// keys — pair get_index with the same array used to build.
  static BitTrie build(const std::vector<std::int64_t>& keys) {
    BitTrie trie;
    if (keys.empty()) return trie;
    trie.nodes_.reserve(keys.size());
    trie.root_ = trie.build_range(keys, 0,
                                  static_cast<std::int32_t>(keys.size()) - 1);
    return trie;
  }

  /// Index of `probe` in `keys`, or -1 when absent.
  int get_index(const std::vector<std::int64_t>& keys,
                std::int64_t probe) const {
    if (root_ == kEmpty) return -1;
    const std::uint64_t biased = bias(probe);
    std::int32_t ref = root_;
    while (!is_leaf(ref)) {
      const InternalNode& node = nodes_[ref];
      ref = ((biased >> node.bit) & 1) != 0 ? node.right : node.left;
    }
    const int index = leaf_index(ref);
    return keys[index] == probe ? index : -1;
  }

  std::size_t internal_nodes() const { return nodes_.size(); }

 private:
  struct InternalNode {
    std::uint8_t bit;
    std::int32_t left;
    std::int32_t right;
  };

  static constexpr std::int32_t kEmpty = -1;

  static std::uint64_t bias(std::int64_t key) {
    return static_cast<std::uint64_t>(key) ^ (std::uint64_t{1} << 63);
  }

  static bool is_leaf(std::int32_t ref) { return ref < 0; }
  static std::int32_t make_leaf(std::int32_t index) { return -index - 2; }
  static int leaf_index(std::int32_t ref) { return -ref - 2; }

  std::int32_t build_range(const std::vector<std::int64_t>& keys,
                           std::int32_t lo, std::int32_t hi) {
    if (lo == hi) return make_leaf(lo);
    // Highest bit where the (sorted, biased) endpoints differ splits
    // the range contiguously.
    const std::uint64_t diff = bias(keys[lo]) ^ bias(keys[hi]);
    int bit = 63;
    while (((diff >> bit) & 1) == 0) --bit;
    // First position whose biased key has `bit` set.
    std::int32_t split_lo = lo;
    std::int32_t split_hi = hi;
    while (split_lo < split_hi) {
      const std::int32_t mid = split_lo + (split_hi - split_lo) / 2;
      if (((bias(keys[mid]) >> bit) & 1) != 0) {
        split_hi = mid;
      } else {
        split_lo = mid + 1;
      }
    }
    const std::int32_t node_index = static_cast<std::int32_t>(nodes_.size());
    nodes_.push_back({static_cast<std::uint8_t>(bit), 0, 0});
    const std::int32_t left = build_range(keys, lo, split_lo - 1);
    const std::int32_t right = build_range(keys, split_lo, hi);
    nodes_[node_index].left = left;
    nodes_[node_index].right = right;
    return node_index;
  }

  std::vector<InternalNode> nodes_;
  std::int32_t root_ = kEmpty;
};

}  // namespace leap::trie
