// Word-based software transactional memory in the TL2 style
// (Dice/Shalev/Shavit, DISC 2006) — the substrate for the paper's tm,
// COP, and LT leap-list variants.
//
//   * Every TxField carries its own versioned lock word (version<<1 |
//     locked-bit) — per-field orecs, no shared ownership table, so
//     false conflicts between unrelated fields are impossible.
//   * Transactions are lazy: writes buffer in a write set and publish
//     at commit under per-field locks, validated against a global
//     version clock snapshot.
//   * Progress: after a bounded number of aborts, `atomically` falls
//     back to an irrevocable mode serialized by a global rw-mutex that
//     every writer commit briefly shares — opt-in starvation freedom
//     without slowing the optimistic read path.
//   * Composition: atomically flat-nests on re-entry, and Tx carries
//     deferred commit/abort actions so multi-structure operations (one
//     transaction over several leap lists; see leaplist/txn.hpp) can
//     postpone node retirement and speculative-allocation cleanup to
//     the shared outcome.
//
// Concurrency contract: TxField::load/store are safe against concurrent
// transactions (store performs a miniature locked commit). Raw stores
// are NOT serializable against a running irrevocable fallback; restrict
// them to initialization or externally synchronized phases.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <new>
#include <thread>
#include <type_traits>
#include <vector>

namespace leap::stm {

class Tx;

namespace detail {

std::atomic<std::uint64_t>& global_clock() noexcept;

}  // namespace detail

/// Current value of the global version clock. Every committed writer
/// transaction advances it, and commit_locked stamps the written
/// fields' versioned locks with the post-advance value — so the clock
/// doubles as the timestamp authority for bundled references: a
/// snapshot reader that picks `ts = clock_now()` observes exactly the
/// writes of transactions with commit version <= ts.
inline std::uint64_t clock_now() noexcept {
  return detail::global_clock().load(std::memory_order_seq_cst);
}

namespace detail {

/// Commit-time gate for the irrevocable fallback. Writer commits hold
/// it shared for the (short) lock/validate/publish window; the fallback
/// holds it exclusive, which quiesces every in-flight commit.
void commit_gate_lock_shared() noexcept;
void commit_gate_unlock_shared() noexcept;
void commit_gate_lock_exclusive() noexcept;
void commit_gate_unlock_exclusive() noexcept;

inline bool vlock_locked(std::uint64_t vlock) { return (vlock & 1) != 0; }
inline std::uint64_t vlock_version(std::uint64_t vlock) { return vlock >> 1; }
inline std::uint64_t make_vlock(std::uint64_t version) { return version << 1; }

}  // namespace detail

/// Thrown (via Tx::abort) to unwind an attempt; handled inside
/// atomically/try_atomically, never escapes to user code.
struct TxAborted {};

/// Untyped transactional word: value + versioned lock.
class TxFieldBase {
 public:
  TxFieldBase() noexcept = default;
  TxFieldBase(const TxFieldBase&) = delete;
  TxFieldBase& operator=(const TxFieldBase&) = delete;

  std::uint64_t load_word(std::memory_order order =
                              std::memory_order_acquire) const noexcept {
    return value_.load(order);
  }

  /// Plain initialization for unpublished objects (no version bump, no
  /// synchronization). Do not use on shared fields.
  void init_word(std::uint64_t word) noexcept {
    value_.store(word, std::memory_order_relaxed);
  }

  /// Seqlock-consistent read of (value, commit version): spins while a
  /// commit holds the field locked, so the returned pair is always a
  /// committed state — and because commit_locked runs its publish
  /// actions BEFORE stamping the version, any side state keyed to this
  /// version (bundled-reference entries) is visible by the time the
  /// version is observable here.
  std::uint64_t snapshot_word(std::uint64_t& version) const noexcept {
    while (true) {
      const std::uint64_t v1 = vlock_.load(std::memory_order_acquire);
      if (detail::vlock_locked(v1)) {
        std::this_thread::yield();
        continue;
      }
      const std::uint64_t word = value_.load(std::memory_order_acquire);
      const std::uint64_t v2 = vlock_.load(std::memory_order_acquire);
      if (v1 == v2) {
        version = detail::vlock_version(v1);
        return word;
      }
    }
  }

  /// Linearizable single-word store: locks the field, publishes, bumps
  /// the global clock so concurrent readers/transactions revalidate.
  void store_word(std::uint64_t word) noexcept {
    std::uint64_t vlock = vlock_.load(std::memory_order_relaxed);
    while (true) {
      if (!detail::vlock_locked(vlock) &&
          vlock_.compare_exchange_weak(vlock, vlock | 1,
                                       std::memory_order_acq_rel)) {
        break;
      }
      std::this_thread::yield();
      vlock = vlock_.load(std::memory_order_relaxed);
    }
    value_.store(word, std::memory_order_release);
    const std::uint64_t wv =
        detail::global_clock().fetch_add(1, std::memory_order_acq_rel) + 1;
    vlock_.store(detail::make_vlock(wv), std::memory_order_release);
  }

 private:
  friend class Tx;
  std::atomic<std::uint64_t> value_{0};
  std::atomic<std::uint64_t> vlock_{0};
};

static_assert(std::is_trivially_destructible_v<TxFieldBase>,
              "flat node layouts reclaim TxField arrays as raw blocks");

/// Fixed-inline-buffer callable for publish-time actions. std::function
/// would heap-allocate for captures past its small-object limit (a
/// three-pointer bundle capture already overflows libstdc++'s), which
/// would put one malloc on every update's commit path — this type keeps
/// the capture inline and trivially copyable instead.
class PublishAction {
 public:
  template <typename F>
  explicit PublishAction(F f) noexcept {
    static_assert(sizeof(F) <= sizeof(buf_), "capture exceeds inline buffer");
    static_assert(alignof(F) <= alignof(std::max_align_t),
                  "over-aligned capture");
    static_assert(std::is_trivially_copyable_v<F> &&
                      std::is_trivially_destructible_v<F>,
                  "publish actions must capture trivially (pointers/ints)");
    std::memcpy(buf_, &f, sizeof(F));
    invoke_ = [](void* raw, std::uint64_t wv) {
      (*static_cast<F*>(raw))(wv);
    };
  }

  void operator()(std::uint64_t wv) { invoke_(buf_, wv); }

 private:
  void (*invoke_)(void*, std::uint64_t) = nullptr;
  alignas(std::max_align_t) unsigned char buf_[40];
};

class Tx {
 public:
  Tx() {
    reads_.reserve(64);
    writes_.reserve(16);
  }
  Tx(const Tx&) = delete;
  Tx& operator=(const Tx&) = delete;

  [[noreturn]] void abort() const { throw TxAborted{}; }

  std::uint64_t read_word(TxFieldBase& field) {
    // Read-your-writes (O(1) through the write-set index).
    const std::size_t slot = write_slot(&field);
    if (slot != kNoSlot) return writes_[index_[slot].pos].value;
    const std::uint64_t v1 = field.vlock_.load(std::memory_order_acquire);
    if (detail::vlock_locked(v1) || detail::vlock_version(v1) > rv_) {
      abort();
    }
    const std::uint64_t value = field.value_.load(std::memory_order_acquire);
    const std::uint64_t v2 = field.vlock_.load(std::memory_order_acquire);
    if (v1 != v2) abort();
    reads_.push_back({&field, v1});
    return value;
  }

  void write_word(TxFieldBase& field, std::uint64_t value) {
    const std::size_t slot = write_slot(&field);
    if (slot != kNoSlot) {
      writes_[index_[slot].pos].value = value;
      return;
    }
    index_put(&field, static_cast<std::uint32_t>(writes_.size()));
    writes_.push_back({&field, value, 0});
  }

  /// True when the transaction already buffered a write to `field`.
  /// Composable structure ops use this to detect that their raw
  /// (uninstrumented) traversal walked a window this transaction has
  /// itself reshaped, and fall back to an instrumented search. O(1):
  /// a wide typed-map transaction probes this once per level per op,
  /// so a linear scan over W buffered writes would go quadratic.
  bool has_write(const TxFieldBase& field) const noexcept {
    return write_slot(&field) != kNoSlot;
  }

  /// Deferred side effects for composable ops. A commit action runs
  /// exactly once, after the attempt that registered it commits (victim
  /// retirement); an abort action runs when that attempt aborts for any
  /// reason — conflict, failed commit validation, or user abort —
  /// (freeing speculative replacement nodes). Both lists reset at every
  /// attempt begin, so a retried closure re-registers its actions.
  /// Actions run outside the commit-time locks, in registration order.
  void defer_on_commit(std::function<void()> action) {
    commit_actions_.push_back(std::move(action));
  }
  void defer_on_abort(std::function<void()> action) {
    abort_actions_.push_back(std::move(action));
  }

  /// Publish-time action: runs INSIDE commit_locked, after the write
  /// set's values are stored but before the versioned locks are stamped
  /// with the commit version (which is the argument). The written
  /// fields are still locked at that point, so per-field side state
  /// updated here (bundled-reference entries keyed by commit version)
  /// is serialized in commit order and becomes visible to seqlock
  /// readers no later than the version itself. Actions must be fast and
  /// must not throw, abort, or touch other TxFields. Stored in a fixed
  /// inline buffer (no std::function) so registering one is
  /// allocation-free on the update hot path.
  template <typename F>
  void defer_on_publish(F action) {
    publish_actions_.push_back(PublishAction(std::move(action)));
  }

  bool in_tx() const noexcept { return active_; }
  std::uint64_t commits() const noexcept { return commits_; }
  std::uint64_t aborts() const noexcept { return aborts_; }

 private:
  template <typename Fn>
  friend void atomically(Tx&, Fn&&);
  template <typename Fn>
  friend bool try_atomically(Tx&, Fn&&);

  struct ReadEntry {
    TxFieldBase* field;
    std::uint64_t version;
  };
  struct WriteEntry {
    TxFieldBase* field;
    std::uint64_t value;
    std::uint64_t saved_vlock;  // pre-lock value, for rollback
  };

  void begin(bool irrevocable) {
    reads_.clear();
    writes_.clear();
    ++index_stamp_;  // O(1) write-set-index clear
    index_count_ = 0;
    commit_actions_.clear();
    abort_actions_.clear();
    publish_actions_.clear();
    irrevocable_ = irrevocable;
    active_ = true;
    rv_ = detail::global_clock().load(std::memory_order_acquire);
  }

  void on_abort() {
    active_ = false;
    ++aborts_;
  }

  /// Run (and drop) this attempt's deferred actions. finish_commit must
  /// only run after a successful commit, finish_abort after an abort;
  /// both are called from atomically/try_atomically outside the commit
  /// gate so actions may take arbitrary time (EBR retire, frees).
  void finish_commit() {
    for (auto& action : commit_actions_) action();
    commit_actions_.clear();
    abort_actions_.clear();
    publish_actions_.clear();
  }

  void finish_abort() {
    for (auto& action : abort_actions_) action();
    commit_actions_.clear();
    abort_actions_.clear();
    publish_actions_.clear();
  }

  bool commit() {
    active_ = false;
    if (writes_.empty()) {
      // Read-only: every read was validated against rv_ at read time.
      ++commits_;
      return true;
    }
    if (!irrevocable_) detail::commit_gate_lock_shared();
    const bool ok = commit_locked();
    if (!irrevocable_) detail::commit_gate_unlock_shared();
    if (ok) {
      ++commits_;
    } else {
      ++aborts_;
    }
    return ok;
  }

  bool commit_locked() {
    // Lock the write set in address order (deadlock-free against other
    // committers using the same order).
    std::sort(writes_.begin(), writes_.end(),
              [](const WriteEntry& a, const WriteEntry& b) {
                return a.field < b.field;
              });
    std::size_t locked = 0;
    for (; locked < writes_.size(); ++locked) {
      WriteEntry& w = *(writes_.begin() + locked);
      std::uint64_t vlock = w.field->vlock_.load(std::memory_order_acquire);
      if (detail::vlock_locked(vlock) ||
          detail::vlock_version(vlock) > rv_ ||
          !w.field->vlock_.compare_exchange_strong(
              vlock, vlock | 1, std::memory_order_acq_rel)) {
        break;
      }
      w.saved_vlock = vlock;
    }
    if (locked != writes_.size()) {
      rollback_locks(locked);
      return false;
    }
    const std::uint64_t wv =
        detail::global_clock().fetch_add(1, std::memory_order_acq_rel) + 1;
    if (wv != rv_ + 1 && !validate_reads()) {
      rollback_locks(writes_.size());
      return false;
    }
    for (const WriteEntry& w : writes_) {
      w.field->value_.store(w.value, std::memory_order_release);
    }
    // Publish window: values are in place, versioned locks still held.
    // Side state stamped with wv here is ordered before any reader can
    // observe wv on the written fields (snapshot_word spins on the
    // locks), which is what makes bundle entries race-free without a
    // pending-entry protocol.
    for (auto& action : publish_actions_) action(wv);
    for (const WriteEntry& w : writes_) {
      w.field->vlock_.store(detail::make_vlock(wv), std::memory_order_release);
    }
    return true;
  }

  bool validate_reads() const {
    for (const ReadEntry& r : reads_) {
      const std::uint64_t vlock =
          r.field->vlock_.load(std::memory_order_acquire);
      if (detail::vlock_locked(vlock)) {
        // Locked by us is fine iff the pre-lock version still matches.
        if (!owns(r.field)) return false;
        if (saved_version_of(r.field) != detail::vlock_version(r.version))
          return false;
      } else if (vlock != r.version) {
        return false;
      }
    }
    return true;
  }

  bool owns(const TxFieldBase* field) const { return has_write(*field); }

  /// Linear on purpose: it runs after commit_locked() sorted writes_,
  /// which stales the index's positions (membership stays exact — the
  /// slots key on the field pointer — but `pos` no longer does), and
  /// only for read-set fields found locked at validation, a rare path.
  std::uint64_t saved_version_of(const TxFieldBase* field) const {
    for (const WriteEntry& w : writes_) {
      if (w.field == field) return detail::vlock_version(w.saved_vlock);
    }
    return ~std::uint64_t{0};
  }

  void rollback_locks(std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      writes_[i].field->vlock_.store(writes_[i].saved_vlock,
                                     std::memory_order_release);
    }
  }

  // --- Write-set index ------------------------------------------------
  //
  // Open-addressing map from field pointer to position in writes_,
  // stamp-cleared: begin() bumps index_stamp_ and any slot whose stamp
  // disagrees is empty, so clearing is O(1) regardless of the previous
  // attempt's width. Positions are valid until commit_locked() sorts
  // writes_; after that only membership queries (owns) remain correct,
  // which is all the commit path asks.

  struct IndexSlot {
    const TxFieldBase* field = nullptr;
    std::uint64_t stamp = 0;
    std::uint32_t pos = 0;
  };
  static constexpr std::size_t kNoSlot = ~std::size_t{0};

  static std::size_t slot_hash(const TxFieldBase* field) noexcept {
    auto h = static_cast<std::uint64_t>(
        reinterpret_cast<std::uintptr_t>(field) >> 4);
    h *= 0x9E3779B97F4A7C15ull;
    return static_cast<std::size_t>(h ^ (h >> 32));
  }

  std::size_t write_slot(const TxFieldBase* field) const noexcept {
    const std::size_t mask = index_.size() - 1;
    for (std::size_t i = slot_hash(field) & mask;; i = (i + 1) & mask) {
      const IndexSlot& slot = index_[i];
      if (slot.stamp != index_stamp_) return kNoSlot;
      if (slot.field == field) return i;
    }
  }

  /// Caller guarantees `field` is absent. Grows at 3/4 load so the
  /// probe above always terminates on an empty slot.
  void index_put(const TxFieldBase* field, std::uint32_t pos) {
    if ((index_count_ + 1) * 4 > index_.size() * 3) {
      index_.assign(index_.size() * 2, IndexSlot{});
      index_count_ = 0;
      ++index_stamp_;
      for (std::uint32_t p = 0; p < writes_.size(); ++p) {
        index_put(writes_[p].field, p);
      }
    }
    const std::size_t mask = index_.size() - 1;
    std::size_t i = slot_hash(field) & mask;
    while (index_[i].stamp == index_stamp_) i = (i + 1) & mask;
    index_[i] = IndexSlot{field, index_stamp_, pos};
    ++index_count_;
  }

  std::vector<ReadEntry> reads_;
  std::vector<WriteEntry> writes_;
  std::vector<IndexSlot> index_ = std::vector<IndexSlot>(64);
  std::uint64_t index_stamp_ = 1;
  std::size_t index_count_ = 0;
  std::vector<std::function<void()>> commit_actions_;
  std::vector<std::function<void()>> abort_actions_;
  std::vector<PublishAction> publish_actions_;
  std::uint64_t rv_ = 0;
  std::uint64_t commits_ = 0;
  std::uint64_t aborts_ = 0;
  bool irrevocable_ = false;
  bool active_ = false;
};

/// Typed transactional field. T must be trivially copyable and at most
/// word-sized (Key, Value, pointers, packed words).
template <typename T>
class TxField : public TxFieldBase {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8,
                "TxField requires a word-sized trivially copyable type");

 public:
  TxField() noexcept = default;
  explicit TxField(T value) noexcept { init_word(encode(value)); }

  /// Placement-construct `count` default fields (unlocked, version 0,
  /// value 0 — the same state vector-backed storage produced) in `raw`,
  /// which must be suitably aligned. Flat node layouts allocate their
  /// next arrays inline in one block this way; TxField is trivially
  /// destructible, so owners may reclaim the block without a teardown
  /// pass.
  static TxField* construct_array(void* raw, std::size_t count) {
    auto* fields = static_cast<TxField*>(raw);
    for (std::size_t i = 0; i < count; ++i) new (fields + i) TxField();
    return fields;
  }

  T load() const noexcept { return decode(load_word()); }
  void store(T value) noexcept { store_word(encode(value)); }
  /// Pre-publication initialization only.
  void init(T value) noexcept { init_word(encode(value)); }

  T tx_read(Tx& tx) { return decode(tx.read_word(*this)); }
  void tx_write(Tx& tx, T value) { tx.write_word(*this, encode(value)); }

 private:
  static std::uint64_t encode(T value) noexcept {
    std::uint64_t word = 0;
    std::memcpy(&word, &value, sizeof(T));
    return word;
  }
  static T decode(std::uint64_t word) noexcept {
    T value;
    std::memcpy(&value, &word, sizeof(T));
    return value;
  }
};

/// Per-thread transaction context.
Tx& tls_tx();

namespace detail {

inline void backoff(unsigned attempt) {
  if (attempt < 4) return;
  if (attempt < 10) {
    for (unsigned i = 0; i < (1u << attempt); ++i) {
      std::atomic_signal_fence(std::memory_order_seq_cst);
    }
    return;
  }
  std::this_thread::yield();
}

inline constexpr unsigned kMaxOptimisticAttempts = 64;

}  // namespace detail

/// Run `fn(tx)` as an atomic transaction, retrying on conflict; after
/// kMaxOptimisticAttempts aborts, runs irrevocably under the global
/// commit gate (guaranteed to commit barring an explicit user abort).
///
/// Re-entry is flat-nested: when `tx` is already active (an enclosing
/// atomically owns it), the closure simply enlists in the enclosing
/// transaction — its reads/writes/deferred actions join the outer
/// attempt, aborts unwind to the outer retry loop, and nothing is
/// published until the outer commit. Only closures whose post-commit
/// effects go through Tx::defer_on_commit/defer_on_abort compose this
/// way; code that acts on "atomically returned, so it committed" must
/// not run inside an open transaction.
template <typename Fn>
void atomically(Tx& tx, Fn&& fn) {
  if (tx.in_tx()) {
    fn(tx);
    return;
  }
  while (true) {
    for (unsigned attempt = 0; attempt < detail::kMaxOptimisticAttempts;
         ++attempt) {
      tx.begin(false);
      try {
        fn(tx);
      } catch (const TxAborted&) {
        tx.on_abort();
        tx.finish_abort();
        detail::backoff(attempt);
        continue;
      } catch (...) {
        // Foreign exception: abort the attempt before propagating, or
        // the still-active Tx would flat-nest (and swallow) every later
        // transaction on this thread.
        tx.on_abort();
        tx.finish_abort();
        throw;
      }
      if (tx.commit()) {
        tx.finish_commit();
        return;
      }
      tx.finish_abort();
      detail::backoff(attempt);
    }
    // Irrevocable fallback: exclusive gate quiesces all commits, so
    // reads cannot be invalidated and the commit cannot fail — unless a
    // raw TxField::store (which bypasses the gate) races the fallback.
    detail::commit_gate_lock_exclusive();
    tx.begin(true);
    bool user_abort = false;
    try {
      fn(tx);
    } catch (const TxAborted&) {
      tx.on_abort();
      user_abort = true;
    } catch (...) {
      tx.on_abort();
      detail::commit_gate_unlock_exclusive();
      tx.finish_abort();  // outside the gate, like every action run
      throw;
    }
    const bool committed = !user_abort && tx.commit();
    detail::commit_gate_unlock_exclusive();
    if (committed) {
      tx.finish_commit();
      return;
    }
    tx.finish_abort();
    // The lambda aborted on data it saw under quiescence (e.g. a marked
    // pointer that needs an out-of-tx restart), or a racing raw store
    // invalidated the attempt: hand control back to the optimistic
    // loop. Commit actions must never run for an unpublished attempt.
  }
}

/// Single attempt; returns true iff the transaction committed. Inside
/// an open transaction it flat-nests like atomically (the enlistment
/// itself always succeeds, so it returns true; the enclosing commit
/// decides the outcome).
template <typename Fn>
bool try_atomically(Tx& tx, Fn&& fn) {
  if (tx.in_tx()) {
    fn(tx);
    return true;
  }
  tx.begin(false);
  try {
    fn(tx);
  } catch (const TxAborted&) {
    tx.on_abort();
    tx.finish_abort();
    return false;
  } catch (...) {
    tx.on_abort();
    tx.finish_abort();
    throw;
  }
  if (tx.commit()) {
    tx.finish_commit();
    return true;
  }
  tx.finish_abort();
  return false;
}

}  // namespace leap::stm
