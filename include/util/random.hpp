// Xoshiro256** — fast, high-quality PRNG for workload generation.
// Benchmarks draw millions of keys per second; std::mt19937_64 is too
// heavy to sit on that path.
#pragma once

#include <cstdint>

namespace leap::util {

class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) {
    // SplitMix64 expansion of the seed, per Vigna's recommendation.
    std::uint64_t x = seed + 0x9e3779b97f4a7c15ull;
    for (auto& word : state_) {
      std::uint64_t z = (x += 0x9e3779b97f4a7c15ull);
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform draw in [0, bound). bound == 0 yields 0.
  std::uint64_t next_below(std::uint64_t bound) {
    return bound == 0 ? 0 : next() % bound;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

/// Geometric (p = 1/2) tower height in [1, max_level] from a per-thread
/// generator — the one level distribution every skiplist-shaped
/// structure in this repo draws from.
inline int random_geometric_level(int max_level) {
  thread_local Xoshiro256 rng(0x9e3779b97f4a7c15ull ^
                              reinterpret_cast<std::uint64_t>(&rng));
  int level = 1;
  while (level < max_level && (rng.next() & 1) != 0) ++level;
  return level;
}

}  // namespace leap::util
