// Marked-pointer words: a pointer packed into a std::uint64_t whose low
// bit flags the owning node as logically deleted (paper §2.1 — marked
// next pointers let uninstrumented searches detect retired nodes and
// restart). Alignment of the pointee guarantees the low bit is free.
#pragma once

#include <cstdint>

namespace leap::util {

inline constexpr std::uint64_t kMarkBit = 1;

template <typename T>
inline std::uint64_t to_word(T* ptr) {
  return reinterpret_cast<std::uint64_t>(ptr);
}

inline bool is_marked(std::uint64_t word) { return (word & kMarkBit) != 0; }

inline std::uint64_t with_mark(std::uint64_t word) { return word | kMarkBit; }

inline std::uint64_t without_mark(std::uint64_t word) {
  return word & ~kMarkBit;
}

template <typename T>
inline T* to_ptr(std::uint64_t word) {
  return reinterpret_cast<T*>(word & ~kMarkBit);
}

}  // namespace leap::util
