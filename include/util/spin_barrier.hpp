// Sense-reversing spin barrier. Benchmark workers must start measuring
// on the same cycle; a futex-based std::barrier adds syscall jitter at
// exactly the wrong moment.
#pragma once

#include <atomic>
#include <thread>

namespace leap::util {

class SpinBarrier {
 public:
  explicit SpinBarrier(unsigned parties) : parties_(parties) {}

  void arrive_and_wait() {
    const unsigned generation = generation_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      arrived_.store(0, std::memory_order_relaxed);
      generation_.fetch_add(1, std::memory_order_acq_rel);
      return;
    }
    unsigned spins = 0;
    while (generation_.load(std::memory_order_acquire) == generation) {
      if (++spins > 4096) std::this_thread::yield();
    }
  }

 private:
  const unsigned parties_;
  std::atomic<unsigned> arrived_{0};
  std::atomic<unsigned> generation_{0};
};

}  // namespace leap::util
