// Epoch-based reclamation (EBR), three-epoch scheme.
//
// Leap-list updates replace whole nodes; uninstrumented searches (the
// LT/COP fast path) may still hold references to a replaced node, so it
// cannot be freed immediately. Every structure operation pins the
// current epoch with a Guard; retired nodes are freed once every pinned
// thread has moved two epochs past the retiring one.
//
// One process-wide domain is shared by all structures: retired memory is
// unreachable by definition, so cross-structure batching is safe and
// keeps the fast path to a single epoch store per operation.
#pragma once

#include <cstddef>
#include <cstdint>

namespace leap::util::ebr {

namespace detail {

struct ThreadRec;

/// Thread-local record, registered with the global domain on first use
/// and recycled after thread exit.
ThreadRec& local_rec();

void pin(ThreadRec& rec);
void unpin(ThreadRec& rec);
int pin_depth(const ThreadRec& rec);

}  // namespace detail

/// RAII epoch pin. Re-entrant: nested guards on one thread are cheap.
class Guard {
 public:
  Guard() : rec_(detail::local_rec()) { detail::pin(rec_); }
  ~Guard() { detail::unpin(rec_); }
  Guard(const Guard&) = delete;
  Guard& operator=(const Guard&) = delete;

 private:
  detail::ThreadRec& rec_;
};

/// Defer destruction of `ptr` until all current Guards have been
/// released. Must be called while holding a Guard.
void retire(void* ptr, void (*deleter)(void*));

template <typename T>
void retire(T* ptr) {
  retire(static_cast<void*>(ptr),
         [](void* raw) { delete static_cast<T*>(raw); });
}

/// Free every retired object whose grace period has elapsed; if the
/// domain is fully quiescent (no thread holds a Guard), free everything.
/// Safe to call at any time; destructors call it as a best-effort sweep
/// so leak checkers see a clean exit once worker threads have joined.
void collect();

/// Number of objects currently awaiting reclamation (approximate).
std::size_t pending_count();

}  // namespace leap::util::ebr
