// Epoch-based reclamation (EBR), three-epoch scheme.
//
// Leap-list updates replace whole nodes; uninstrumented searches (the
// LT/COP fast path) may still hold references to a replaced node, so it
// cannot be freed immediately. Every structure operation pins the
// current epoch with a Guard; retired nodes are freed once every pinned
// thread has moved two epochs past the retiring one.
//
// One process-wide domain is shared by all structures: retired memory is
// unreachable by definition, so cross-structure batching is safe and
// keeps the fast path to a single epoch store per operation.
#pragma once

#include <cstddef>
#include <cstdint>

namespace leap::util::ebr {

namespace detail {

struct ThreadRec;

/// Thread-local record, registered with the global domain on first use
/// and recycled after thread exit.
ThreadRec& local_rec();

void pin(ThreadRec& rec);
void unpin(ThreadRec& rec);
int pin_depth(const ThreadRec& rec);

}  // namespace detail

/// RAII epoch pin. Re-entrant: nested guards on one thread are cheap.
class Guard {
 public:
  Guard() : rec_(detail::local_rec()) { detail::pin(rec_); }
  ~Guard() { detail::unpin(rec_); }
  Guard(const Guard&) = delete;
  Guard& operator=(const Guard&) = delete;

 private:
  detail::ThreadRec& rec_;
};

/// Defer destruction of `ptr` until all current Guards have been
/// released. Must be called while holding a Guard.
void retire(void* ptr, void (*deleter)(void*));

template <typename T>
void retire(T* ptr) {
  retire(static_cast<void*>(ptr),
         [](void* raw) { delete static_cast<T*>(raw); });
}

/// Free every retired object whose grace period has elapsed; if the
/// domain is fully quiescent (no thread holds a Guard), free everything.
/// Safe to call at any time; destructors call it as a best-effort sweep
/// so leak checkers see a clean exit once worker threads have joined.
void collect();

/// Number of objects currently awaiting reclamation (approximate).
std::size_t pending_count();

// --- Node recycling pool ----------------------------------------------
//
// Per-thread size-class free lists fed by retirement: a structure
// retires a node with a deleter that calls pool_free instead of
// operator delete, and its next alloc takes the block back through
// pool_alloc — steady-state updates stop paying the allocator at all.
// Blocks are classed by size in 64-byte steps (a pooled block may be up
// to 63 bytes larger than requested); sizes above the largest class
// fall through to the heap. Lists are thread-local — a block is pushed
// by whichever thread drains the retiring EBR bin and popped only by
// that thread — so the pool itself needs no synchronization: the EBR
// grace period is what makes a recycled block unreachable before reuse.
//
// Debug builds (without a sanitizer) poison recycled blocks with 0xEB
// and verify the poison on reuse, so a stale write into a reclaimed
// block aborts loudly. Under ASan the pool is pass-through — every
// block really goes back to the heap — so use-after-free detection
// keeps its full power.

/// False when the pool is pass-through (ASan builds).
bool pool_enabled() noexcept;

/// A block of at least `bytes` — recycled when available, fresh
/// otherwise. Never nullptr; pair with pool_free on the same `bytes`.
void* pool_alloc(std::size_t bytes);

/// Return a pool_alloc'd block (same `bytes`) to the calling thread's
/// free lists. The caller must guarantee the block is unreachable:
/// either never published, or retired and past its EBR grace period
/// (the usual route is an ebr::retire deleter that ends here).
void pool_free(void* block, std::size_t bytes) noexcept;

/// Pool allocations served from a free list / fallen through to the
/// heap, process-wide (bench counters).
std::uint64_t pool_hits() noexcept;
std::uint64_t pool_misses() noexcept;

/// Free every block cached by the calling thread (thread exit does this
/// automatically).
void pool_trim() noexcept;

/// Debug-poison check over the calling thread's cached blocks; always
/// true in release or pass-through builds.
bool pool_debug_verify() noexcept;

}  // namespace leap::util::ebr
