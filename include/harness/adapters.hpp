// Adapters presenting leap lists and skip lists to the driver through
// one operation interface: construct-and-preload from a WorkloadConfig,
// then op_lookup / op_range / op_modify. A workload over L lists picks
// a list uniformly per operation (the paper's multi-list setup).
#pragma once

#include <memory>
#include <vector>

#include "harness/workload.hpp"
#include "leaplist/leaplist.hpp"
#include "leaplist/skiplist.hpp"
#include "util/random.hpp"

namespace leap::harness {

template <typename ListT>
class ListAdapterBase {
 public:
  using List = ListT;

  explicit ListAdapterBase(const WorkloadConfig& cfg) : cfg_(cfg) {
    std::vector<core::KV> pairs;
    pairs.reserve(cfg_.initial_size);
    // Evenly spread distinct keys across [1, key_range]; jitter-free so
    // every variant preloads the identical population.
    const std::uint64_t range = std::max<std::uint64_t>(cfg_.key_range, 1);
    for (std::size_t j = 0; j < cfg_.initial_size; ++j) {
      const std::uint64_t key =
          1 + (j * range) / std::max<std::size_t>(cfg_.initial_size, 1);
      if (!pairs.empty() &&
          pairs.back().key == static_cast<core::Key>(key)) {
        continue;
      }
      pairs.push_back(core::KV{static_cast<core::Key>(key),
                               static_cast<core::Value>(key)});
    }
    for (int i = 0; i < cfg_.lists; ++i) {
      lists_.push_back(std::make_unique<ListT>(cfg_.params));
      lists_.back()->bulk_load(pairs);
    }
  }

  void op_lookup(util::Xoshiro256& rng) {
    const auto value = pick(rng).get(random_key(rng));
    asm volatile("" : : "g"(&value) : "memory");
  }

  void op_range(util::Xoshiro256& rng, std::vector<core::KV>& buf) {
    const std::uint64_t span =
        cfg_.rq_span_min +
        rng.next_below(cfg_.rq_span_max - cfg_.rq_span_min + 1);
    const core::Key low = random_key(rng);
    pick(rng).range_query(low, low + static_cast<core::Key>(span), buf);
  }

  void op_modify(util::Xoshiro256& rng) {
    const core::Key key = random_key(rng);
    ListT& list = pick(rng);
    if ((rng.next() & 1) != 0) {
      list.insert(key, static_cast<core::Value>(key));
    } else {
      list.erase(key);
    }
  }

  const WorkloadConfig& config() const { return cfg_; }
  ListT& list(int index) { return *lists_[index]; }

 private:
  ListT& pick(util::Xoshiro256& rng) {
    return cfg_.lists == 1
               ? *lists_[0]
               : *lists_[rng.next_below(static_cast<std::uint64_t>(
                     cfg_.lists))];
  }

  core::Key random_key(util::Xoshiro256& rng) {
    return static_cast<core::Key>(1 + rng.next_below(cfg_.key_range));
  }

  WorkloadConfig cfg_;
  std::vector<std::unique_ptr<ListT>> lists_;
};

template <typename LeapListT>
class LeapAdapter : public ListAdapterBase<LeapListT> {
 public:
  using ListAdapterBase<LeapListT>::ListAdapterBase;
};

template <typename SkipListT>
class SkipAdapter : public ListAdapterBase<SkipListT> {
 public:
  using ListAdapterBase<SkipListT>::ListAdapterBase;
};

}  // namespace leap::harness
