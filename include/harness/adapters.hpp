// Adapters presenting leap lists and skip lists to the driver through
// one operation interface: construct-and-preload from a WorkloadConfig,
// then op_lookup / op_range / op_modify / op_txn. A workload over L
// lists picks a list uniformly per operation (the paper's multi-list
// setup); op_txn draws TWO lists and runs a cross-list move or a
// two-list range snapshot — as one leap::txn on composable lists
// (LeapListTM), or as independent single-list ops on the rest (the
// non-atomic baseline abl_txn contrasts).
#pragma once

#include <memory>
#include <vector>

#include "harness/workload.hpp"
#include "leaplist/leaplist.hpp"
#include "leaplist/skiplist.hpp"
#include "leaplist/txn.hpp"
#include "stm/stm.hpp"
#include "util/random.hpp"

namespace leap::harness {

template <typename ListT>
class ListAdapterBase {
 public:
  using List = ListT;

  explicit ListAdapterBase(const WorkloadConfig& cfg) : cfg_(cfg) {
    std::vector<core::KV> pairs;
    pairs.reserve(cfg_.initial_size);
    // Evenly spread distinct keys across [1, key_range]; jitter-free so
    // every variant preloads the identical population.
    const std::uint64_t range = std::max<std::uint64_t>(cfg_.key_range, 1);
    for (std::size_t j = 0; j < cfg_.initial_size; ++j) {
      const std::uint64_t key =
          1 + (j * range) / std::max<std::size_t>(cfg_.initial_size, 1);
      if (!pairs.empty() &&
          pairs.back().key == static_cast<core::Key>(key)) {
        continue;
      }
      pairs.push_back(core::KV{static_cast<core::Key>(key),
                               static_cast<core::Value>(key)});
    }
    for (int i = 0; i < cfg_.lists; ++i) {
      lists_.push_back(std::make_unique<ListT>(cfg_.params));
      lists_.back()->bulk_load(pairs);
    }
  }

  void op_lookup(util::Xoshiro256& rng) {
    const auto value = pick(rng).get(random_key(rng));
    asm volatile("" : : "g"(&value) : "memory");
  }

  void op_range(util::Xoshiro256& rng, std::vector<core::KV>& buf) {
    const std::uint64_t span =
        cfg_.rq_span_min +
        rng.next_below(cfg_.rq_span_max - cfg_.rq_span_min + 1);
    const core::Key low = random_key(rng);
    pick(rng).range_query(low, low + static_cast<core::Key>(span), buf);
  }

  void op_modify(util::Xoshiro256& rng) {
    const core::Key key = random_key(rng);
    ListT& list = pick(rng);
    if ((rng.next() & 1) != 0) {
      list.insert(key, static_cast<core::Value>(key));
    } else {
      list.erase(key);
    }
  }

  /// True when ListT exposes the composable `*_in` forms (LeapListTM).
  static constexpr bool kComposable =
      requires(ListT list, stm::Tx& tx, std::vector<core::KV>& out) {
        list.insert_in(tx, core::Key{}, core::Value{});
        list.erase_in(tx, core::Key{});
        list.get_in(tx, core::Key{});
        list.range_in(tx, core::Key{}, core::Key{}, out);
      };

  /// Multi-list transaction (Mix::txn_pct): half the draws atomically
  /// move a key between two lists, half take a two-list range snapshot.
  /// dst is drawn distinct from src whenever the workload has more than
  /// one list, so the op measures genuinely cross-list work.
  void op_txn(util::Xoshiro256& rng, std::vector<core::KV>& buf) {
    const int src_index =
        cfg_.lists == 1
            ? 0
            : static_cast<int>(
                  rng.next_below(static_cast<std::uint64_t>(cfg_.lists)));
    const int dst_index =
        cfg_.lists == 1
            ? 0
            : static_cast<int>((src_index + 1 +
                                rng.next_below(static_cast<std::uint64_t>(
                                    cfg_.lists - 1))) %
                               cfg_.lists);
    ListT& src = *lists_[src_index];
    ListT& dst = *lists_[dst_index];
    if ((rng.next() & 1) != 0) {
      const core::Key key = random_key(rng);
      if constexpr (kComposable) {
        leap::txn([&](stm::Tx& tx) {
          const auto value = src.get_in(tx, key);
          if (!value) return;
          src.erase_in(tx, key);
          dst.insert_in(tx, key, *value);
        });
      } else {
        const auto value = src.get(key);
        if (!value) return;
        src.erase(key);
        dst.insert(key, *value);
      }
    } else {
      const std::uint64_t span =
          cfg_.rq_span_min +
          rng.next_below(cfg_.rq_span_max - cfg_.rq_span_min + 1);
      const core::Key low = random_key(rng);
      const core::Key high = low + static_cast<core::Key>(span);
      // range_in/range_query clear their output, so the second list
      // needs its own buffer for the snapshot to materialize.
      static thread_local std::vector<core::KV> second;
      if constexpr (kComposable) {
        leap::txn([&](stm::Tx& tx) {
          src.range_in(tx, low, high, buf);
          dst.range_in(tx, low, high, second);
        });
      } else {
        src.range_query(low, high, buf);
        dst.range_query(low, high, second);
      }
    }
  }

  const WorkloadConfig& config() const { return cfg_; }
  ListT& list(int index) { return *lists_[index]; }

 private:
  ListT& pick(util::Xoshiro256& rng) {
    return cfg_.lists == 1
               ? *lists_[0]
               : *lists_[rng.next_below(static_cast<std::uint64_t>(
                     cfg_.lists))];
  }

  core::Key random_key(util::Xoshiro256& rng) {
    return static_cast<core::Key>(1 + rng.next_below(cfg_.key_range));
  }

  WorkloadConfig cfg_;
  std::vector<std::unique_ptr<ListT>> lists_;
};

template <typename LeapListT>
class LeapAdapter : public ListAdapterBase<LeapListT> {
 public:
  using ListAdapterBase<LeapListT>::ListAdapterBase;
};

template <typename SkipListT>
class SkipAdapter : public ListAdapterBase<SkipListT> {
 public:
  using ListAdapterBase<SkipListT>::ListAdapterBase;
};

}  // namespace leap::harness
