// Adapter presenting any leap::OrderedMap (the typed leap::Map facade
// over every leap-list policy and both skip-list baselines) to the
// driver through one operation interface: construct-and-preload from a
// WorkloadConfig, then op_lookup / op_range / op_modify / op_txn. A
// workload over L maps picks one uniformly per operation (the paper's
// multi-list setup); op_txn draws TWO maps and runs a cross-map move or
// a two-map range snapshot — as one leap::txn on composable maps
// (policy::TM), or as independent single-map ops on the rest (the
// non-atomic baseline abl_txn contrasts).
//
// Range results accumulate through leap::append_to into a per-thread
// scratch buffer: append is explicit in the visitor API, so a two-map
// snapshot stacks both ranges into ONE buffer inside one transaction
// (the old replace-semantics range_query needed a second buffer here).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "harness/workload.hpp"
#include "leaplist/map.hpp"
#include "leaplist/sharded.hpp"
#include "leaplist/skiplist.hpp"
#include "leaplist/txn.hpp"
#include "stm/stm.hpp"
#include "util/random.hpp"

namespace leap::harness {

template <typename MapT>
  requires OrderedMap<MapT>
class MapAdapter {
 public:
  using Map = MapT;
  using K = typename MapT::key_type;
  using V = typename MapT::mapped_type;
  using Entry = typename MapT::value_type;
  static_assert(std::is_integral_v<K> && std::is_integral_v<V>,
                "the harness draws integral keys/values");

  /// True when MapT exposes the composable `*_in` forms (policy::TM).
  static constexpr bool kComposable =
      requires(MapT map, stm::Tx& tx, const K& k, const V& v) {
        map.insert_in(tx, k, v);
        map.erase_in(tx, k);
        map.get_in(tx, k);
        map.for_range_in(tx, k, k, [](const K&, const V&) {});
      };

  explicit MapAdapter(const WorkloadConfig& cfg) : cfg_(cfg) {
    std::vector<Entry> pairs;
    const std::vector<std::uint64_t> keys = preload_keys(cfg_);
    pairs.reserve(keys.size());
    for (const std::uint64_t key : keys) {
      pairs.push_back(Entry{static_cast<K>(key), static_cast<V>(key)});
    }
    for (int i = 0; i < cfg_.lists; ++i) {
      maps_.push_back(make_map(cfg_));
      maps_.back()->bulk_load(pairs);
    }
  }

  /// Sharded map types (MapT::kSharded) get the workload's shard count
  /// and the drawn key window as the partition hint; plain maps take
  /// the leap-list params straight.
  static std::unique_ptr<MapT> make_map(const WorkloadConfig& cfg) {
    if constexpr (requires { MapT::kSharded; }) {
      const auto shards =
          static_cast<std::size_t>(cfg.shards < 1 ? 1 : cfg.shards);
      return std::make_unique<MapT>(
          ShardOptions{.shards = shards, .params = cfg.params},
          static_cast<K>(1),
          static_cast<K>(cfg.key_range + cfg.rq_span_max + 1));
    } else {
      return std::make_unique<MapT>(cfg.params);
    }
  }

  void op_lookup(util::Xoshiro256& rng) {
    const auto value = pick(rng).get(random_key(rng));
    asm volatile("" : : "g"(&value) : "memory");
  }

  void op_range(util::Xoshiro256& rng) {
    const std::uint64_t span =
        cfg_.rq_span_min +
        rng.next_below(cfg_.rq_span_max - cfg_.rq_span_min + 1);
    const K low = random_key(rng);
    auto& buf = scratch();
    buf.clear();
    pick(rng).for_range(low, static_cast<K>(low + span),
                        leap::append_to(buf));
  }

  void op_modify(util::Xoshiro256& rng) {
    const K key = random_key(rng);
    MapT& map = pick(rng);
    if ((rng.next() & 1) != 0) {
      map.insert(key, static_cast<V>(key));
    } else {
      map.erase(key);
    }
  }

  /// Multi-map transaction (Mix::txn_pct): half the draws atomically
  /// move a key between two maps, half take a two-map range snapshot.
  /// dst is drawn distinct from src whenever the workload has more than
  /// one map, so the op measures genuinely cross-map work.
  void op_txn(util::Xoshiro256& rng) {
    const int src_index =
        cfg_.lists == 1
            ? 0
            : static_cast<int>(
                  rng.next_below(static_cast<std::uint64_t>(cfg_.lists)));
    const int dst_index =
        cfg_.lists == 1
            ? 0
            : static_cast<int>((src_index + 1 +
                                rng.next_below(static_cast<std::uint64_t>(
                                    cfg_.lists - 1))) %
                               cfg_.lists);
    MapT& src = *maps_[src_index];
    MapT& dst = *maps_[dst_index];
    if ((rng.next() & 1) != 0) {
      const K key = random_key(rng);
      if constexpr (kComposable) {
        leap::txn([&](stm::Tx& tx) {
          const auto value = src.get_in(tx, key);
          if (!value) return;
          src.erase_in(tx, key);
          dst.insert_in(tx, key, *value);
        });
      } else {
        const auto value = src.get(key);
        if (!value) return;
        src.erase(key);
        dst.insert(key, *value);
      }
    } else {
      const std::uint64_t span =
          cfg_.rq_span_min +
          rng.next_below(cfg_.rq_span_max - cfg_.rq_span_min + 1);
      const K low = random_key(rng);
      const K high = static_cast<K>(low + span);
      auto& buf = scratch();
      buf.clear();
      if constexpr (kComposable) {
        leap::txn([&](stm::Tx& tx) {
          buf.clear();  // the closure may re-run after a conflict
          src.for_range_in(tx, low, high, leap::append_to(buf));
          dst.for_range_in(tx, low, high, leap::append_to(buf));
        });
      } else {
        src.for_range(low, high, leap::append_to(buf));
        dst.for_range(low, high, leap::append_to(buf));
      }
    }
  }

  const WorkloadConfig& config() const { return cfg_; }
  MapT& map(int index) { return *maps_[index]; }

 private:
  static std::vector<Entry>& scratch() {
    static thread_local std::vector<Entry> buf;
    return buf;
  }

  MapT& pick(util::Xoshiro256& rng) {
    return cfg_.lists == 1
               ? *maps_[0]
               : *maps_[rng.next_below(static_cast<std::uint64_t>(
                     cfg_.lists))];
  }

  K random_key(util::Xoshiro256& rng) {
    return static_cast<K>(1 + rng.next_below(cfg_.key_range));
  }

  WorkloadConfig cfg_;
  std::vector<std::unique_ptr<MapT>> maps_;
};

}  // namespace leap::harness
