// Multithreaded measurement loops: throughput (ops/sec over a timed
// window) and per-operation latency histograms.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "harness/workload.hpp"
#include "util/random.hpp"
#include "util/spin_barrier.hpp"

namespace leap::harness {

struct ThroughputResult {
  double ops_per_sec = 0;
  std::uint64_t total_ops = 0;
};

/// Log-domain histogram: 16 sub-buckets per power-of-two nanosecond
/// octave. percentile() returns the lower bound of the matched bucket.
class LatencyHistogram {
 public:
  void record(std::uint64_t nanos) {
    counts_[bucket_of(nanos)] += 1;
    ++samples_;
  }

  void merge(const LatencyHistogram& other) {
    for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
    samples_ += other.samples_;
  }

  std::uint64_t percentile(double q) const {
    if (samples_ == 0) return 0;
    const std::uint64_t target =
        static_cast<std::uint64_t>(q * static_cast<double>(samples_ - 1));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += counts_[i];
      if (seen > target) return lower_bound_of(i);
    }
    return lower_bound_of(kBuckets - 1);
  }

  std::uint64_t samples() const { return samples_; }

 private:
  static constexpr std::size_t kOctaves = 40;
  static constexpr std::size_t kSub = 16;
  static constexpr std::size_t kBuckets = kOctaves * kSub;

  static std::size_t bucket_of(std::uint64_t nanos) {
    if (nanos < kSub) return static_cast<std::size_t>(nanos);
    const int msb = 63 - __builtin_clzll(nanos);
    const std::size_t sub =
        static_cast<std::size_t>((nanos >> (msb - 4)) & (kSub - 1));
    const std::size_t octave = static_cast<std::size_t>(msb - 3);
    const std::size_t index = octave * kSub + sub;
    return index < kBuckets ? index : kBuckets - 1;
  }

  static std::uint64_t lower_bound_of(std::size_t index) {
    if (index < kSub) return index;
    const std::size_t octave = index / kSub;
    const std::size_t sub = index % kSub;
    return (std::uint64_t{1} << (octave + 3)) +
           (static_cast<std::uint64_t>(sub) << (octave - 1));
  }

  std::uint64_t counts_[kBuckets] = {};
  std::uint64_t samples_ = 0;
};

struct LatencyResult {
  LatencyHistogram update;
  LatencyHistogram lookup;
  LatencyHistogram range;
  LatencyHistogram txn;
};

namespace detail {

/// One operation drawn from the mix; returns which kind ran. Adapters
/// own their scratch buffers (per-thread), so the driver stays agnostic
/// of the adapter's typed entry layout.
enum class OpKind { kLookup, kRange, kModify, kTxn };

template <typename Adapter>
OpKind run_one(Adapter& adapter, const Mix& mix, util::Xoshiro256& rng) {
  const int dial = static_cast<int>(rng.next_below(100));
  if (dial < mix.lookup_pct) {
    adapter.op_lookup(rng);
    return OpKind::kLookup;
  }
  if (dial < mix.lookup_pct + mix.range_pct) {
    adapter.op_range(rng);
    return OpKind::kRange;
  }
  if (dial < mix.lookup_pct + mix.range_pct + mix.txn_pct) {
    adapter.op_txn(rng);
    return OpKind::kTxn;
  }
  adapter.op_modify(rng);
  return OpKind::kModify;
}

}  // namespace detail

template <typename Adapter>
ThroughputResult run_throughput(Adapter& adapter, const WorkloadConfig& cfg) {
  const unsigned threads = std::max(1u, cfg.threads);
  std::atomic<bool> stop{false};
  std::vector<std::uint64_t> ops(threads, 0);
  util::SpinBarrier barrier(threads + 1);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      util::Xoshiro256 rng(0xbeef0000 + t);
      std::uint64_t local = 0;
      barrier.arrive_and_wait();
      while (!stop.load(std::memory_order_relaxed)) {
        detail::run_one(adapter, cfg.mix, rng);
        ++local;
      }
      ops[t] = local;
    });
  }
  barrier.arrive_and_wait();
  const auto start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(cfg.duration);
  stop.store(true, std::memory_order_release);
  for (auto& worker : workers) worker.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ThroughputResult result;
  for (const std::uint64_t count : ops) result.total_ops += count;
  result.ops_per_sec =
      seconds > 0 ? static_cast<double>(result.total_ops) / seconds : 0;
  return result;
}

template <typename Adapter>
LatencyResult run_latency(Adapter& adapter, const WorkloadConfig& cfg) {
  const unsigned threads = std::max(1u, cfg.threads);
  std::atomic<bool> stop{false};
  std::vector<LatencyResult> results(threads);
  util::SpinBarrier barrier(threads + 1);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      util::Xoshiro256 rng(0xfeed0000 + t);
      LatencyResult& local = results[t];
      barrier.arrive_and_wait();
      while (!stop.load(std::memory_order_relaxed)) {
        const auto begin = std::chrono::steady_clock::now();
        const detail::OpKind kind =
            detail::run_one(adapter, cfg.mix, rng);
        const auto nanos = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - begin)
                .count());
        switch (kind) {
          case detail::OpKind::kLookup:
            local.lookup.record(nanos);
            break;
          case detail::OpKind::kRange:
            local.range.record(nanos);
            break;
          case detail::OpKind::kModify:
            local.update.record(nanos);
            break;
          case detail::OpKind::kTxn:
            local.txn.record(nanos);
            break;
        }
      }
    });
  }
  barrier.arrive_and_wait();
  std::this_thread::sleep_for(cfg.duration);
  stop.store(true, std::memory_order_release);
  for (auto& worker : workers) worker.join();
  LatencyResult merged;
  for (const LatencyResult& local : results) {
    merged.update.merge(local.update);
    merged.lookup.merge(local.lookup);
    merged.range.merge(local.range);
    merged.txn.merge(local.txn);
  }
  return merged;
}

/// Construct, preload, warm up, and measure: best of `repeats` windows.
template <typename Adapter>
ThroughputResult run_workload(const WorkloadConfig& cfg, int repeats) {
  Adapter adapter(cfg);
  WorkloadConfig warmup = cfg;
  warmup.duration = warmup_duration(cfg.duration);
  (void)run_throughput(adapter, warmup);
  ThroughputResult best;
  for (int r = 0; r < std::max(1, repeats); ++r) {
    const ThroughputResult result = run_throughput(adapter, cfg);
    if (result.ops_per_sec > best.ops_per_sec) best = result;
  }
  return best;
}

}  // namespace leap::harness
