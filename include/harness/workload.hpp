// Workload description shared by the figure benches, plus the knobs
// that let CI shrink every bench to a smoke run (LEAP_BENCH_SMOKE=1).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <vector>

#include "leaplist/leaplist.hpp"

namespace leap::harness {

/// Operation mix in percent; the remainder is modify (50% insert /
/// 50% erase at the driver). `txn_pct` draws multi-list transactions
/// (an atomic cross-list key move via the composable leap::txn API, or
/// two independent single-list ops on variants without one).
struct Mix {
  int lookup_pct = 0;
  int range_pct = 0;
  int txn_pct = 0;

  static Mix modify_only() { return Mix{0, 0, 0}; }
  static Mix lookup_only() { return Mix{100, 0, 0}; }
  static Mix range_only() { return Mix{0, 100, 0}; }
  static Mix txn_only() { return Mix{0, 0, 100}; }
  /// The paper's mixed workload: 40% lookup / 40% range / 20% modify.
  static Mix read_dominated() { return Mix{40, 40, 0}; }
  static Mix lookup_modify(int lookup_pct) { return Mix{lookup_pct, 0, 0}; }
  static Mix range_modify(int range_pct) { return Mix{0, range_pct, 0}; }
  /// Multi-list workload: lookups, cross-list snapshots, cross-list
  /// moves, and single-list modifies.
  static Mix multi_list(int lookup_pct, int range_pct, int txn_pct) {
    return Mix{lookup_pct, range_pct, txn_pct};
  }
};

struct WorkloadConfig {
  int lists = 1;
  /// Shards per map: > 1 makes the adapter build each map as a
  /// leap::ShardedMap partitioned over [1, key_range + rq_span_max + 1]
  /// (ignored for plain-map instantiations, which are always S = 1).
  int shards = 1;
  core::Params params{};
  std::uint64_t key_range = 100000;     // keys drawn from [1, key_range]
  std::uint64_t rq_span_min = 1000;
  std::uint64_t rq_span_max = 2000;
  std::size_t initial_size = 100000;    // preloaded pairs per list
  Mix mix{};
  unsigned threads = 1;
  std::chrono::milliseconds duration{200};
};

/// The preload population every adapter shares: distinct keys spread
/// evenly across [1, key_range], jitter-free, so typed facades and raw
/// engines measure over the identical data (abl_map's parity guard
/// depends on this being the single source of truth).
inline std::vector<std::uint64_t> preload_keys(const WorkloadConfig& cfg) {
  std::vector<std::uint64_t> keys;
  keys.reserve(cfg.initial_size);
  const std::uint64_t range = std::max<std::uint64_t>(cfg.key_range, 1);
  for (std::size_t j = 0; j < cfg.initial_size; ++j) {
    const std::uint64_t key =
        1 + (j * range) / std::max<std::size_t>(cfg.initial_size, 1);
    if (!keys.empty() && keys.back() == key) continue;
    keys.push_back(key);
  }
  return keys;
}

/// True when LEAP_BENCH_SMOKE is set: every bench shrinks to seconds.
bool smoke_mode();

/// Measurement window: `preferred` normally; tiny in smoke mode;
/// LEAP_BENCH_MS overrides both.
std::chrono::milliseconds bench_duration(std::chrono::milliseconds preferred);

/// Repeat count (best-of): `preferred` normally, 1 in smoke mode.
int bench_repeats(int preferred);

/// Thread counts to sweep: powers of two up to the hardware (capped by
/// LEAP_BENCH_MAX_THREADS); {1, 2} in smoke mode so concurrency is
/// still exercised. Never empty — .back() is the max thread count.
std::vector<unsigned> thread_sweep();

/// Warm-up window preceding a measurement of length `measured`.
std::chrono::milliseconds warmup_duration(std::chrono::milliseconds measured);

}  // namespace leap::harness
