// Plain-text result tables and figure banners shared by every bench.
#pragma once

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace leap::harness {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print(std::ostream& out) const {
    std::vector<std::size_t> widths(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    print_row(out, headers_, widths);
    std::size_t rule = 0;
    for (const std::size_t w : widths) rule += w + 2;
    out << std::string(rule, '-') << "\n";
    for (const auto& row : rows_) print_row(out, row, widths);
    out.flush();
  }

  /// Throughput with an engineering suffix: 12.3M, 456K, 789.
  static std::string format_ops(double ops) {
    std::ostringstream out;
    out << std::fixed;
    if (ops >= 1e6) {
      out << std::setprecision(2) << ops / 1e6 << "M";
    } else if (ops >= 1e3) {
      out << std::setprecision(1) << ops / 1e3 << "K";
    } else {
      out << std::setprecision(0) << ops;
    }
    return out.str();
  }

  static std::string format_ratio(double ratio) {
    std::ostringstream out;
    out << std::fixed << std::setprecision(2) << ratio << "x";
    return out.str();
  }

 private:
  static void print_row(std::ostream& out, const std::vector<std::string>& row,
                        const std::vector<std::size_t>& widths) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::size_t width = c < widths.size() ? widths[c] : row[c].size();
      out << std::left << std::setw(static_cast<int>(width) + 2) << row[c];
    }
    out << "\n";
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline void print_figure_header(std::ostream& out, const std::string& id,
                                const std::string& name,
                                const std::string& expectation) {
  out << "\n== " << id << " — " << name << "\n"
      << "   expectation: " << expectation << "\n\n";
}

}  // namespace leap::harness
