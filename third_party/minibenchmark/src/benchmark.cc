#include "benchmark/benchmark.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

namespace benchmark {
namespace internal {

namespace {

std::vector<std::unique_ptr<Benchmark>>& registry() {
  static std::vector<std::unique_ptr<Benchmark>> benchmarks;
  return benchmarks;
}

double min_run_seconds() {
  if (std::getenv("LEAP_BENCH_SMOKE") != nullptr) return 0.002;
  return 0.05;
}

struct RunResult {
  double ns_per_iter = 0;
  double items_per_sec = 0;
  std::int64_t iterations = 0;
};

RunResult run_case(Function fn, const std::vector<std::int64_t>& args) {
  const double min_seconds = min_run_seconds();
  std::int64_t iterations = 1;
  while (true) {
    State state(iterations, args);
    const auto start = std::chrono::steady_clock::now();
    fn(state);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (seconds >= min_seconds || iterations >= (std::int64_t{1} << 40)) {
      RunResult result;
      result.iterations = iterations;
      result.ns_per_iter =
          seconds * 1e9 / static_cast<double>(iterations);
      if (state.items_processed() > 0 && seconds > 0) {
        result.items_per_sec =
            static_cast<double>(state.items_processed()) / seconds;
      }
      return result;
    }
    const double scale =
        seconds > 0 ? min_seconds / seconds * 1.4 : 10.0;
    const auto next = static_cast<std::int64_t>(
        static_cast<double>(iterations) * (scale < 10.0 ? 10.0 : scale));
    iterations = next > iterations ? next : iterations * 10;
  }
}

}  // namespace

Benchmark::Benchmark(std::string name, Function fn)
    : name_(std::move(name)), fn_(fn) {}

Benchmark* Benchmark::Arg(std::int64_t arg) {
  args_.push_back(arg);
  return this;
}

Benchmark* RegisterBenchmarkInternal(const char* name, Function fn) {
  registry().push_back(std::make_unique<Benchmark>(name, fn));
  return registry().back().get();
}

int RunAllBenchmarks() {
  std::printf("%-40s %15s %15s %15s\n", "benchmark", "ns/op", "iters",
              "items/s");
  std::printf("%s\n", std::string(88, '-').c_str());
  for (const auto& bench : registry()) {
    std::vector<std::vector<std::int64_t>> runs;
    if (bench->args_.empty()) {
      runs.push_back({});
    } else {
      for (const std::int64_t arg : bench->args_) runs.push_back({arg});
    }
    for (const auto& args : runs) {
      std::string label = bench->name_;
      if (!args.empty()) label += "/" + std::to_string(args[0]);
      const RunResult result = run_case(bench->fn_, args);
      if (result.items_per_sec > 0) {
        std::printf("%-40s %15.1f %15lld %15.0f\n", label.c_str(),
                    result.ns_per_iter,
                    static_cast<long long>(result.iterations),
                    result.items_per_sec);
      } else {
        std::printf("%-40s %15.1f %15lld %15s\n", label.c_str(),
                    result.ns_per_iter,
                    static_cast<long long>(result.iterations), "-");
      }
    }
  }
  return 0;
}

}  // namespace internal
}  // namespace benchmark
