// Minimal, dependency-free implementation of the google/benchmark API
// subset the abl_* microbenchmarks use. Used when the real library is
// not available (configure with -DLEAP_USE_SYSTEM_BENCHMARK=ON to link
// the system one instead). Honors LEAP_BENCH_SMOKE for short CI runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace benchmark {

class State {
 public:
  State(std::int64_t iterations, std::vector<std::int64_t> args)
      : iterations_(iterations), args_(std::move(args)) {}

  class iterator {
   public:
    explicit iterator(std::int64_t remaining) : remaining_(remaining) {}
    bool operator!=(const iterator& other) const {
      return remaining_ != other.remaining_;
    }
    iterator& operator++() {
      --remaining_;
      return *this;
    }
    int operator*() const { return 0; }

   private:
    std::int64_t remaining_;
  };

  iterator begin() { return iterator(iterations_); }
  iterator end() { return iterator(0); }

  std::int64_t range(std::size_t index = 0) const {
    return index < args_.size() ? args_[index] : 0;
  }

  std::int64_t iterations() const { return iterations_; }

  void SetItemsProcessed(std::int64_t items) { items_processed_ = items; }
  std::int64_t items_processed() const { return items_processed_; }

 private:
  std::int64_t iterations_;
  std::vector<std::int64_t> args_;
  std::int64_t items_processed_ = 0;
};

using Function = void (*)(State&);

namespace internal {

class Benchmark {
 public:
  Benchmark(std::string name, Function fn);
  Benchmark* Arg(std::int64_t arg);

 private:
  friend int RunAllBenchmarks();
  std::string name_;
  Function fn_;
  std::vector<std::int64_t> args_;
};

Benchmark* RegisterBenchmarkInternal(const char* name, Function fn);
int RunAllBenchmarks();

}  // namespace internal

template <typename T>
inline void DoNotOptimize(T&& value) {
  asm volatile("" : : "g"(&value) : "memory");
}

inline void ClobberMemory() { asm volatile("" : : : "memory"); }

}  // namespace benchmark

#define BENCHMARK_PRIVATE_CONCAT(a, b) a##b
#define BENCHMARK_PRIVATE_NAME(line) \
  BENCHMARK_PRIVATE_CONCAT(benchmark_registered_, line)

#define BENCHMARK(fn)                                             \
  static ::benchmark::internal::Benchmark* BENCHMARK_PRIVATE_NAME( \
      __LINE__) = ::benchmark::internal::RegisterBenchmarkInternal(#fn, fn)

#define BENCHMARK_MAIN()                                    \
  int main() { return ::benchmark::internal::RunAllBenchmarks(); }
