// leapd — the standalone server binary over leap::net::Server.
//
//   leapd [--port N] [--workers N] [--shards N] [--keys N]
//         [--node-size N] [--batch N]
//         [--max-queue N] [--max-global N] [--accept-pause N]
//         [--accept-backoff-ms N] [--stats-interval SECS]
//         [--data-dir PATH] [--fsync-mode always|group|off]
//         [--checkpoint-bytes N] [--fault-spec point:nth:kind[:sticky]]
//
// Flags are parsed strictly: an unknown flag, a missing value, or a
// non-numeric value for a numeric flag prints usage to stderr and
// exits 2 — a typo'd --fsink-mode must never silently run a
// misconfigured server.
//
// --fault-spec routes the store's syscalls through a FaultIo
// (leaplist/store/io.hpp) armed with the given spec — the smoke
// harness uses it to prove the fail-stop path end to end (e.g.
// "write:10:enospc:sticky" makes every WAL write from the 10th on
// fail ENOSPC; writes then answer Err::kStoreFailed while reads keep
// serving). It requires --data-dir.
//
// Admission control defaults ON here (the library's ServerOptions
// defaults are OFF so embedded/test servers are unaffected); pass 0 to
// any cap flag to disable it. --data-dir enables the durable tier
// (leaplist/store/store.hpp): recovery replays before the listen line
// prints, and writes are acked per --fsync-mode (default group).
//
// Prints one parseable line once listening:
//   leapd: listening on 127.0.0.1:<port> (<workers> workers, <shards> shards)
// then serves until SIGINT/SIGTERM, shuts down cleanly, and reports:
//   leapd: served <ops> ops over <conns> connections (<errs> protocol
//   errors); clean shutdown
// scripts/net_smoke.sh keys off both lines. While serving, a stats
// line prints every --stats-interval seconds (0 disables):
//   leapd: stats ops=... shed=... queue=<now>/<hwm> retries=...
//   batches=... pauses=... emfile=...
// and one final such line follows the shutdown report. With --data-dir
// a second line accompanies each:
//   leapd: store stats wal_appends=... wal_fsyncs=... group_ops=...
//   flushes=... runs=... bloom_neg=... cold_hits=... recovered=...
//   fail_stop=... corrupt=... ckpt_retries=...
#include <signal.h>
#include <time.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>

#include "leaplist/net/server.hpp"
#include "leaplist/store/io.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--port N] [--workers N] [--shards N] [--keys N]\n"
      "          [--node-size N] [--batch N]\n"
      "          [--max-queue N] [--max-global N] [--accept-pause N]\n"
      "          [--accept-backoff-ms N] [--stats-interval SECS]\n"
      "          [--data-dir PATH] [--fsync-mode always|group|off]\n"
      "          [--checkpoint-bytes N]\n"
      "          [--fault-spec point:nth:kind[:sticky]]\n",
      argv0);
}

/// Strict command-line state: every flag either consumes a valid value
/// or fails the whole invocation.
struct Args {
  int argc;
  char** argv;
  int at = 1;
  bool ok = true;

  bool done() const { return !ok || at >= argc; }

  bool is(const char* flag) const {
    return std::strcmp(argv[at], flag) == 0;
  }

  void fail(const char* what) {
    std::fprintf(stderr, "leapd: %s '%s'\n", what, argv[at]);
    ok = false;
  }

  /// Consume the flag at `at` plus its numeric value.
  bool num(const char* flag, long long* out) {
    if (!is(flag)) return false;
    if (at + 1 >= argc) {
      fail("missing value for");
      return true;
    }
    char* end = nullptr;
    errno = 0;
    const long long v = std::strtoll(argv[at + 1], &end, 10);
    if (errno != 0 || end == argv[at + 1] || *end != '\0') {
      fail("non-numeric value for");
      return true;
    }
    *out = v;
    at += 2;
    return true;
  }

  /// Consume the flag at `at` plus its string value.
  bool str(const char* flag, std::string* out) {
    if (!is(flag)) return false;
    if (at + 1 >= argc) {
      fail("missing value for");
      return true;
    }
    *out = argv[at + 1];
    at += 2;
    return true;
  }
};

void print_stats_line(const leap::net::ServerStats& s, bool store_on) {
  std::printf(
      "leapd: stats ops=%llu shed=%llu queue=%llu/%llu retries=%llu "
      "batches=%llu pauses=%llu emfile=%llu\n",
      static_cast<unsigned long long>(s.ops),
      static_cast<unsigned long long>(s.shed),
      static_cast<unsigned long long>(s.queued_now),
      static_cast<unsigned long long>(s.queue_hwm),
      static_cast<unsigned long long>(s.stm_retries),
      static_cast<unsigned long long>(s.batches),
      static_cast<unsigned long long>(s.accept_pauses),
      static_cast<unsigned long long>(s.emfile_sheds));
  if (store_on) {
    std::printf(
        "leapd: store stats wal_appends=%llu wal_fsyncs=%llu "
        "group_ops=%llu flushes=%llu runs=%llu bloom_neg=%llu "
        "cold_hits=%llu recovered=%llu fail_stop=%llu corrupt=%llu "
        "ckpt_retries=%llu\n",
        static_cast<unsigned long long>(s.wal_appends),
        static_cast<unsigned long long>(s.wal_fsyncs),
        static_cast<unsigned long long>(s.wal_group_ops),
        static_cast<unsigned long long>(s.store_flushes),
        static_cast<unsigned long long>(s.store_runs),
        static_cast<unsigned long long>(s.bloom_negatives),
        static_cast<unsigned long long>(s.cold_hits),
        static_cast<unsigned long long>(s.recovered_ops),
        static_cast<unsigned long long>(s.store_fail_stop),
        static_cast<unsigned long long>(s.corrupt_blocks),
        static_cast<unsigned long long>(s.checkpoint_retries));
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  leap::net::ServerOptions opts;
  // leapd defaults (admission ON; the library defaults stay OFF).
  long long port = 0, workers = 2, shards = 8, keys = 1'000'000;
  long long node_size = 0, batch = 128;
  long long max_queue = 1024, max_global = 8192, accept_pause = 16384;
  long long accept_backoff_ms = 100, stats_interval = 10;
  long long checkpoint_bytes = 4 << 20;
  std::string data_dir, fsync_mode_text = "group", fault_spec_text;

  Args args{argc, argv};
  while (!args.done()) {
    if (args.num("--port", &port) || args.num("--workers", &workers) ||
        args.num("--shards", &shards) || args.num("--keys", &keys) ||
        args.num("--node-size", &node_size) ||
        args.num("--batch", &batch) ||
        args.num("--max-queue", &max_queue) ||
        args.num("--max-global", &max_global) ||
        args.num("--accept-pause", &accept_pause) ||
        args.num("--accept-backoff-ms", &accept_backoff_ms) ||
        args.num("--stats-interval", &stats_interval) ||
        args.num("--checkpoint-bytes", &checkpoint_bytes) ||
        args.str("--data-dir", &data_dir) ||
        args.str("--fsync-mode", &fsync_mode_text) ||
        args.str("--fault-spec", &fault_spec_text)) {
      continue;
    }
    args.fail("unknown flag");
  }
  const auto fsync_mode = leap::store::parse_fsync_mode(fsync_mode_text);
  if (!fsync_mode) {
    std::fprintf(stderr, "leapd: bad --fsync-mode '%s' (always|group|off)\n",
                 fsync_mode_text.c_str());
    args.ok = false;
  }
  std::optional<leap::store::FaultSpec> fault_spec;
  if (!fault_spec_text.empty()) {
    fault_spec = leap::store::parse_fault_spec(fault_spec_text);
    if (!fault_spec) {
      std::fprintf(stderr,
                   "leapd: bad --fault-spec '%s' "
                   "(point:nth:kind[:sticky])\n",
                   fault_spec_text.c_str());
      args.ok = false;
    } else if (data_dir.empty()) {
      std::fprintf(stderr, "leapd: --fault-spec requires --data-dir\n");
      args.ok = false;
    }
  }
  if (!args.ok) {
    usage(argv[0]);
    return 2;
  }

  opts.port = static_cast<std::uint16_t>(port);
  opts.workers = static_cast<unsigned>(workers);
  opts.shards = static_cast<std::size_t>(shards);
  opts.key_hi = keys;
  opts.max_batch = static_cast<std::size_t>(batch);
  if (node_size > 0) {
    opts.params.node_size = static_cast<std::size_t>(node_size);
  }
  opts.max_queue = static_cast<std::size_t>(max_queue);
  opts.max_global = static_cast<std::size_t>(max_global);
  opts.accept_pause = static_cast<std::size_t>(accept_pause);
  opts.accept_backoff_ms = static_cast<unsigned>(accept_backoff_ms);
  opts.data_dir = data_dir;
  opts.fsync_mode = *fsync_mode;
  opts.checkpoint_bytes = static_cast<std::size_t>(checkpoint_bytes);
  // Declared before `server` below so it strictly outlives the Server
  // (ServerOptions::store_io is a borrowed pointer).
  std::unique_ptr<leap::store::FaultIo> fault_io;
  if (fault_spec) {
    fault_io = std::make_unique<leap::store::FaultIo>(
        leap::store::real_io());
    fault_io->arm(*fault_spec);
    opts.store_io = fault_io.get();
    std::printf("leapd: fault injection armed: %s\n",
                fault_spec_text.c_str());
  }
  const bool store_on = !data_dir.empty();

  // Block the shutdown signals before spawning workers (they inherit
  // the mask), then wait for one synchronously — no async handler.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);
  signal(SIGPIPE, SIG_IGN);

  leap::net::Server server(opts);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "leapd: start failed: %s\n", error.c_str());
    return 1;
  }
  if (store_on) {
    const leap::net::ServerStats boot = server.stats();
    std::printf("leapd: store open dir=%s fsync=%s recovered=%llu "
                "runs=%llu\n",
                data_dir.c_str(),
                leap::store::fsync_mode_name(*fsync_mode),
                static_cast<unsigned long long>(boot.recovered_ops),
                static_cast<unsigned long long>(boot.store_runs));
  }
  std::printf("leapd: listening on 127.0.0.1:%u (%u workers, %zu shards)\n",
              static_cast<unsigned>(server.port()), opts.workers,
              opts.shards);
  std::fflush(stdout);

  // Wait for a shutdown signal, waking every --stats-interval seconds
  // to print a stats line (sigtimedwait keeps it all on this thread).
  for (;;) {
    if (stats_interval <= 0) {
      int sig = 0;
      sigwait(&sigs, &sig);
      break;
    }
    timespec ts{};
    ts.tv_sec = static_cast<time_t>(stats_interval);
    const int sig = sigtimedwait(&sigs, nullptr, &ts);
    if (sig > 0) break;
    if (errno == EAGAIN) {  // interval elapsed, no signal yet
      print_stats_line(server.stats(), store_on);
      continue;
    }
    if (errno == EINTR) continue;
    break;
  }
  server.stop();
  const leap::net::ServerStats stats = server.stats();
  std::printf(
      "leapd: served %llu ops over %llu connections (%llu protocol "
      "errors); clean shutdown\n",
      static_cast<unsigned long long>(stats.ops),
      static_cast<unsigned long long>(stats.accepted),
      static_cast<unsigned long long>(stats.errored));
  print_stats_line(stats, store_on);
  return 0;
}
