// leapd — the standalone server binary over leap::net::Server.
//
//   leapd [--port N] [--workers N] [--shards N] [--keys N]
//         [--node-size N] [--batch N]
//
// Prints one parseable line once listening:
//   leapd: listening on 127.0.0.1:<port> (<workers> workers, <shards> shards)
// then serves until SIGINT/SIGTERM, shuts down cleanly, and reports:
//   leapd: served <ops> ops over <conns> connections (<errs> protocol
//   errors); clean shutdown
// scripts/net_smoke.sh keys off both lines.
#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "leaplist/net/server.hpp"

namespace {

long long arg_value(int argc, char** argv, const char* flag,
                    long long fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      return std::atoll(argv[i + 1]);
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  leap::net::ServerOptions opts;
  opts.port =
      static_cast<std::uint16_t>(arg_value(argc, argv, "--port", 0));
  opts.workers =
      static_cast<unsigned>(arg_value(argc, argv, "--workers", 2));
  opts.shards =
      static_cast<std::size_t>(arg_value(argc, argv, "--shards", 8));
  opts.key_hi = arg_value(argc, argv, "--keys", 1'000'000);
  opts.max_batch =
      static_cast<std::size_t>(arg_value(argc, argv, "--batch", 128));
  const long long node_size = arg_value(argc, argv, "--node-size", 0);
  if (node_size > 0) {
    opts.params.node_size = static_cast<std::size_t>(node_size);
  }

  // Block the shutdown signals before spawning workers (they inherit
  // the mask), then wait for one synchronously — no async handler.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);
  signal(SIGPIPE, SIG_IGN);

  leap::net::Server server(opts);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "leapd: start failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("leapd: listening on 127.0.0.1:%u (%u workers, %zu shards)\n",
              static_cast<unsigned>(server.port()), opts.workers,
              opts.shards);
  std::fflush(stdout);

  int sig = 0;
  sigwait(&sigs, &sig);
  server.stop();
  const leap::net::ServerStats stats = server.stats();
  std::printf(
      "leapd: served %llu ops over %llu connections (%llu protocol "
      "errors); clean shutdown\n",
      static_cast<unsigned long long>(stats.ops),
      static_cast<unsigned long long>(stats.accepted),
      static_cast<unsigned long long>(stats.errored));
  return 0;
}
