// leapd — the standalone server binary over leap::net::Server.
//
//   leapd [--port N] [--workers N] [--shards N] [--keys N]
//         [--node-size N] [--batch N]
//         [--max-queue N] [--max-global N] [--accept-pause N]
//         [--accept-backoff-ms N] [--stats-interval SECS]
//
// Admission control defaults ON here (the library's ServerOptions
// defaults are OFF so embedded/test servers are unaffected); pass 0 to
// any cap flag to disable it.
//
// Prints one parseable line once listening:
//   leapd: listening on 127.0.0.1:<port> (<workers> workers, <shards> shards)
// then serves until SIGINT/SIGTERM, shuts down cleanly, and reports:
//   leapd: served <ops> ops over <conns> connections (<errs> protocol
//   errors); clean shutdown
// scripts/net_smoke.sh keys off both lines. While serving, a stats
// line prints every --stats-interval seconds (0 disables):
//   leapd: stats ops=... shed=... queue=<now>/<hwm> retries=...
//   batches=... pauses=... emfile=...
// and one final such line follows the shutdown report.
#include <signal.h>
#include <time.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "leaplist/net/server.hpp"

namespace {

long long arg_value(int argc, char** argv, const char* flag,
                    long long fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      return std::atoll(argv[i + 1]);
    }
  }
  return fallback;
}

void print_stats_line(const leap::net::ServerStats& s) {
  std::printf(
      "leapd: stats ops=%llu shed=%llu queue=%llu/%llu retries=%llu "
      "batches=%llu pauses=%llu emfile=%llu\n",
      static_cast<unsigned long long>(s.ops),
      static_cast<unsigned long long>(s.shed),
      static_cast<unsigned long long>(s.queued_now),
      static_cast<unsigned long long>(s.queue_hwm),
      static_cast<unsigned long long>(s.stm_retries),
      static_cast<unsigned long long>(s.batches),
      static_cast<unsigned long long>(s.accept_pauses),
      static_cast<unsigned long long>(s.emfile_sheds));
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  leap::net::ServerOptions opts;
  opts.port =
      static_cast<std::uint16_t>(arg_value(argc, argv, "--port", 0));
  opts.workers =
      static_cast<unsigned>(arg_value(argc, argv, "--workers", 2));
  opts.shards =
      static_cast<std::size_t>(arg_value(argc, argv, "--shards", 8));
  opts.key_hi = arg_value(argc, argv, "--keys", 1'000'000);
  opts.max_batch =
      static_cast<std::size_t>(arg_value(argc, argv, "--batch", 128));
  const long long node_size = arg_value(argc, argv, "--node-size", 0);
  if (node_size > 0) {
    opts.params.node_size = static_cast<std::size_t>(node_size);
  }
  opts.max_queue =
      static_cast<std::size_t>(arg_value(argc, argv, "--max-queue", 1024));
  opts.max_global =
      static_cast<std::size_t>(arg_value(argc, argv, "--max-global", 8192));
  opts.accept_pause = static_cast<std::size_t>(
      arg_value(argc, argv, "--accept-pause", 16384));
  opts.accept_backoff_ms = static_cast<unsigned>(
      arg_value(argc, argv, "--accept-backoff-ms", 100));
  const long long stats_interval =
      arg_value(argc, argv, "--stats-interval", 10);

  // Block the shutdown signals before spawning workers (they inherit
  // the mask), then wait for one synchronously — no async handler.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);
  signal(SIGPIPE, SIG_IGN);

  leap::net::Server server(opts);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "leapd: start failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("leapd: listening on 127.0.0.1:%u (%u workers, %zu shards)\n",
              static_cast<unsigned>(server.port()), opts.workers,
              opts.shards);
  std::fflush(stdout);

  // Wait for a shutdown signal, waking every --stats-interval seconds
  // to print a stats line (sigtimedwait keeps it all on this thread).
  for (;;) {
    if (stats_interval <= 0) {
      int sig = 0;
      sigwait(&sigs, &sig);
      break;
    }
    timespec ts{};
    ts.tv_sec = static_cast<time_t>(stats_interval);
    const int sig = sigtimedwait(&sigs, nullptr, &ts);
    if (sig > 0) break;
    if (errno == EAGAIN) {  // interval elapsed, no signal yet
      print_stats_line(server.stats());
      continue;
    }
    if (errno == EINTR) continue;
    break;
  }
  server.stop();
  const leap::net::ServerStats stats = server.stats();
  std::printf(
      "leapd: served %llu ops over %llu connections (%llu protocol "
      "errors); clean shutdown\n",
      static_cast<unsigned long long>(stats.ops),
      static_cast<unsigned long long>(stats.accepted),
      static_cast<unsigned long long>(stats.errored));
  print_stats_line(stats);
  return 0;
}
