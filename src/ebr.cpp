#include "util/ebr.hpp"

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <new>
#include <vector>

#if defined(__SANITIZE_ADDRESS__)
#define LEAP_POOL_PASSTHROUGH 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define LEAP_POOL_PASSTHROUGH 1
#endif
#endif
#ifndef LEAP_POOL_PASSTHROUGH
#define LEAP_POOL_PASSTHROUGH 0
#endif

namespace leap::util::ebr {

namespace detail {

namespace {

constexpr std::uint64_t kIdle = ~std::uint64_t{0};
// Epoch-advance attempt cadence (in retires). Small enough that bins
// drain in bursts the recycling pool's per-class cache can absorb
// (see kMaxCachedPerClass below) instead of overflowing to the heap.
constexpr std::size_t kCollectThreshold = 64;

struct Retired {
  void* ptr;
  void (*deleter)(void*);
};

struct Bin {
  std::uint64_t epoch = 0;
  std::vector<Retired> items;
};

}  // namespace

struct ThreadRec {
  std::atomic<std::uint64_t> epoch{kIdle};
  std::atomic<bool> in_use{false};
  int depth = 0;
  // Bins are touched only by the owning thread, or by collect() while it
  // holds every rec quiescent under the registry mutex.
  Bin bins[3];
  std::size_t retired_since_collect = 0;
  ThreadRec* next = nullptr;
};

namespace {

std::atomic<std::uint64_t> g_epoch{0};
std::atomic<ThreadRec*> g_registry{nullptr};
std::mutex g_collect_mutex;
std::atomic<std::size_t> g_pending{0};

void free_bin(Bin& bin) {
  for (const Retired& r : bin.items) r.deleter(r.ptr);
  g_pending.fetch_sub(bin.items.size(), std::memory_order_relaxed);
  bin.items.clear();
}

/// True when every registered record is idle or already at `epoch`.
bool all_caught_up(std::uint64_t epoch) {
  for (ThreadRec* rec = g_registry.load(std::memory_order_acquire);
       rec != nullptr; rec = rec->next) {
    const std::uint64_t seen = rec->epoch.load(std::memory_order_acquire);
    if (seen != kIdle && seen != epoch) return false;
  }
  return true;
}

void try_advance() {
  std::uint64_t epoch = g_epoch.load(std::memory_order_acquire);
  if (!all_caught_up(epoch)) return;
  g_epoch.compare_exchange_strong(epoch, epoch + 1,
                                  std::memory_order_acq_rel);
}

ThreadRec* acquire_rec() {
  // Serialized with collect(): a rec observed !in_use there cannot be
  // re-acquired (and have its bins pushed to) mid-drain.
  std::lock_guard<std::mutex> lock(g_collect_mutex);
  for (ThreadRec* rec = g_registry.load(std::memory_order_acquire);
       rec != nullptr; rec = rec->next) {
    bool expected = false;
    if (rec->in_use.compare_exchange_strong(expected, true,
                                            std::memory_order_acq_rel)) {
      return rec;
    }
  }
  auto* rec = new ThreadRec();
  rec->in_use.store(true, std::memory_order_relaxed);
  ThreadRec* head = g_registry.load(std::memory_order_acquire);
  do {
    rec->next = head;
  } while (!g_registry.compare_exchange_weak(head, rec,
                                             std::memory_order_acq_rel));
  return rec;
}

struct RecHandle {
  ThreadRec* rec = acquire_rec();
  ~RecHandle() {
    // The thread is exiting: its guards are gone. Leave the retired
    // items in place (tagged with their epochs) and release the record
    // for reuse; a later collect() frees them.
    rec->epoch.store(kIdle, std::memory_order_release);
    rec->in_use.store(false, std::memory_order_release);
  }
};

}  // namespace

ThreadRec& local_rec() {
  thread_local RecHandle handle;
  return *handle.rec;
}

void pin(ThreadRec& rec) {
  if (rec.depth++ > 0) return;
  std::uint64_t epoch = g_epoch.load(std::memory_order_acquire);
  // Publish-and-recheck so a concurrent advance cannot leave us pinned
  // to a stale epoch unnoticed.
  while (true) {
    rec.epoch.store(epoch, std::memory_order_seq_cst);
    const std::uint64_t now = g_epoch.load(std::memory_order_seq_cst);
    if (now == epoch) break;
    epoch = now;
  }
}

void unpin(ThreadRec& rec) {
  assert(rec.depth > 0);
  if (--rec.depth == 0) rec.epoch.store(kIdle, std::memory_order_release);
}

int pin_depth(const ThreadRec& rec) { return rec.depth; }

void retire(ThreadRec& rec, void* ptr, void (*deleter)(void*)) {
  assert(rec.depth > 0 && "ebr::retire requires an active Guard");
  // Tag with the CURRENT GLOBAL epoch, not the pinned one: the retirer
  // may be pinned at e while the epoch is already e+1, and a reader
  // continuously pinned at e+1 since before the unlink may still hold a
  // reference when a bin tagged e hits the +2 drain rule. With a global
  // tag g, any such reader pinned <= g blocks the g+1 -> g+2 advance,
  // so draining at global >= g+2 is safe.
  const std::uint64_t epoch = g_epoch.load(std::memory_order_acquire);
  Bin& bin = rec.bins[epoch % 3];
  if (bin.epoch != epoch) {
    // This bin holds items from epoch-3 (or is empty): two full epochs
    // have passed, so they are unreachable by every pinned thread.
    free_bin(bin);
    bin.epoch = epoch;
  }
  bin.items.push_back({ptr, deleter});
  g_pending.fetch_add(1, std::memory_order_relaxed);
  if (++rec.retired_since_collect >= kCollectThreshold) {
    rec.retired_since_collect = 0;
    try_advance();
    // Opportunistically drain own bins that have aged out.
    const std::uint64_t now = g_epoch.load(std::memory_order_acquire);
    for (Bin& b : rec.bins) {
      if (!b.items.empty() && b.epoch + 2 <= now) free_bin(b);
    }
  }
}

}  // namespace detail

void retire(void* ptr, void (*deleter)(void*)) {
  detail::retire(detail::local_rec(), ptr, deleter);
}

void collect() {
  using namespace detail;
  ThreadRec& own = local_rec();
  std::lock_guard<std::mutex> lock(g_collect_mutex);
  // Quiescent fast path — what structure destructors hit after worker
  // threads join: nothing is pinned, so every retired object is
  // unreachable. Drain the caller's own bins plus those of released
  // (exited) thread records; acquire_rec holds the same mutex, so a
  // record observed !in_use cannot be racing us with new pushes. Bins
  // of other still-registered live threads are skipped — their owners
  // drain them on their next retire.
  bool quiescent = true;
  for (ThreadRec* rec = g_registry.load(std::memory_order_acquire);
       rec != nullptr; rec = rec->next) {
    if (rec->epoch.load(std::memory_order_seq_cst) != kIdle) {
      quiescent = false;
      break;
    }
  }
  if (quiescent) {
    for (ThreadRec* rec = g_registry.load(std::memory_order_acquire);
         rec != nullptr; rec = rec->next) {
      if (rec == &own || !rec->in_use.load(std::memory_order_acquire)) {
        for (Bin& bin : rec->bins) free_bin(bin);
      }
    }
    return;
  }
  // Otherwise just nudge the epoch along; owners drain their own bins.
  try_advance();
}

std::size_t pending_count() {
  return detail::g_pending.load(std::memory_order_relaxed);
}

// --- Node recycling pool ----------------------------------------------

namespace {

constexpr std::size_t kClassStep = 64;
constexpr std::size_t kNumClasses = 1024;  // blocks up to 64 KiB pooled
// Must absorb a whole EBR bin drain (up to ~3 × kCollectThreshold
// retires land at once) or the overflow leaks back to the heap and the
// pool runs dry between bursts.
constexpr std::size_t kMaxCachedPerClass = 512;
constexpr unsigned char kPoisonByte = 0xEB;
#ifdef NDEBUG
constexpr bool kPoison = false;
#else
constexpr bool kPoison = !LEAP_POOL_PASSTHROUGH;
#endif

std::atomic<std::uint64_t> g_pool_hits{0};
std::atomic<std::uint64_t> g_pool_misses{0};

/// Size class of `bytes`, 1-based; 0 means "not pooled" (oversized).
std::size_t class_of(std::size_t bytes) {
  const std::size_t cls = (bytes + kClassStep - 1) / kClassStep;
  return cls <= kNumClasses ? std::max<std::size_t>(cls, 1) : 0;
}

struct FreeBlock {
  FreeBlock* next;
};

bool poison_intact(const FreeBlock* block, std::size_t cls) {
  const auto* bytes = reinterpret_cast<const unsigned char*>(block);
  for (std::size_t i = sizeof(FreeBlock); i < cls * kClassStep; ++i) {
    if (bytes[i] != kPoisonByte) return false;
  }
  return true;
}

// The pool object lives behind a trivially-destructible thread_local
// pointer pair, so pool_free stays callable during thread teardown
// (e.g. a static structure destroyed after this thread's pool): once
// the pool is destroyed, blocks fall through to the heap.
struct ThreadPool;
thread_local ThreadPool* g_tls_pool = nullptr;
thread_local bool g_tls_pool_dead = false;

struct ThreadPool {
  FreeBlock* head[kNumClasses] = {};
  std::uint32_t cached[kNumClasses] = {};

  ThreadPool() { g_tls_pool = this; }

  ~ThreadPool() {
    trim();
    g_tls_pool = nullptr;
    g_tls_pool_dead = true;
  }

  void trim() {
    for (std::size_t c = 0; c < kNumClasses; ++c) {
      while (head[c] != nullptr) {
        FreeBlock* block = head[c];
        head[c] = block->next;
        ::operator delete(block);
      }
      cached[c] = 0;
    }
  }
};

/// The calling thread's pool, or nullptr when it is already destroyed
/// (never reconstruct after teardown).
ThreadPool* tls_pool() {
  if (g_tls_pool == nullptr && !g_tls_pool_dead) {
    thread_local ThreadPool pool;
    (void)pool;
  }
  return g_tls_pool;
}

}  // namespace

bool pool_enabled() noexcept { return !LEAP_POOL_PASSTHROUGH; }

void* pool_alloc(std::size_t bytes) {
  const std::size_t cls = class_of(bytes);
  if (LEAP_POOL_PASSTHROUGH || cls == 0) {
    g_pool_misses.fetch_add(1, std::memory_order_relaxed);
    return ::operator new(bytes);
  }
  ThreadPool* pool = tls_pool();
  if (pool != nullptr && pool->head[cls - 1] != nullptr) {
    FreeBlock* block = pool->head[cls - 1];
    if (kPoison && !poison_intact(block, cls)) {
      std::fprintf(stderr,
                   "ebr::pool_alloc: poison damaged on a reclaimed block "
                   "(stale write into retired memory)\n");
      std::abort();
    }
    pool->head[cls - 1] = block->next;
    --pool->cached[cls - 1];
    g_pool_hits.fetch_add(1, std::memory_order_relaxed);
    return block;
  }
  g_pool_misses.fetch_add(1, std::memory_order_relaxed);
  // Allocate the rounded class size so blocks of one class interchange.
  return ::operator new(cls * kClassStep);
}

void pool_free(void* block, std::size_t bytes) noexcept {
  const std::size_t cls = class_of(bytes);
  ThreadPool* pool = LEAP_POOL_PASSTHROUGH ? nullptr : tls_pool();
  if (cls == 0 || pool == nullptr ||
      pool->cached[cls - 1] >= kMaxCachedPerClass) {
    ::operator delete(block);
    return;
  }
  auto* free_block = static_cast<FreeBlock*>(block);
  if (kPoison) {
    std::memset(reinterpret_cast<unsigned char*>(block) + sizeof(FreeBlock),
                kPoisonByte, cls * kClassStep - sizeof(FreeBlock));
  }
  free_block->next = pool->head[cls - 1];
  pool->head[cls - 1] = free_block;
  ++pool->cached[cls - 1];
}

std::uint64_t pool_hits() noexcept {
  return g_pool_hits.load(std::memory_order_relaxed);
}

std::uint64_t pool_misses() noexcept {
  return g_pool_misses.load(std::memory_order_relaxed);
}

void pool_trim() noexcept {
  ThreadPool* pool = g_tls_pool;
  if (pool != nullptr) pool->trim();
}

bool pool_debug_verify() noexcept {
  ThreadPool* pool = g_tls_pool;
  if (!kPoison || pool == nullptr) return true;
  for (std::size_t c = 0; c < kNumClasses; ++c) {
    for (FreeBlock* block = pool->head[c]; block != nullptr;
         block = block->next) {
      if (!poison_intact(block, c + 1)) return false;
    }
  }
  return true;
}

}  // namespace leap::util::ebr
