#include "util/ebr.hpp"

#include <atomic>
#include <cassert>
#include <cstddef>
#include <mutex>
#include <vector>

namespace leap::util::ebr {

namespace detail {

namespace {

constexpr std::uint64_t kIdle = ~std::uint64_t{0};
constexpr std::size_t kCollectThreshold = 256;

struct Retired {
  void* ptr;
  void (*deleter)(void*);
};

struct Bin {
  std::uint64_t epoch = 0;
  std::vector<Retired> items;
};

}  // namespace

struct ThreadRec {
  std::atomic<std::uint64_t> epoch{kIdle};
  std::atomic<bool> in_use{false};
  int depth = 0;
  // Bins are touched only by the owning thread, or by collect() while it
  // holds every rec quiescent under the registry mutex.
  Bin bins[3];
  std::size_t retired_since_collect = 0;
  ThreadRec* next = nullptr;
};

namespace {

std::atomic<std::uint64_t> g_epoch{0};
std::atomic<ThreadRec*> g_registry{nullptr};
std::mutex g_collect_mutex;
std::atomic<std::size_t> g_pending{0};

void free_bin(Bin& bin) {
  for (const Retired& r : bin.items) r.deleter(r.ptr);
  g_pending.fetch_sub(bin.items.size(), std::memory_order_relaxed);
  bin.items.clear();
}

/// True when every registered record is idle or already at `epoch`.
bool all_caught_up(std::uint64_t epoch) {
  for (ThreadRec* rec = g_registry.load(std::memory_order_acquire);
       rec != nullptr; rec = rec->next) {
    const std::uint64_t seen = rec->epoch.load(std::memory_order_acquire);
    if (seen != kIdle && seen != epoch) return false;
  }
  return true;
}

void try_advance() {
  std::uint64_t epoch = g_epoch.load(std::memory_order_acquire);
  if (!all_caught_up(epoch)) return;
  g_epoch.compare_exchange_strong(epoch, epoch + 1,
                                  std::memory_order_acq_rel);
}

ThreadRec* acquire_rec() {
  // Serialized with collect(): a rec observed !in_use there cannot be
  // re-acquired (and have its bins pushed to) mid-drain.
  std::lock_guard<std::mutex> lock(g_collect_mutex);
  for (ThreadRec* rec = g_registry.load(std::memory_order_acquire);
       rec != nullptr; rec = rec->next) {
    bool expected = false;
    if (rec->in_use.compare_exchange_strong(expected, true,
                                            std::memory_order_acq_rel)) {
      return rec;
    }
  }
  auto* rec = new ThreadRec();
  rec->in_use.store(true, std::memory_order_relaxed);
  ThreadRec* head = g_registry.load(std::memory_order_acquire);
  do {
    rec->next = head;
  } while (!g_registry.compare_exchange_weak(head, rec,
                                             std::memory_order_acq_rel));
  return rec;
}

struct RecHandle {
  ThreadRec* rec = acquire_rec();
  ~RecHandle() {
    // The thread is exiting: its guards are gone. Leave the retired
    // items in place (tagged with their epochs) and release the record
    // for reuse; a later collect() frees them.
    rec->epoch.store(kIdle, std::memory_order_release);
    rec->in_use.store(false, std::memory_order_release);
  }
};

}  // namespace

ThreadRec& local_rec() {
  thread_local RecHandle handle;
  return *handle.rec;
}

void pin(ThreadRec& rec) {
  if (rec.depth++ > 0) return;
  std::uint64_t epoch = g_epoch.load(std::memory_order_acquire);
  // Publish-and-recheck so a concurrent advance cannot leave us pinned
  // to a stale epoch unnoticed.
  while (true) {
    rec.epoch.store(epoch, std::memory_order_seq_cst);
    const std::uint64_t now = g_epoch.load(std::memory_order_seq_cst);
    if (now == epoch) break;
    epoch = now;
  }
}

void unpin(ThreadRec& rec) {
  assert(rec.depth > 0);
  if (--rec.depth == 0) rec.epoch.store(kIdle, std::memory_order_release);
}

int pin_depth(const ThreadRec& rec) { return rec.depth; }

void retire(ThreadRec& rec, void* ptr, void (*deleter)(void*)) {
  assert(rec.depth > 0 && "ebr::retire requires an active Guard");
  // Tag with the CURRENT GLOBAL epoch, not the pinned one: the retirer
  // may be pinned at e while the epoch is already e+1, and a reader
  // continuously pinned at e+1 since before the unlink may still hold a
  // reference when a bin tagged e hits the +2 drain rule. With a global
  // tag g, any such reader pinned <= g blocks the g+1 -> g+2 advance,
  // so draining at global >= g+2 is safe.
  const std::uint64_t epoch = g_epoch.load(std::memory_order_acquire);
  Bin& bin = rec.bins[epoch % 3];
  if (bin.epoch != epoch) {
    // This bin holds items from epoch-3 (or is empty): two full epochs
    // have passed, so they are unreachable by every pinned thread.
    free_bin(bin);
    bin.epoch = epoch;
  }
  bin.items.push_back({ptr, deleter});
  g_pending.fetch_add(1, std::memory_order_relaxed);
  if (++rec.retired_since_collect >= kCollectThreshold) {
    rec.retired_since_collect = 0;
    try_advance();
    // Opportunistically drain own bins that have aged out.
    const std::uint64_t now = g_epoch.load(std::memory_order_acquire);
    for (Bin& b : rec.bins) {
      if (!b.items.empty() && b.epoch + 2 <= now) free_bin(b);
    }
  }
}

}  // namespace detail

void retire(void* ptr, void (*deleter)(void*)) {
  detail::retire(detail::local_rec(), ptr, deleter);
}

void collect() {
  using namespace detail;
  ThreadRec& own = local_rec();
  std::lock_guard<std::mutex> lock(g_collect_mutex);
  // Quiescent fast path — what structure destructors hit after worker
  // threads join: nothing is pinned, so every retired object is
  // unreachable. Drain the caller's own bins plus those of released
  // (exited) thread records; acquire_rec holds the same mutex, so a
  // record observed !in_use cannot be racing us with new pushes. Bins
  // of other still-registered live threads are skipped — their owners
  // drain them on their next retire.
  bool quiescent = true;
  for (ThreadRec* rec = g_registry.load(std::memory_order_acquire);
       rec != nullptr; rec = rec->next) {
    if (rec->epoch.load(std::memory_order_seq_cst) != kIdle) {
      quiescent = false;
      break;
    }
  }
  if (quiescent) {
    for (ThreadRec* rec = g_registry.load(std::memory_order_acquire);
         rec != nullptr; rec = rec->next) {
      if (rec == &own || !rec->in_use.load(std::memory_order_acquire)) {
        for (Bin& bin : rec->bins) free_bin(bin);
      }
    }
    return;
  }
  // Otherwise just nudge the epoch along; owners drain their own bins.
  try_advance();
}

std::size_t pending_count() {
  return detail::g_pending.load(std::memory_order_relaxed);
}

}  // namespace leap::util::ebr
