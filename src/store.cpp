// leap::store implementation: WAL segments, immutable runs, the Store
// orchestration (leader-follower group commit, checkpoint flusher,
// recovery). Design notes live in the headers; this is the machinery.

#include "leaplist/store/store.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <limits>
#include <set>

#include "leaplist/store/run.hpp"
#include "leaplist/store/wal.hpp"
#include "leaplist/txn.hpp"

namespace leap::store {

namespace {

constexpr std::size_t kSnapshotChunk = 1024;
constexpr std::size_t kReplayBatch = 256;
constexpr std::size_t kEvictBatch = 64;
constexpr std::int64_t kMinKey = std::numeric_limits<std::int64_t>::min() + 1;
constexpr std::int64_t kMaxKey = std::numeric_limits<std::int64_t>::max();

bool full_write(Io& io, int fd, const std::uint8_t* data,
                std::size_t size) {
  while (size > 0) {
    const ssize_t n = io.write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Positioned write: WAL segments are preallocated, so appends land
/// INSIDE the file (O_APPEND would put them after the zero tail).
bool full_pwrite(Io& io, int fd, const std::uint8_t* data,
                 std::size_t size, std::uint64_t off) {
  while (size > 0) {
    const ssize_t n = io.pwrite(fd, data, size, static_cast<off_t>(off));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
    off += static_cast<std::uint64_t>(n);
  }
  return true;
}

bool full_pread(Io& io, int fd, std::uint8_t* data, std::size_t size,
                std::uint64_t off) {
  while (size > 0) {
    const ssize_t n = io.pread(fd, data, size, static_cast<off_t>(off));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // short file
    data += n;
    size -= static_cast<std::size_t>(n);
    off += static_cast<std::uint64_t>(n);
  }
  return true;
}

std::string wal_path(const std::string& dir, std::size_t shard,
                     std::uint64_t seq) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "/wal-%zu-%llu.log", shard,
                static_cast<unsigned long long>(seq));
  return dir + buf;
}

std::string run_path(const std::string& dir, std::size_t shard,
                     std::uint64_t seq) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "/run-%zu-%llu.run", shard,
                static_cast<unsigned long long>(seq));
  return dir + buf;
}

/// fsync the directory so created/unlinked NAMES are durable.
void fsync_dir(Io& io, const std::string& dir) {
  const int fd = io.open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC,
                         0);
  if (fd < 0) return;
  io.fsync(fd);
  io.close(fd);
}

/// Segment preallocation size: the rotation threshold plus room for
/// the overshoot of one maximal record and a little framing slack.
std::uint64_t wal_prealloc_bytes(std::size_t checkpoint_bytes) {
  return static_cast<std::uint64_t>(checkpoint_bytes) +
         kMaxWalRecordBytes + 4096;
}

/// Open a fresh segment and preallocate it: with the blocks (and the
/// file size) fixed up front, the per-commit fdatasync never journals
/// an allocation or size change — measured ~2x cheaper on ext4.
/// A preallocation refused for SPACE (ENOSPC) or a failing device
/// (EIO) is a hard error — better to surface "disk full" at open or
/// rotation, with the previous segment still healthy, than mid-commit
/// once writes start bouncing off the same wall. A filesystem that
/// merely lacks fallocate (EOPNOTSUPP/EINVAL) just grows the file
/// normally. On failure returns -1 with *err describing the cause and
/// nothing left on disk.
int open_segment_fresh(Io& io, const std::string& path,
                       std::uint64_t prealloc, std::string* err) {
  const int fd = io.open(path.c_str(),
                         O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    if (err) *err = "open " + path + ": " + std::strerror(errno);
    return -1;
  }
  if (prealloc > 0 &&
      io.fallocate(fd, static_cast<off_t>(prealloc)) != 0 &&
      (errno == ENOSPC || errno == EIO)) {
    if (err) *err = "fallocate " + path + ": " + std::strerror(errno);
    io.close(fd);
    io.unlink(path.c_str());
    return -1;
  }
  return fd;
}

}  // namespace

// --- Wal --------------------------------------------------------------

Wal::~Wal() { close_fd(); }

bool Wal::open_fresh(Io& io, const std::string& path, std::uint64_t seq,
                     std::uint64_t logical_base, std::uint64_t prealloc,
                     std::string* err) {
  close_fd();
  io_ = &io;
  std::string why;
  fd_ = open_segment_fresh(io, path, prealloc, &why);
  if (fd_ < 0) {
    if (err) *err = "wal " + why;
    return false;
  }
  io_error_.store(false, std::memory_order_release);
  err_no_ = 0;
  seq_ = seq;
  logical_base_ = logical_base;
  write_off_ = 0;
  path_ = path;
  pending_.clear();
  appended_.store(logical_base, std::memory_order_release);
  durable_.store(logical_base, std::memory_order_release);
  return true;
}

std::uint64_t Wal::append(const std::uint8_t* data, std::size_t size) {
  if (!healthy()) return 0;
  {
    std::lock_guard<std::mutex> lk(buf_mu_);
    pending_.insert(pending_.end(), data, data + size);
  }
  return appended_.fetch_add(size, std::memory_order_acq_rel) + size;
}

bool Wal::flush_buffered() {
  if (!healthy()) return false;
  {
    std::lock_guard<std::mutex> lk(buf_mu_);
    if (pending_.empty()) return true;
    flushing_.swap(pending_);
  }
  const bool ok = full_pwrite(*io_, fd_, flushing_.data(),
                              flushing_.size(), write_off_);
  if (ok) {
    write_off_ += flushing_.size();
  } else {
    // A partial write may have landed garbage past write_off_;
    // quarantine it so it can never replay. The failed bytes are
    // dropped, not re-buffered: their batches will never be acked, so
    // they must never reach the disk either. durable() is untouched —
    // it must stay truthful (group-commit followers ack against it).
    err_no_ = errno;
    io_error_.store(true, std::memory_order_release);
    (void)io_->ftruncate(fd_, static_cast<off_t>(write_off_));
  }
  flushing_.clear();
  return ok;
}

bool Wal::sync_flush(bool quarantine_unsynced) {
  if (!flush_buffered()) return false;
  // Everything flushed above ends at this logical offset; nothing can
  // land on the fd between the flush and the sync (fsync-mutex held).
  const std::uint64_t covered = logical_base_ + write_off_;
  if (io_->fdatasync(fd_) != 0) {
    // fsyncgate: after a failed fdatasync the kernel may have dropped
    // the dirty pages it covered, so the only honest move is to go
    // unhealthy — never retry the sync. The bytes between durable()
    // and the content end were flushed but never synced: their
    // batches are about to be failed, so (outside kOff, where they
    // WERE already acked) truncate them away lest a later crash +
    // replay resurrect writes the client was told failed.
    err_no_ = errno;
    io_error_.store(true, std::memory_order_release);
    if (quarantine_unsynced) {
      const std::uint64_t keep =
          durable_.load(std::memory_order_acquire) - logical_base_;
      if (io_->ftruncate(fd_, static_cast<off_t>(keep)) == 0) {
        write_off_ = keep;
      }
    }
    return false;
  }
  // Only fsync-mutex holders write durable_, so load+store is safe.
  if (covered > durable_.load(std::memory_order_acquire)) {
    durable_.store(covered, std::memory_order_release);
  }
  return true;
}

void Wal::close_fd() {
  if (fd_ >= 0) {
    io_->close(fd_);
    fd_ = -1;
  }
}

void Wal::swap_segment(int fd, std::uint64_t seq, std::string path) {
  close_fd();
  fd_ = fd;
  io_error_.store(false, std::memory_order_release);
  err_no_ = 0;
  seq_ = seq;
  path_ = std::move(path);
  write_off_ = 0;
  logical_base_ = appended_.load(std::memory_order_acquire);
}

bool Wal::truncate_tail_for_test(std::uint64_t bytes) {
  if (fd_ < 0) return false;
  (void)flush_buffered();
  // write_off_ is the content end; the FILE end is the preallocation.
  const std::uint64_t keep = bytes >= write_off_ ? 0 : write_off_ - bytes;
  // Chop the zero tail too, so replay sees a mid-record EOF, exactly
  // like a crash that lost the allocation.
  return io_->ftruncate(fd_, static_cast<off_t>(keep)) == 0;
}

bool replay_wal_file(Io& io, const std::string& path,
                     std::vector<Entry>& ops, bool* torn,
                     std::string* err) {
  if (torn) *torn = false;
  const int fd = io.open(path.c_str(), O_RDONLY | O_CLOEXEC, 0);
  if (fd < 0) {
    if (err) *err = "wal replay open " + path + ": " + std::strerror(errno);
    return false;
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    io.close(fd);
    if (err) *err = "wal replay stat " + path + ": " + std::strerror(errno);
    return false;
  }
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(st.st_size));
  if (!bytes.empty() &&
      !full_pread(io, fd, bytes.data(), bytes.size(), 0)) {
    io.close(fd);
    if (err) *err = "wal replay read " + path + ": " + std::strerror(errno);
    return false;
  }
  io.close(fd);
  std::size_t at = 0;
  for (;;) {
    std::size_t consumed = 0;
    const WalParse res =
        parse_wal_record(bytes.data() + at, bytes.size() - at, consumed, ops);
    if (res == WalParse::kRecord) {
      at += consumed;
      continue;
    }
    if (res == WalParse::kTorn && torn) *torn = true;
    return true;
  }
}

// --- Run --------------------------------------------------------------

Run::~Run() {
  if (fd_ >= 0) io_->close(fd_);
}

std::shared_ptr<Run> Run::load(Io& io, const std::string& path,
                               std::uint64_t seq, std::string* err) {
  const int fd = io.open(path.c_str(), O_RDONLY | O_CLOEXEC, 0);
  if (fd < 0) {
    if (err) *err = "run open " + path + ": " + std::strerror(errno);
    return nullptr;
  }
  auto fail = [&](const char* why) -> std::shared_ptr<Run> {
    io.close(fd);
    if (err) *err = std::string("run ") + path + ": " + why;
    return nullptr;
  };
  struct stat st;
  if (::fstat(fd, &st) != 0) return fail("stat failed");
  const std::uint64_t size = static_cast<std::uint64_t>(st.st_size);
  if (size < kRunFooterBytes) return fail("too short for a footer");
  const std::uint64_t footer_off = size - kRunFooterBytes;
  std::uint8_t foot[kRunFooterBytes];
  if (!full_pread(io, fd, foot, kRunFooterBytes, footer_off)) {
    return fail("footer read failed");
  }
  if (load_u64(foot + 56) != kRunMagic) return fail("bad magic");
  if (load_u32(foot) != kRunVersion) return fail("bad version");
  const std::uint32_t block_count = load_u32(foot + 4);
  const std::uint64_t entry_count = load_u64(foot + 8);
  const std::int64_t min_key = load_i64(foot + 16);
  const std::int64_t max_key = load_i64(foot + 24);
  const std::uint64_t index_off = load_u64(foot + 32);
  const std::uint64_t bloom_off = load_u64(foot + 40);
  const std::uint32_t bloom_hashes = load_u32(foot + 48);
  const std::uint32_t crc = load_u32(foot + 52);
  if (bloom_hashes != kBloomHashes) return fail("bloom shape mismatch");
  if (index_off > bloom_off || bloom_off > footer_off) {
    return fail("section offsets out of order");
  }
  const std::uint64_t index_len = bloom_off - index_off;
  const std::uint64_t bloom_len = footer_off - bloom_off;
  if (index_len != std::uint64_t{block_count} * kRunIndexEntryBytes) {
    return fail("index length mismatch");
  }
  if (bloom_len % 8 != 0) return fail("bloom length not word-aligned");
  std::vector<std::uint8_t> sections(
      static_cast<std::size_t>(index_len + bloom_len));
  if (!sections.empty() &&
      !full_pread(io, fd, sections.data(), sections.size(), index_off)) {
    return fail("index/bloom read failed");
  }
  std::uint32_t want = crc32c(sections.data(), sections.size());
  want = crc32c(foot, 52, want);
  if (want != crc) return fail("footer crc mismatch");

  auto run = std::shared_ptr<Run>(new Run());
  run->io_ = &io;
  run->fd_ = fd;
  run->seq_ = seq;
  run->entry_count_ = entry_count;
  run->min_key_ = min_key;
  run->max_key_ = max_key;
  run->index_.reserve(block_count);
  const std::uint8_t* p = sections.data();
  for (std::uint32_t i = 0; i < block_count; ++i, p += kRunIndexEntryBytes) {
    IndexEntry e;
    e.first_key = load_i64(p);
    e.offset = load_u64(p + 8);
    e.len = load_u32(p + 16);
    if (e.offset + e.len > index_off) {
      io.close(fd);
      run->fd_ = -1;
      if (err) *err = "run " + path + ": block outside data section";
      return nullptr;
    }
    run->index_.push_back(e);
  }
  std::vector<std::uint64_t> words(static_cast<std::size_t>(bloom_len / 8));
  for (std::size_t i = 0; i < words.size(); ++i) {
    words[i] = load_u64(sections.data() + index_len + i * 8);
  }
  run->bloom_ = Bloom(std::move(words));
  return run;
}

bool Run::read_block(std::size_t idx, std::vector<Entry>& out) const {
  const IndexEntry& e = index_[idx];
  if (e.len < 8) return false;
  std::vector<std::uint8_t> buf(e.len);
  if (!full_pread(*io_, fd_, buf.data(), buf.size(), e.offset)) {
    return false;
  }
  const std::uint32_t count = load_u32(buf.data());
  const std::uint32_t crc = load_u32(buf.data() + 4);
  if (std::uint64_t{e.len} != 8 + std::uint64_t{count} * kEntryBytes) {
    return false;
  }
  if (crc32c(buf.data() + 8, e.len - 8) != crc) return false;
  out.reserve(out.size() + count);
  const std::uint8_t* p = buf.data() + 8;
  for (std::uint32_t i = 0; i < count; ++i, p += kEntryBytes) {
    out.push_back(load_entry(p));
  }
  return true;
}

std::optional<RunHit> Run::get(std::int64_t key, bool* io_ok) const {
  if (index_.empty()) return std::nullopt;
  // Last block whose first key <= key.
  std::size_t lo = 0, hi = index_.size();
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (index_[mid].first_key <= key) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  if (index_[lo].first_key > key) return std::nullopt;
  std::vector<Entry> entries;
  if (!read_block(lo, entries)) {
    *io_ok = false;
    return std::nullopt;
  }
  std::size_t a = 0, b = entries.size();
  while (a < b) {
    const std::size_t mid = a + (b - a) / 2;
    if (entries[mid].key < key) {
      a = mid + 1;
    } else {
      b = mid;
    }
  }
  if (a == entries.size() || entries[a].key != key) return std::nullopt;
  RunHit hit;
  hit.tombstone = entries[a].kind == kEntryTombstone;
  hit.value = entries[a].value;
  return hit;
}

std::size_t Run::read_range(std::int64_t low, std::int64_t high,
                            std::size_t cap, std::vector<Entry>& out,
                            bool* io_ok) const {
  if (index_.empty() || cap == 0 || !fence_overlaps(low, high)) return 0;
  // First block that can contain keys >= low.
  std::size_t at = 0, hi = index_.size();
  while (hi - at > 1) {
    const std::size_t mid = at + (hi - at) / 2;
    if (index_[mid].first_key <= low) {
      at = mid;
    } else {
      hi = mid;
    }
  }
  std::size_t got = 0;
  std::vector<Entry> entries;
  for (; at < index_.size() && got < cap; ++at) {
    if (index_[at].first_key > high) break;
    entries.clear();
    if (!read_block(at, entries)) {
      *io_ok = false;
      return got;
    }
    for (const Entry& e : entries) {
      if (e.key < low) continue;
      if (e.key > high) return got;
      out.push_back(e);
      if (++got == cap) return got;
    }
  }
  return got;
}

// --- RunWriter --------------------------------------------------------

RunWriter::RunWriter(Io& io, std::string path, std::size_t expected)
    : io_(&io),
      path_(std::move(path)),
      bloom_(expected == 0 ? 1 : expected) {
  fd_ = io_->open(path_.c_str(),
                  O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
  if (fd_ < 0) io_error_ = true;
}

void RunWriter::add(const Entry& e) {
  if (entry_count_ == 0) min_key_ = e.key;
  max_key_ = e.key;
  if (block_entries_ == 0) block_first_key_ = e.key;
  put_entry(block_, e);
  bloom_.add(e.key);
  ++entry_count_;
  if (++block_entries_ == kRunBlockEntries) seal_block();
}

void RunWriter::seal_block() {
  if (block_entries_ == 0 || io_error_) return;
  std::vector<std::uint8_t> frame;
  frame.reserve(8 + block_.size());
  put_u32(frame, static_cast<std::uint32_t>(block_entries_));
  put_u32(frame, crc32c(block_.data(), block_.size()));
  frame.insert(frame.end(), block_.begin(), block_.end());
  if (!full_write(*io_, fd_, frame.data(), frame.size())) {
    io_error_ = true;
    return;
  }
  put_i64(index_, block_first_key_);
  put_u64(index_, file_off_);
  put_u32(index_, static_cast<std::uint32_t>(frame.size()));
  file_off_ += frame.size();
  ++block_count_;
  block_.clear();
  block_entries_ = 0;
}

bool RunWriter::finish(std::string* err) {
  seal_block();
  if (fd_ < 0 || io_error_) {
    if (err) {
      *err = "run write " + path_ + ": " + std::strerror(errno);
    }
    if (fd_ >= 0) io_->close(fd_);
    fd_ = -1;
    return false;
  }
  const std::uint64_t index_off = file_off_;
  const std::uint64_t bloom_off = index_off + index_.size();
  std::vector<std::uint8_t> tail = index_;
  for (const std::uint64_t word : bloom_.words()) put_u64(tail, word);
  const std::size_t foot_at = tail.size();
  put_u32(tail, kRunVersion);
  put_u32(tail, block_count_);
  put_u64(tail, entry_count_);
  put_i64(tail, min_key_);
  put_i64(tail, max_key_);
  put_u64(tail, index_off);
  put_u64(tail, bloom_off);
  put_u32(tail, kBloomHashes);
  const std::uint32_t crc =
      crc32c(tail.data(), foot_at + 52);  // index + bloom + footer prefix
  put_u32(tail, crc);
  put_u64(tail, kRunMagic);
  bool ok = full_write(*io_, fd_, tail.data(), tail.size());
  ok = ok && io_->fsync(fd_) == 0;
  ok = io_->close(fd_) == 0 && ok;
  fd_ = -1;
  if (!ok && err) *err = "run seal " + path_ + ": " + std::strerror(errno);
  return ok;
}

// --- Store ------------------------------------------------------------

std::optional<FsyncMode> parse_fsync_mode(const std::string& text) {
  if (text == "always") return FsyncMode::kAlways;
  if (text == "group") return FsyncMode::kGroup;
  if (text == "off") return FsyncMode::kOff;
  return std::nullopt;
}

const char* fsync_mode_name(FsyncMode mode) {
  switch (mode) {
    case FsyncMode::kAlways:
      return "always";
    case FsyncMode::kGroup:
      return "group";
    default:
      return "off";
  }
}

struct Store::ShardState {
  std::mutex mu;  // commit mutex: apply + append + tombstones
  // fsync_mu doubles as the group-commit LEADER ELECTION: a waiter
  // that takes it syncs everything appended so far; waiters queued
  // behind it re-check durable() on entry and usually find their
  // target already covered. It also excludes a sync in flight against
  // the fd being swapped by rotation.
  std::mutex fsync_mu;
  Wal wal;
  std::atomic<std::uint64_t> appended_ops{0};
  std::uint64_t synced_ops = 0;  // under fsync_mu; group-size stat
  std::set<std::int64_t> tombs;           // erases since last rotation
  std::set<std::int64_t> flushing_tombs;  // erases owed to the next run
  std::vector<std::shared_ptr<Run>> runs;  // oldest..newest, under mu
  std::uint64_t oldest_wal_seq = 1;        // under flush_mu_
  std::atomic<bool> needs_flush{false};    // recovery owes a checkpoint
};

struct Store::SyncShared {
  std::mutex mu;
  std::condition_variable flusher_cv;  // wake/stop the flusher
  bool stop = false;
};

Store::Store(MapType& map, const StoreOptions& opts)
    : map_(map),
      opts_(opts),
      io_(opts.io ? opts.io : &real_io()),
      sync_(new SyncShared()) {}

Store::~Store() { close(); }

std::size_t Store::shard_count() const { return map_.shard_count(); }

std::string Store::last_error() const {
  std::lock_guard<std::mutex> lk(err_mu_);
  return last_error_;
}

void Store::set_last_error(const std::string& why) {
  std::lock_guard<std::mutex> lk(err_mu_);
  last_error_ = why;
}

void Store::enter_fail_stop(const std::string& why) {
  bool expected = false;
  if (fail_stop_.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
    set_last_error(why);
  }
}

bool Store::open(std::string* err) {
  if (open_) return true;
  if (io_->mkdir(opts_.data_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    if (err) {
      *err = "mkdir " + opts_.data_dir + ": " + std::strerror(errno);
    }
    return false;
  }
  const std::size_t shard_count = map_.shard_count();
  shards_.clear();
  for (std::size_t s = 0; s < shard_count; ++s) {
    shards_.push_back(std::make_unique<ShardState>());
  }
  for (std::size_t s = 0; s < shard_count; ++s) {
    if (!recover_shard(s, err)) return false;
  }
  fsync_dir(*io_, opts_.data_dir);
  open_ = true;
  sync_->stop = false;
  if (opts_.flush_poll_ms > 0) {
    flusher_ = std::thread([this] { flusher_main(); });
  }
  return true;
}

bool Store::recover_shard(std::size_t s, std::string* err) {
  ShardState& sh = *shards_[s];
  // One directory scan per shard keeps this simple; shard counts are
  // small (the server defaults to 8) and open() runs once.
  std::vector<std::pair<std::uint64_t, std::string>> run_files, wal_files;
  DIR* dir = ::opendir(opts_.data_dir.c_str());
  if (!dir) {
    if (err) {
      *err = "opendir " + opts_.data_dir + ": " + std::strerror(errno);
    }
    return false;
  }
  while (struct dirent* ent = ::readdir(dir)) {
    unsigned long long shard = 0, seq = 0;
    char tail = 0;
    if (std::sscanf(ent->d_name, "run-%llu-%llu.ru%c", &shard, &seq,
                    &tail) == 3 &&
        tail == 'n' && shard == s) {
      run_files.emplace_back(seq, opts_.data_dir + "/" + ent->d_name);
    } else if (std::sscanf(ent->d_name, "wal-%llu-%llu.lo%c", &shard, &seq,
                           &tail) == 3 &&
               tail == 'g' && shard == s) {
      wal_files.emplace_back(seq, opts_.data_dir + "/" + ent->d_name);
    }
  }
  ::closedir(dir);
  std::sort(run_files.begin(), run_files.end());
  std::sort(wal_files.begin(), wal_files.end());

  std::uint64_t max_seq = 0;
  for (const auto& [seq, path] : run_files) {
    std::string why;
    auto run = Run::load(*io_, path, seq, &why);
    if (!run) {
      // A flush the crash interrupted: its WAL segments still exist
      // and replay below, so the partial file is just deleted.
      io_->unlink(path.c_str());
      continue;
    }
    sh.runs.push_back(std::move(run));
    max_seq = std::max(max_seq, seq);
  }
  const std::uint64_t newest_run_seq =
      sh.runs.empty() ? 0 : sh.runs.back()->seq();

  std::uint64_t replayed = 0;
  bool kept_wal = false;
  std::vector<Entry> ops;
  for (const auto& [seq, path] : wal_files) {
    max_seq = std::max(max_seq, seq);
    if (seq <= newest_run_seq) {
      // Retired by the flush that produced the newest run.
      io_->unlink(path.c_str());
      continue;
    }
    ops.clear();
    bool torn = false;
    if (!replay_wal_file(*io_, path, ops, &torn, err)) return false;
    for (std::size_t at = 0; at < ops.size(); at += kReplayBatch) {
      const std::size_t end = std::min(ops.size(), at + kReplayBatch);
      leap::txn([&](stm::Tx& tx) {
        for (std::size_t i = at; i < end; ++i) {
          if (ops[i].kind == kEntryValue) {
            map_.insert_in(tx, ops[i].key, ops[i].value);
          } else {
            map_.erase_in(tx, ops[i].key);
          }
        }
      });
      for (std::size_t i = at; i < end; ++i) {
        if (ops[i].kind == kEntryValue) {
          sh.tombs.erase(ops[i].key);
        } else {
          sh.tombs.insert(ops[i].key);
        }
      }
    }
    replayed += ops.size();
    kept_wal = true;
  }
  recovered_ops_.fetch_add(replayed, std::memory_order_relaxed);

  const std::uint64_t fresh_seq = max_seq + 1;
  if (!sh.wal.open_fresh(*io_, wal_path(opts_.data_dir, s, fresh_seq),
                         fresh_seq, 0,
                         wal_prealloc_bytes(opts_.checkpoint_bytes),
                         err)) {
    return false;
  }
  sh.oldest_wal_seq = kept_wal ? newest_run_seq + 1 : fresh_seq;
  // A replayed shard owes a checkpoint so repeated crashes cannot grow
  // replay time without bound; the flusher's first pass settles it.
  sh.needs_flush.store(kept_wal, std::memory_order_release);
  return true;
}

void Store::close() {
  if (!open_) return;
  // Make everything appended durable, whatever the mode. A shard that
  // already failed is skipped (fdatasync is never retried — its
  // durable prefix is what recovery will see); a shard failing HERE
  // enters fail-stop like any other, and close still completes: a
  // fail-stopped store shuts down cleanly, it just stops acking.
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    ShardState& sh = *shards_[s];
    std::lock_guard<std::mutex> fs(sh.fsync_mu);
    if (!sh.wal.healthy()) continue;
    if (sh.wal.sync_flush(opts_.fsync_mode != FsyncMode::kOff)) {
      wal_fsyncs_.fetch_add(1, std::memory_order_relaxed);
    } else {
      enter_fail_stop("wal close sync " + sh.wal.path() + ": " +
                      std::strerror(sh.wal.last_errno()));
    }
  }
  {
    std::lock_guard<std::mutex> lk(sync_->mu);
    sync_->stop = true;
  }
  sync_->flusher_cv.notify_all();
  if (flusher_.joinable()) flusher_.join();
  for (auto& sh : shards_) sh->wal.close_fd();
  open_ = false;
}

bool Store::log_batch(const LogOp* ops, std::size_t n,
                      const std::function<void()>& apply) {
  if (!open_ || n == 0) {
    apply();
    return true;
  }
  // Read-only fail-stop: reject before `apply` so a doomed mutation
  // never even reaches the memtable.
  if (fail_stop_.load(std::memory_order_acquire)) return false;
  struct Tagged {
    std::size_t shard;
    Entry e;
  };
  std::vector<Tagged> tagged;
  tagged.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Entry e;
    e.kind = ops[i].erase ? kEntryTombstone : kEntryValue;
    e.key = ops[i].key;
    e.value = ops[i].erase ? 0 : ops[i].value;
    tagged.push_back({map_.shard_of(ops[i].key), e});
  }
  // Ascending-shard lock order (deadlock-free); stable sort keeps the
  // caller's op order within each shard == the logged order.
  std::stable_sort(tagged.begin(), tagged.end(),
                   [](const Tagged& a, const Tagged& b) {
                     return a.shard < b.shard;
                   });
  // Encode every per-shard record BEFORE taking any lock — the bytes
  // don't depend on commit order, so the commit critical section
  // shrinks to the STM apply plus a buffered memcpy per shard.
  struct Span {
    std::size_t shard;
    std::size_t off;    // into `records`
    std::size_t len;    // encoded record bytes
    std::size_t first;  // group start in `tagged`
    std::size_t count;  // ops in the group
  };
  std::vector<std::uint8_t> records;
  std::vector<Span> spans;
  std::vector<Entry> group;
  std::size_t at = 0;
  while (at < tagged.size()) {
    const std::size_t s = tagged[at].shard;
    const std::size_t first = at;
    group.clear();
    while (at < tagged.size() && tagged[at].shard == s) {
      group.push_back(tagged[at].e);
      ++at;
    }
    const std::size_t off = records.size();
    encode_wal_record(records, group.data(), group.size());
    spans.push_back({s, off, records.size() - off, first, group.size()});
  }
  for (const Span& sp : spans) shards_[sp.shard]->mu.lock();
  // Re-check health under the commit mutexes: a shard whose WAL died
  // since the pre-check above must reject the batch BEFORE the
  // memtable mutation, not after. (A failure that lands between this
  // check and the append below is caught by the append returning 0 —
  // then the mutation is briefly visible but quarantined off the log,
  // the same window any pre-durability read already has.)
  for (const Span& sp : spans) {
    if (!shards_[sp.shard]->wal.healthy()) {
      for (auto it = spans.rbegin(); it != spans.rend(); ++it) {
        shards_[it->shard]->mu.unlock();
      }
      return false;
    }
  }
  apply();
  bool appended_all = true;
  std::vector<std::pair<std::size_t, std::uint64_t>> targets;
  targets.reserve(spans.size());
  for (const Span& sp : spans) {
    ShardState& sh = *shards_[sp.shard];
    const std::uint64_t end =
        sh.wal.append(records.data() + sp.off, sp.len);
    if (end != 0) {
      wal_appends_.fetch_add(1, std::memory_order_relaxed);
      sh.appended_ops.fetch_add(sp.count, std::memory_order_relaxed);
      targets.emplace_back(sp.shard, end);
    } else {
      // The record never reached even the append buffer; this batch
      // cannot be acked no matter what the other shards say.
      appended_all = false;
    }
    for (std::size_t i = sp.first; i < sp.first + sp.count; ++i) {
      if (tagged[i].e.kind == kEntryTombstone) {
        sh.tombs.insert(tagged[i].e.key);
      } else {
        sh.tombs.erase(tagged[i].e.key);
      }
    }
  }
  for (auto it = spans.rbegin(); it != spans.rend(); ++it) {
    shards_[it->shard]->mu.unlock();
  }
  const bool durable = wait_durable(targets);
  return appended_all && durable;
}

bool Store::wait_durable(
    const std::vector<std::pair<std::size_t, std::uint64_t>>& targets) {
  if (targets.empty()) return true;
  if (opts_.fsync_mode == FsyncMode::kOff) {
    // Ack on append: the mode's contract is that the OS (or the
    // flusher) writes the bytes out eventually and a crash may lose
    // them. The appends above landed on healthy segments, so ack.
    return true;
  }
  const bool group = opts_.fsync_mode == FsyncMode::kGroup;
  bool ok = true;
  // Sync everything this shard has appended; caller holds fsync_mu.
  // False = this shard can no longer make the batch durable.
  const auto lead_sync = [&](std::size_t s, ShardState& sh) {
    if (!sh.wal.healthy()) return false;  // never retry a failed sync
    const std::uint64_t ops_now =
        sh.appended_ops.load(std::memory_order_relaxed);
    if (!sh.wal.sync_flush(/*quarantine_unsynced=*/true)) {
      enter_fail_stop("wal shard " + std::to_string(s) + " " +
                      sh.wal.path() + ": " +
                      std::strerror(sh.wal.last_errno()));
      return false;
    }
    wal_fsyncs_.fetch_add(1, std::memory_order_relaxed);
    if (group) {
      wal_group_ops_.fetch_add(ops_now - sh.synced_ops,
                               std::memory_order_relaxed);
    }
    sh.synced_ops = ops_now;
    return true;
  };
  if (!group) {  // kAlways: one unshared fdatasync per shard touched
    for (const auto& [s, end] : targets) {
      ShardState& sh = *shards_[s];
      std::lock_guard<std::mutex> fs(sh.fsync_mu);
      // A previous holder (rotation's final sync, or close) may have
      // already made our bytes durable; durable() is truthful, so
      // trust it before leading a sync of our own.
      if (sh.wal.durable() >= end) continue;
      if (!lead_sync(s, sh)) ok = false;
    }
    return ok;
  }
  // Leader-follower group commit. Blocking on fsync_mu IS the wait:
  // the current holder is fdatasyncing every byte appended before it
  // sampled the log. On entry we re-check durable(); if a previous
  // leader's sync covered our target we return without syncing at
  // all (the group win). Otherwise we lead the next group ourselves,
  // covering every batch that queued behind us meanwhile. Concurrent
  // batches whose key ranges land on different shards lead
  // independent fsync chains in parallel. durable() never lies — a
  // failed leader leaves it where the last successful sync put it and
  // flips the store to fail-stop instead — so a follower's group win
  // is always a true ack.
  for (const auto& [s, end] : targets) {
    ShardState& sh = *shards_[s];
    std::lock_guard<std::mutex> fs(sh.fsync_mu);
    if (sh.wal.durable() >= end) continue;  // group win
    if (!lead_sync(s, sh)) ok = false;
  }
  return ok;
}

void Store::flusher_main() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(sync_->mu);
      sync_->flusher_cv.wait_for(
          lk, std::chrono::milliseconds(opts_.flush_poll_ms),
          [&] { return sync_->stop; });
      if (sync_->stop) return;
    }
    if (fail_stop_.load(std::memory_order_acquire)) continue;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      ShardState& sh = *shards_[s];
      {
        // Drain buffered WAL bytes to the fd. In kOff mode this is
        // the only writer between checkpoints (bounds what a process
        // crash can lose to roughly one poll period); in the synced
        // modes the buffer is almost always already empty. A write
        // failure here is a WAL failure like any other: fail-stop.
        std::lock_guard<std::mutex> fs(sh.fsync_mu);
        if (sh.wal.healthy() && !sh.wal.flush_buffered()) {
          enter_fail_stop("wal drain shard " + std::to_string(s) + " " +
                          sh.wal.path() + ": " +
                          std::strerror(sh.wal.last_errno()));
        }
      }
      if (sh.wal.segment_bytes() >= opts_.checkpoint_bytes ||
          sh.needs_flush.load(std::memory_order_acquire)) {
        flush_shard(s);
      }
    }
  }
}

void Store::checkpoint() {
  if (!open_ || fail_stop_.load(std::memory_order_acquire)) return;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    ShardState& sh = *shards_[s];
    bool dirty = sh.wal.segment_bytes() > 0 ||
                 sh.needs_flush.load(std::memory_order_acquire);
    if (!dirty) {
      std::lock_guard<std::mutex> g(sh.mu);
      dirty = !sh.tombs.empty() || !sh.flushing_tombs.empty();
    }
    if (dirty) flush_shard(s);
  }
}

bool Store::flush_shard(std::size_t s) {
  std::lock_guard<std::mutex> flush_guard(flush_mu_);
  if (fail_stop_.load(std::memory_order_acquire)) return false;
  ShardState& sh = *shards_[s];
  std::uint64_t retiring_seq = 0;
  {
    std::lock_guard<std::mutex> g(sh.mu);
    const bool dirty = sh.wal.segment_bytes() > 0 || !sh.tombs.empty() ||
                       !sh.flushing_tombs.empty() ||
                       sh.needs_flush.load(std::memory_order_acquire);
    if (!dirty) return true;
    {
      // Rotate: final-sync the retiring segment (its waiters become
      // durable), then swap in a fresh one under the fsync mutex. A
      // segment that cannot final-sync must NOT be retired — its tail
      // never provably reached the disk — so a sync failure here is a
      // WAL failure: fail-stop, segment kept, no rotation. (The old
      // code marked everything durable unconditionally after the
      // sync, healthy or not — a false ack this path must never make
      // again.)
      std::lock_guard<std::mutex> fs(sh.fsync_mu);
      if (!sh.wal.healthy() ||
          !sh.wal.sync_flush(opts_.fsync_mode != FsyncMode::kOff)) {
        enter_fail_stop("wal rotate sync shard " + std::to_string(s) +
                        " " + sh.wal.path() + ": " +
                        std::strerror(sh.wal.last_errno()));
        sh.needs_flush.store(true, std::memory_order_release);
        return false;
      }
      wal_fsyncs_.fetch_add(1, std::memory_order_relaxed);
      // The successful sync covered every appended byte (the commit
      // mutex is held: nothing appends concurrently), so this is a
      // truthful no-op settling of the accounting before the swap.
      sh.wal.mark_all_durable();
      sh.synced_ops = sh.appended_ops.load(std::memory_order_relaxed);
      retiring_seq = sh.wal.seq();
      const std::string path =
          wal_path(opts_.data_dir, s, retiring_seq + 1);
      std::string why;
      const int fd = open_segment_fresh(
          *io_, path, wal_prealloc_bytes(opts_.checkpoint_bytes), &why);
      if (fd < 0) {
        // Can't provision the successor segment (ENOSPC, most
        // likely). NOT fail-stop: the retiring segment is synced and
        // still healthy, so writes keep flowing into it; the flusher
        // retries the rotation next pass and may find space freed.
        checkpoint_retries_.fetch_add(1, std::memory_order_relaxed);
        set_last_error("wal rotate shard " + std::to_string(s) + ": " +
                       why);
        sh.needs_flush.store(true, std::memory_order_release);
        return false;
      }
      sh.wal.swap_segment(fd, retiring_seq + 1, path);
    }
    // Accumulate into flushing_tombs (a previously failed flush may
    // have left some): newer puts win at run-write time because the
    // memtable snapshot below outranks any flushing tombstone.
    sh.flushing_tombs.insert(sh.tombs.begin(), sh.tombs.end());
    sh.tombs.clear();
  }
  // (Waiters blocked on fsync_mu during the final sync above proceed
  // as soon as rotation drops it and find their targets durable.)

  // Snapshot the shard's full memtable contents, chunked (each chunk
  // is one consistent transaction; ops landing between chunks are in
  // the NEW wal segment and replay over this run, so per-key freshness
  // is preserved).
  std::vector<MapType::value_type> snap;
  std::int64_t lo = kMinKey;
  for (;;) {
    const std::size_t before = snap.size();
    map_.shard(s).scan(lo, kSnapshotChunk, snap);
    const std::size_t got = snap.size() - before;
    if (got < kSnapshotChunk) break;
    if (snap.back().first >= kMaxKey - 1) break;
    lo = snap.back().first + 1;
  }
  std::set<std::int64_t> tombs_copy;
  {
    std::lock_guard<std::mutex> g(sh.mu);
    tombs_copy = sh.flushing_tombs;
  }

  // Merge snapshot values with tombstones (value wins on a shared
  // key: the snapshot is newer than any flushed-generation erase).
  const std::string rpath = run_path(opts_.data_dir, s, retiring_seq);
  RunWriter writer(*io_, rpath, snap.size() + tombs_copy.size());
  auto ti = tombs_copy.begin();
  for (const auto& [key, value] : snap) {
    while (ti != tombs_copy.end() && *ti < key) {
      writer.add(Entry{kEntryTombstone, *ti, 0});
      ++ti;
    }
    if (ti != tombs_copy.end() && *ti == key) ++ti;
    writer.add(Entry{kEntryValue, key, value});
  }
  for (; ti != tombs_copy.end(); ++ti) {
    writer.add(Entry{kEntryTombstone, *ti, 0});
  }
  // A failed run write is atomic-or-nothing: delete the partial file,
  // keep every WAL segment it would have retired (they replay the
  // same data), count the retry, and let the flusher's next pass try
  // again — the WAL lost nothing, so this is NOT fail-stop.
  std::string why;
  if (!writer.finish(&why)) {
    io_->unlink(rpath.c_str());
    checkpoint_retries_.fetch_add(1, std::memory_order_relaxed);
    set_last_error(why);
    sh.needs_flush.store(true, std::memory_order_release);
    return false;
  }
  auto run = Run::load(*io_, rpath, retiring_seq, &why);
  if (!run) {
    io_->unlink(rpath.c_str());
    checkpoint_retries_.fetch_add(1, std::memory_order_relaxed);
    set_last_error(why);
    sh.needs_flush.store(true, std::memory_order_release);
    return false;
  }
  // The run's NAME must be durable before its WAL segments die.
  fsync_dir(*io_, opts_.data_dir);
  {
    std::lock_guard<std::mutex> g(sh.mu);
    sh.runs.push_back(std::move(run));
    sh.flushing_tombs.clear();
    sh.needs_flush.store(false, std::memory_order_release);
  }
  flushes_.fetch_add(1, std::memory_order_relaxed);
  for (std::uint64_t seq = sh.oldest_wal_seq; seq <= retiring_seq; ++seq) {
    io_->unlink(wal_path(opts_.data_dir, s, seq).c_str());
  }
  sh.oldest_wal_seq = retiring_seq + 1;
  fsync_dir(*io_, opts_.data_dir);

  // Evict the flushed keys so the memtable only holds what the run
  // does not: compare-erase keeps any key a concurrent writer updated
  // after the snapshot (equal-value ABA re-erase is harmless — the
  // run serves the identical value).
  for (std::size_t at = 0; at < snap.size(); at += kEvictBatch) {
    const std::size_t end = std::min(snap.size(), at + kEvictBatch);
    leap::txn([&](stm::Tx& tx) {
      for (std::size_t i = at; i < end; ++i) {
        const auto cur = map_.get_in(tx, snap[i].first);
        if (cur && *cur == snap[i].second) {
          map_.erase_in(tx, snap[i].first);
        }
      }
    });
  }
  return true;
}

std::optional<std::int64_t> Store::get_cold(std::int64_t key) {
  if (!open_) return std::nullopt;
  ShardState& sh = *shards_[map_.shard_of(key)];
  std::vector<std::shared_ptr<Run>> runs;
  {
    std::lock_guard<std::mutex> g(sh.mu);
    if (sh.tombs.count(key) || sh.flushing_tombs.count(key)) {
      return std::nullopt;
    }
    runs.assign(sh.runs.rbegin(), sh.runs.rend());  // newest first
  }
  for (const auto& run : runs) {
    if (!run->fence_contains(key)) continue;
    if (!run->bloom().maybe_contains(key)) {
      bloom_negatives_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    bool io_ok = true;
    const auto hit = run->get(key, &io_ok);
    if (!io_ok) {
      // Unreadable or CRC-failed block: counted, then the lookup
      // degrades to "absent in this run" — older runs (or a true
      // miss) still answer, never a silent wrong value.
      corrupt_blocks_.fetch_add(1, std::memory_order_relaxed);
    }
    if (!hit) continue;  // absent here (or unreadable block): older runs
    if (hit->tombstone) return std::nullopt;
    // Close the eviction race: a writer may have re-inserted the key
    // after the memtable miss that routed us here — fresher state in
    // the tombstone sets or the memtable outranks the run's value.
    {
      std::lock_guard<std::mutex> g(sh.mu);
      if (sh.tombs.count(key) || sh.flushing_tombs.count(key)) {
        return std::nullopt;
      }
    }
    if (const auto live = map_.get(key)) return live;
    cold_hits_.fetch_add(1, std::memory_order_relaxed);
    return hit->value;
  }
  return std::nullopt;
}

std::size_t Store::scan_merged(std::int64_t low, std::size_t limit,
                               std::vector<ScanPair>& out) {
  if (!open_) return map_.scan(low, limit, out);
  const std::size_t base = out.size();
  if (limit == 0) return 0;
  std::int64_t cursor = low;
  std::vector<ScanPair> mem;
  struct Tuple {
    std::int64_t key;
    std::uint64_t rank;  // lower wins: 0 memtable, 1 tombs, 2+ runs
    std::uint8_t kind;
    std::int64_t value;
  };
  std::vector<Tuple> tuples;
  std::vector<Entry> rbuf;
  for (;;) {
    const std::size_t want = limit - (out.size() - base);
    const std::size_t chunk = std::max<std::size_t>(want, 2);
    std::int64_t window_high = kMaxKey;
    bool capped = false;
    tuples.clear();

    mem.clear();
    map_.scan(cursor, chunk, mem);
    if (mem.size() == chunk) {
      window_high = mem.back().first;
      capped = true;
    }
    for (const auto& [key, value] : mem) {
      tuples.push_back({key, 0, kEntryValue, value});
    }

    // Tombstones: shard key ranges are disjoint and ordered, so the
    // per-shard ordered sets concatenate in global key order.
    const std::size_t shard_count = shards_.size();
    for (std::size_t s = 0; s < shard_count; ++s) {
      ShardState& sh = *shards_[s];
      std::lock_guard<std::mutex> g(sh.mu);
      for (const auto* set : {&sh.tombs, &sh.flushing_tombs}) {
        std::size_t got = 0;
        for (auto it = set->lower_bound(cursor);
             it != set->end() && *it <= window_high; ++it) {
          tuples.push_back({*it, 1, kEntryTombstone, 0});
          if (++got == chunk) {
            window_high = *it;
            capped = true;
            break;
          }
        }
      }
    }

    // Run entries, newest run = best (lowest) run rank.
    for (std::size_t s = 0; s < shard_count; ++s) {
      ShardState& sh = *shards_[s];
      std::vector<std::shared_ptr<Run>> runs;
      {
        std::lock_guard<std::mutex> g(sh.mu);
        runs = sh.runs;
      }
      for (const auto& run : runs) {
        if (!run->fence_overlaps(cursor, window_high)) continue;
        rbuf.clear();
        bool io_ok = true;
        run->read_range(cursor, window_high, chunk, rbuf, &io_ok);
        if (!io_ok) {
          corrupt_blocks_.fetch_add(1, std::memory_order_relaxed);
        }
        if (rbuf.size() == chunk && rbuf.back().key < window_high) {
          window_high = rbuf.back().key;
          capped = true;
        }
        // Rank: newer seq wins, always after memtable (0) and
        // tombstones (1) — seqs are tiny next to 2^40.
        const std::uint64_t rank = (std::uint64_t{1} << 40) - run->seq();
        for (const Entry& e : rbuf) {
          tuples.push_back({e.key, rank, e.kind, e.value});
        }
      }
    }

    std::stable_sort(tuples.begin(), tuples.end(),
                     [](const Tuple& a, const Tuple& b) {
                       if (a.key != b.key) return a.key < b.key;
                       return a.rank < b.rank;
                     });
    bool hit_limit = false;
    for (std::size_t i = 0; i < tuples.size(); ++i) {
      if (i > 0 && tuples[i].key == tuples[i - 1].key) continue;
      if (tuples[i].key > window_high) break;
      if (tuples[i].kind != kEntryValue) continue;
      out.emplace_back(tuples[i].key, tuples[i].value);
      if (out.size() - base == limit) {
        hit_limit = true;
        break;
      }
    }
    if (hit_limit || !capped || window_high >= kMaxKey) break;
    cursor = window_high + 1;
  }
  return out.size() - base;
}

StoreStats Store::stats() const {
  StoreStats st;
  st.wal_appends = wal_appends_.load(std::memory_order_relaxed);
  st.wal_fsyncs = wal_fsyncs_.load(std::memory_order_relaxed);
  st.wal_group_ops = wal_group_ops_.load(std::memory_order_relaxed);
  st.flushes = flushes_.load(std::memory_order_relaxed);
  st.bloom_negatives = bloom_negatives_.load(std::memory_order_relaxed);
  st.cold_hits = cold_hits_.load(std::memory_order_relaxed);
  st.recovered_ops = recovered_ops_.load(std::memory_order_relaxed);
  st.fail_stop = fail_stop_.load(std::memory_order_acquire) ? 1 : 0;
  st.corrupt_blocks = corrupt_blocks_.load(std::memory_order_relaxed);
  st.checkpoint_retries =
      checkpoint_retries_.load(std::memory_order_relaxed);
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> g(sh->mu);
    st.runs += sh->runs.size();
  }
  return st;
}

bool Store::tear_wal_tail_for_test(std::size_t s, std::uint64_t bytes) {
  if (s >= shards_.size()) return false;
  std::lock_guard<std::mutex> fs(shards_[s]->fsync_mu);
  return shards_[s]->wal.truncate_tail_for_test(bytes);
}

}  // namespace leap::store
