#include "harness/workload.hpp"

#include <algorithm>
#include <cstdlib>
#include <thread>

namespace leap::harness {

bool smoke_mode() {
  static const bool smoke = std::getenv("LEAP_BENCH_SMOKE") != nullptr;
  return smoke;
}

std::chrono::milliseconds bench_duration(
    std::chrono::milliseconds preferred) {
  if (const char* raw = std::getenv("LEAP_BENCH_MS")) {
    const long ms = std::strtol(raw, nullptr, 10);
    if (ms > 0) return std::chrono::milliseconds(ms);
  }
  if (smoke_mode()) {
    return std::min(preferred, std::chrono::milliseconds(25));
  }
  return preferred;
}

int bench_repeats(int preferred) {
  return smoke_mode() ? 1 : std::max(1, preferred);
}

std::vector<unsigned> thread_sweep() {
  if (smoke_mode()) return {1u, 2u};
  unsigned max_threads = std::max(1u, std::thread::hardware_concurrency());
  if (const char* raw = std::getenv("LEAP_BENCH_MAX_THREADS")) {
    const long cap = std::strtol(raw, nullptr, 10);
    if (cap > 0) max_threads = static_cast<unsigned>(cap);
  }
  std::vector<unsigned> sweep;
  for (unsigned t = 1; t < max_threads; t *= 2) sweep.push_back(t);
  sweep.push_back(max_threads);
  return sweep;
}

std::chrono::milliseconds warmup_duration(
    std::chrono::milliseconds measured) {
  const auto quarter = measured / 4;
  const auto floor = std::chrono::milliseconds(smoke_mode() ? 5 : 20);
  return std::max(quarter, floor);
}

}  // namespace leap::harness
