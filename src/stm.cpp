#include "stm/stm.hpp"

#include <shared_mutex>

namespace leap::stm {

namespace detail {

namespace {

std::atomic<std::uint64_t> g_clock{0};
std::shared_mutex g_commit_gate;

}  // namespace

std::atomic<std::uint64_t>& global_clock() noexcept { return g_clock; }

void commit_gate_lock_shared() noexcept { g_commit_gate.lock_shared(); }
void commit_gate_unlock_shared() noexcept { g_commit_gate.unlock_shared(); }
void commit_gate_lock_exclusive() noexcept { g_commit_gate.lock(); }
void commit_gate_unlock_exclusive() noexcept { g_commit_gate.unlock(); }

}  // namespace detail

Tx& tls_tx() {
  thread_local Tx tx;
  return tx;
}

}  // namespace leap::stm
