// leap::net::Server implementation — epoll event loops, connection
// state machines, and the request handlers that decode pipelined
// bursts into composable `*_in` forms. Design notes in
// include/leaplist/net/server.hpp; wire format in
// include/leaplist/net/protocol.hpp and docs/server.md.
#include "leaplist/net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <optional>
#include <unordered_map>
#include <utility>

#include "leaplist/net/protocol.hpp"
#include "leaplist/txn.hpp"

namespace leap::net {

namespace {

/// Pause producing responses for a connection once this much output is
/// queued; epoll writability resumes it. Bounds server memory per
/// connection regardless of scan span or pipeline depth.
constexpr std::size_t kOutHighWater = 256 * 1024;

/// Stop reading from a connection whose input backlog this exceeds
/// (the peer outran our processing); draining re-arms EPOLLIN.
constexpr std::size_t kInHighWater = 256 * 1024;

constexpr std::size_t kReadChunk = 64 * 1024;

bool set_nodelay(int fd) {
  int one = 1;
  return ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) == 0;
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Admission decision recorded per complete frame at ARRIVAL, consumed
/// in FIFO order when the frame is pulled for execution.
enum : std::uint8_t {
  kDecShed = 0,    // over a cap when it arrived: answer kOverloaded
  kDecAdmit = 1,   // admitted and counted in the queue gauges
  kDecExempt = 2,  // admitted without counting (Stats requests)
};

}  // namespace

/// One epoll shard: a thread, its epoll instance, a wake eventfd, and
/// the connections it accepted. All per-connection state is touched by
/// this thread only.
struct Server::Worker {
  /// An in-flight streaming scan; produced chunk-by-chunk so the
  /// response order stays FIFO while memory stays bounded.
  struct ScanState {
    std::int64_t next_low = 0;
    std::int64_t high = 0;
    std::uint64_t remaining = 0;  // pairs still allowed (if bounded)
    bool bounded = false;
  };

  struct Conn {
    int fd = -1;
    std::vector<std::uint8_t> in;
    std::size_t in_ofs = 0;    // parse cursor into `in`
    std::size_t count_ofs = 0;  // admission-count cursor (>= in_ofs)
    std::vector<std::uint8_t> out;
    std::size_t out_ofs = 0;  // flush cursor into `out`
    std::optional<ScanState> scan;
    /// Per-frame admission decisions (kDec*), FIFO with the frames
    /// between in_ofs and count_ofs.
    std::deque<std::uint8_t> admit;
    std::size_t queued_admitted = 0;  // kDecAdmit entries still queued
    std::uint32_t armed = 0;  // epoll interest currently registered
    bool closing = false;     // flush what is queued, then close
    bool peer_eof = false;    // read side done; serve then close
  };

  /// Per-worker observability counters. Written by the owning thread
  /// with relaxed ops only; Server::stats() reads them cross-thread
  /// and stop() folds them into the Server's totals.
  struct Counters {
    std::atomic<std::uint64_t> ops{0};
    std::atomic<std::uint64_t> errored{0};
    std::atomic<std::uint64_t> shed{0};
    std::atomic<std::uint64_t> stm_retries{0};
    std::atomic<std::uint64_t> batches{0};
    std::atomic<std::uint64_t> batch_ops{0};
    std::atomic<std::uint64_t> queue_hwm{0};
    std::atomic<std::uint64_t> accept_pauses{0};
    std::atomic<std::uint64_t> emfile_sheds{0};
    std::atomic<std::uint64_t> batch_hist[kBatchHistBuckets] = {};
  };

  Server& server;
  int epoll_fd = -1;
  int wake_fd = -1;
  std::thread thread;
  std::unordered_map<int, std::unique_ptr<Conn>> conns;
  Counters counters;
  /// Admitted requests buffered across this worker's connections,
  /// awaiting execution (the per-worker admission gauge).
  std::size_t queued = 0;
  std::size_t queue_hwm = 0;
  /// Reserved fd: on EMFILE/ENFILE it is released so one pending
  /// connection can be accept()ed and immediately closed (the peer
  /// sees EOF, not a hang), then reopened.
  int emergency_fd = -1;
  bool accept_paused = false;
  std::uint64_t accept_resume_ns = 0;
  // Scratch reused across requests (capacity persists).
  std::vector<Request> batch;
  std::vector<TxnResult> results;
  std::vector<std::pair<std::int64_t, std::int64_t>> scan_buf;
  std::vector<store::LogOp> log_ops;
  // Distinct addresses tagging the non-connection epoll registrations.
  int listen_tag = 0;
  int wake_tag = 0;

  explicit Worker(Server& owner) : server(owner) {}

  ~Worker() {
    for (auto& [fd, conn] : conns) ::close(fd);
    conns.clear();
    if (emergency_fd >= 0) ::close(emergency_fd);
    if (wake_fd >= 0) ::close(wake_fd);
    if (epoll_fd >= 0) ::close(epoll_fd);
  }

  bool init(std::string* error) {
    epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (epoll_fd < 0 || wake_fd < 0) {
      if (error) *error = "epoll/eventfd creation failed";
      return false;
    }
    emergency_fd = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = &wake_tag;
    if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, wake_fd, &ev) != 0) {
      if (error) *error = "epoll_ctl(wake) failed";
      return false;
    }
    ev.events = EPOLLIN | EPOLLEXCLUSIVE;
    ev.data.ptr = &listen_tag;
    if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, server.listen_fd_, &ev) != 0) {
      if (error) *error = "epoll_ctl(listen) failed";
      return false;
    }
    return true;
  }

  void wake() {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_fd, &one, sizeof(one));
  }

  void run() {
    epoll_event events[64];
    while (server.running_.load(std::memory_order_acquire)) {
      int timeout_ms = -1;
      if (accept_paused) {
        const std::uint64_t now = now_ns();
        timeout_ms = now >= accept_resume_ns
                         ? 0
                         : static_cast<int>(
                               (accept_resume_ns - now) / 1'000'000 + 1);
      }
      const int n = ::epoll_wait(epoll_fd, events, 64, timeout_ms);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (accept_paused && now_ns() >= accept_resume_ns) resume_accept();
      for (int i = 0; i < n; ++i) {
        void* tag = events[i].data.ptr;
        if (tag == &wake_tag) continue;  // stop flag is checked above
        if (tag == &listen_tag) {
          accept_all();
          continue;
        }
        on_conn_event(*static_cast<Conn*>(tag), events[i].events);
      }
    }
  }

  /// Deregister this worker's listen interest and schedule a retry —
  /// the overload hard cap and the EMFILE path both land here. New
  /// connections wait in the kernel listen backlog meanwhile.
  void pause_accept() {
    if (accept_paused) return;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, server.listen_fd_, nullptr);
    accept_paused = true;
    const unsigned backoff =
        server.opts_.accept_backoff_ms > 0 ? server.opts_.accept_backoff_ms
                                           : 1;
    accept_resume_ns = now_ns() + backoff * 1'000'000ull;
    counters.accept_pauses.fetch_add(1, std::memory_order_relaxed);
  }

  void resume_accept() {
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLEXCLUSIVE;
    ev.data.ptr = &listen_tag;
    if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, server.listen_fd_, &ev) == 0) {
      accept_paused = false;  // level-triggered: a waiting backlog fires
    } else {
      accept_resume_ns = now_ns() + 1'000'000ull;  // retry shortly
    }
  }

  /// Out of fds: burn the reserve to accept-then-close ONE pending
  /// connection (its peer sees a clean EOF instead of hanging in the
  /// backlog), then back off the listen fd — level-triggered epoll
  /// would otherwise spin at 100% CPU on the un-acceptable backlog.
  void shed_on_fd_exhaustion() {
    counters.emfile_sheds.fetch_add(1, std::memory_order_relaxed);
    if (emergency_fd >= 0) {
      ::close(emergency_fd);
      emergency_fd = -1;
      const int fd = ::accept4(server.listen_fd_, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd >= 0) ::close(fd);
      emergency_fd = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
    }
  }

  void accept_all() {
    for (;;) {
      if (server.opts_.accept_pause > 0 &&
          server.queued_.load(std::memory_order_relaxed) >=
              server.opts_.accept_pause) {
        pause_accept();  // hard cap: let the listen backlog absorb
        return;
      }
      const int fd = ::accept4(server.listen_fd_, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        if (errno == EMFILE || errno == ENFILE) {
          shed_on_fd_exhaustion();
          pause_accept();
          return;
        }
        // EAGAIN/EWOULDBLOCK (another worker won the wakeup) and
        // transient per-connection errors (ECONNABORTED, EPROTO):
        // nothing more to accept right now.
        return;
      }
      set_nodelay(fd);
      auto conn = std::make_unique<Conn>();
      conn->fd = fd;
      conn->armed = EPOLLIN;
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.ptr = conn.get();
      if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
        ::close(fd);
        continue;
      }
      conns.emplace(fd, std::move(conn));
      server.accepted_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void close_conn(Conn& c) {
    if (c.queued_admitted > 0) {  // unexecuted admitted requests die too
      queued -= c.queued_admitted;
      server.queued_.fetch_sub(c.queued_admitted, std::memory_order_relaxed);
    }
    ::close(c.fd);  // kernel drops the epoll registration with the fd
    conns.erase(c.fd);
  }

  void on_conn_event(Conn& c, std::uint32_t ev) {
    if (ev & EPOLLERR) {
      close_conn(c);
      return;
    }
    if ((ev & EPOLLHUP) && !(ev & EPOLLIN)) {
      close_conn(c);
      return;
    }
    if (ev & (EPOLLIN | EPOLLHUP)) {
      if (!read_some(c)) {
        close_conn(c);
        return;
      }
    }
    pump(c);
  }

  /// Drain the socket into the connection's input buffer. False means
  /// a hard error — the caller closes. Every return path runs the
  /// admission pass over whatever arrived.
  bool read_some(Conn& c) {
    std::uint8_t chunk[kReadChunk];
    for (;;) {
      if (c.in.size() >= kInHighWater) break;  // backpressure
      const ssize_t n = ::recv(c.fd, chunk, sizeof(chunk), 0);
      if (n > 0) {
        c.in.insert(c.in.end(), chunk, chunk + n);
        continue;
      }
      if (n == 0) {
        c.peer_eof = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    admit_new_frames(c);
    return true;
  }

  /// The admission pass: walk complete frames between count_ofs and
  /// the buffer end and decide each one's fate AT ARRIVAL — admitted
  /// (counted into the per-worker and global gauges) or shed (answered
  /// kOverloaded when it reaches the front of the FIFO). Stats
  /// requests are exempt so observability survives overload.
  void admit_new_frames(Conn& c) {
    const ServerOptions& opts = server.opts_;
    for (;;) {
      std::size_t len = 0;
      if (split_frame(c.in.data() + c.count_ofs, c.in.size() - c.count_ofs,
                      len) != FrameState::kReady) {
        return;  // kNeedMore: wait; kBad: process() poisons the stream
      }
      const Op op = static_cast<Op>(c.in[c.count_ofs + 4]);
      std::uint8_t decision = kDecAdmit;
      if (op == Op::kStats) {
        decision = kDecExempt;
      } else if ((opts.max_queue > 0 && queued >= opts.max_queue) ||
                 (opts.max_global > 0 &&
                  server.queued_.load(std::memory_order_relaxed) >=
                      opts.max_global)) {
        decision = kDecShed;
      }
      if (decision == kDecAdmit) {
        ++queued;
        ++c.queued_admitted;
        server.queued_.fetch_add(1, std::memory_order_relaxed);
        if (queued > queue_hwm) {
          queue_hwm = queued;
          counters.queue_hwm.store(queue_hwm, std::memory_order_relaxed);
        }
      }
      c.admit.push_back(decision);
      c.count_ofs += 4 + len;
    }
  }

  /// The per-connection engine: alternate producing responses and
  /// flushing until blocked on input, output, or the socket. Ends by
  /// re-arming the epoll interest to whatever unblocks us next.
  void pump(Conn& c) {
    for (;;) {
      process(c);
      if (!flush_some(c)) return;  // closed (error, or drained+closing)
      // More to produce and room to produce it?
      const bool can_produce =
          !c.closing && c.out.size() - c.out_ofs < kOutHighWater &&
          (c.scan.has_value() || has_complete_frame(c));
      if (!can_produce) break;
    }
    if ((c.peer_eof || c.closing) && !c.scan.has_value() &&
        c.out.size() == c.out_ofs) {
      close_conn(c);
      return;
    }
    update_interest(c);
  }

  bool has_complete_frame(const Conn& c) const {
    std::size_t len = 0;
    return split_frame(c.in.data() + c.in_ofs, c.in.size() - c.in_ofs,
                       len) != FrameState::kNeedMore;
  }

  enum class Pull { kNone, kReq, kBadFrame, kBadBody };

  /// Consume one complete frame into `req`, popping its admission
  /// decision into `admitted`. kNone = need more bytes;
  /// kBadFrame/kBadBody poison the stream (caller errors out).
  Pull pull_request(Conn& c, Request& req, bool& admitted) {
    std::size_t len = 0;
    const std::uint8_t* at = c.in.data() + c.in_ofs;
    switch (split_frame(at, c.in.size() - c.in_ofs, len)) {
      case FrameState::kNeedMore:
        return Pull::kNone;
      case FrameState::kBad:
        return Pull::kBadFrame;
      case FrameState::kReady:
        break;
    }
    std::uint8_t decision = kDecExempt;
    if (!c.admit.empty()) {  // every complete frame has a decision
      decision = c.admit.front();
      c.admit.pop_front();
    }
    if (decision == kDecAdmit) {  // leaving the queue: uncount
      --queued;
      --c.queued_admitted;
      server.queued_.fetch_sub(1, std::memory_order_relaxed);
    }
    admitted = decision != kDecShed;
    auto parsed = parse_request(at + 4, len);
    c.in_ofs += 4 + len;
    if (!parsed) return Pull::kBadBody;
    req = std::move(*parsed);
    return Pull::kReq;
  }

  /// True when the next complete frame is an ADMITTED point op (safe
  /// to fuse into the current batch without reordering responses; a
  /// shed frame must answer kOverloaded in its own FIFO slot).
  bool peek_point(const Conn& c) const {
    std::size_t len = 0;
    const std::uint8_t* at = c.in.data() + c.in_ofs;
    if (split_frame(at, c.in.size() - c.in_ofs, len) != FrameState::kReady) {
      return false;
    }
    if (!c.admit.empty() && c.admit.front() == kDecShed) return false;
    return is_point_op(static_cast<Op>(at[4]));
  }

  /// Decode and execute buffered requests until input runs dry, the
  /// output buffer hits its high-water mark, or the stream errors.
  /// A request shed at admission answers Err::kOverloaded in its FIFO
  /// slot — the connection survives and later requests run normally.
  void process(Conn& c) {
    bool poisoned = false;
    Err poison_code = Err::kBadFrame;
    while (!c.closing && c.out.size() - c.out_ofs < kOutHighWater) {
      if (c.scan) {
        emit_scan_chunk(c);
        continue;
      }
      Request req;
      bool admitted = true;
      const Pull pull = pull_request(c, req, admitted);
      if (pull == Pull::kNone) break;
      if (pull == Pull::kBadFrame || pull == Pull::kBadBody) {
        poisoned = true;
        poison_code =
            pull == Pull::kBadFrame ? Err::kBadFrame : Err::kBadBody;
        break;
      }
      if (!admitted) {
        append_error(c.out, Err::kOverloaded);
        counters.shed.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (req.op == Op::kStats) {
        append_stats(c.out, server.stats());
        counters.ops.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (req.op == Op::kScan) {
        start_scan(c, req);
        continue;
      }
      if (req.op == Op::kTxn) {
        exec_txn(req, c.out);
        counters.ops.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      // Point op: fuse the rest of the pipelined burst into one txn.
      batch.clear();
      batch.push_back(std::move(req));
      while (batch.size() < server.opts_.max_batch && peek_point(c)) {
        Request next;
        bool next_admitted = true;
        const Pull more = pull_request(c, next, next_admitted);
        if (more != Pull::kReq) {
          // peek said complete+point, so only a malformed body lands
          // here; answer the sound prefix first, then poison.
          poisoned = true;
          poison_code = Err::kBadBody;
          break;
        }
        batch.push_back(std::move(next));
      }
      exec_point_batch(c.out);
      counters.ops.fetch_add(batch.size(), std::memory_order_relaxed);
      if (poisoned) break;
    }
    if (poisoned) {
      append_error(c.out, poison_code);
      c.closing = true;
      counters.errored.fetch_add(1, std::memory_order_relaxed);
    }
    // Compact the consumed prefix so the buffer never creeps.
    if (c.in_ofs > 0) {
      c.in.erase(c.in.begin(),
                 c.in.begin() + static_cast<std::ptrdiff_t>(c.in_ofs));
      c.count_ofs -= c.in_ofs;  // count_ofs >= in_ofs always
      c.in_ofs = 0;
    }
  }

  /// The thread-local Tx is the one leap::txn uses on this worker, so
  /// its cumulative aborts() sampled before/after a map operation
  /// yields exactly that operation's conflict retries.
  std::uint64_t sample_aborts() const { return stm::tls_tx().aborts(); }

  void charge_retries(std::uint64_t aborts_before) {
    const std::uint64_t retries = sample_aborts() - aborts_before;
    if (retries > 0) {
      counters.stm_retries.fetch_add(retries, std::memory_order_relaxed);
    }
  }

  /// Route a commit through the durable tier when one is configured:
  /// the batch's mutations are WAL-logged under the affected shards'
  /// commit mutexes (log order == commit order) and the call returns
  /// only once they are durable per --fsync-mode — response frames are
  /// built after, so an acked write is a durable write. Pure-read
  /// batches and the in-memory configuration skip the store entirely.
  /// False = the store refused or failed to make the batch durable
  /// (fail-stop); the caller must answer every mutation in the batch
  /// Err::kStoreFailed, never Ok — whatever `apply` did to the
  /// memtable is quarantined off the log and a restart forgets it.
  template <typename Ops, typename Fn>
  [[nodiscard]] bool durable_apply(const Ops& ops, Fn&& apply) {
    store::Store* st = server.store_.get();
    if (st == nullptr) {
      apply();
      return true;
    }
    log_ops.clear();
    for (const auto& op : ops) {
      if (op.op == Op::kPut) {
        log_ops.push_back({false, op.key, op.value});
      } else if (op.op == Op::kErase) {
        log_ops.push_back({true, op.key, 0});
      }
    }
    return st->log_batch(log_ops.data(), log_ops.size(), apply);
  }

  /// After a commit with the store enabled, answer memtable misses
  /// from the cold tier (tombstones, then bloom-gated runs).
  template <typename Ops>
  void patch_cold_gets(const Ops& ops) {
    store::Store* st = server.store_.get();
    if (st == nullptr) return;
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (ops[i].op != Op::kGet || results[i].flag != 0) continue;
      if (const auto cold = st->get_cold(ops[i].key)) {
        results[i].flag = 1;
        results[i].value = *cold;
      }
    }
  }

  /// Execute `batch` (point ops only) as ONE transaction and append
  /// the per-op response frames in order. The closure may re-run on
  /// conflict, so results are (re)collected per attempt and frames are
  /// built only after the commit.
  void exec_point_batch(std::vector<std::uint8_t>& out) {
    counters.batches.fetch_add(1, std::memory_order_relaxed);
    counters.batch_ops.fetch_add(batch.size(), std::memory_order_relaxed);
    counters.batch_hist[batch_hist_bucket(batch.size())].fetch_add(
        1, std::memory_order_relaxed);
    const std::uint64_t aborts_before = sample_aborts();
    Server::MapType& map = server.map_;
    const auto apply = [&] {
      leap::txn([&](stm::Tx& tx) {
        results.clear();
        for (const Request& req : batch) {
          TxnResult r;
          switch (req.op) {
            case Op::kGet: {
              const auto hit = map.get_in(tx, req.key);
              r.flag = hit.has_value() ? 1 : 0;
              r.value = hit.value_or(0);
              break;
            }
            case Op::kPut:
              r.flag = map.insert_in(tx, req.key, req.value) ? 1 : 0;
              break;
            default:  // kErase; parse_request admits nothing else here
              r.flag = map.erase_in(tx, req.key) ? 1 : 0;
              break;
          }
          results.push_back(r);
        }
      });
    };
    const bool durable = durable_apply(batch, apply);
    charge_retries(aborts_before);
    if (!durable) {
      // The store is fail-stop: every mutation in the burst answers
      // Err::kStoreFailed in its FIFO slot (it was never durably
      // logged, so it must never look acked), but the gets still
      // deserve answers — re-read them in a read-only txn so they
      // reflect the current (read-only-from-here) map state.
      leap::txn([&](stm::Tx& tx) {
        results.clear();
        for (const Request& req : batch) {
          TxnResult r;
          if (req.op == Op::kGet) {
            const auto hit = map.get_in(tx, req.key);
            r.flag = hit.has_value() ? 1 : 0;
            r.value = hit.value_or(0);
          }
          results.push_back(r);
        }
      });
      patch_cold_gets(batch);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (batch[i].op == Op::kGet) {
          if (results[i].flag) {
            append_found(out, results[i].value);
          } else {
            append_miss(out);
          }
        } else {
          append_error(out, Err::kStoreFailed);
        }
      }
      return;
    }
    patch_cold_gets(batch);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      switch (batch[i].op) {
        case Op::kGet:
          if (results[i].flag) {
            append_found(out, results[i].value);
          } else {
            append_miss(out);
          }
          break;
        default:
          append_ok(out, results[i].flag != 0);
          break;
      }
    }
  }

  /// The multi-key transaction opcode: all sub-ops in one leap::txn —
  /// the paper's composable atomicity, across shards, over the wire.
  void exec_txn(const Request& req, std::vector<std::uint8_t>& out) {
    const std::uint64_t aborts_before = sample_aborts();
    Server::MapType& map = server.map_;
    const auto apply = [&] {
      leap::txn([&](stm::Tx& tx) {
        results.clear();
        for (const TxnOp& op : req.txn) {
          TxnResult r;
          switch (op.op) {
            case Op::kGet: {
              const auto hit = map.get_in(tx, op.key);
              r.flag = hit.has_value() ? 1 : 0;
              r.value = hit.value_or(0);
              break;
            }
            case Op::kPut:
              r.flag = map.insert_in(tx, op.key, op.value) ? 1 : 0;
              break;
            default:  // kErase; parse_request rejects the rest
              r.flag = map.erase_in(tx, op.key) ? 1 : 0;
              break;
          }
          results.push_back(r);
        }
      });
    };
    const bool durable = durable_apply(req.txn, apply);
    charge_retries(aborts_before);
    if (!durable) {
      // A transaction is all-or-nothing on the wire too: its writes
      // were never durably logged, so the whole txn answers one
      // Err::kStoreFailed frame. (Pure-read txns log zero ops and
      // never take this path.)
      append_error(out, Err::kStoreFailed);
      return;
    }
    patch_cold_gets(req.txn);
    append_txn_done(out, req.txn, results);
  }

  void start_scan(Conn& c, const Request& req) {
    ScanState s;
    s.next_low = req.low;
    s.high = req.high;
    s.bounded = req.limit != 0;
    s.remaining = req.limit;
    c.scan = s;
  }

  /// Produce the next chunk of an in-flight scan: one bounded stitched
  /// transaction per chunk (kScanChunkPairs caps both the txn's read
  /// span and the buffered pairs). A scan whose whole result fits one
  /// chunk is answered by a single transaction — fully linearizable;
  /// longer streams are consistent per chunk (docs/server.md).
  void emit_scan_chunk(Conn& c) {
    ScanState& s = *c.scan;
    const std::size_t cap =
        s.bounded ? static_cast<std::size_t>(
                        std::min<std::uint64_t>(kScanChunkPairs, s.remaining))
                  : kScanChunkPairs;
    if (cap == 0 || s.next_low > s.high) {
      append_scan_pairs(c.out, nullptr, 0, true);
      finish_scan(c);
      return;
    }
    scan_buf.clear();
    const std::uint64_t aborts_before = sample_aborts();
    if (store::Store* st = server.store_.get()) {
      st->scan_merged(s.next_low, cap, scan_buf);
    } else {
      server.map_.scan(s.next_low, cap, scan_buf);
    }
    charge_retries(aborts_before);
    // scan() is bounded below only; clip the tail past `high`.
    std::size_t n = scan_buf.size();
    while (n > 0 && scan_buf[n - 1].first > s.high) --n;
    bool done = n < scan_buf.size()          // clipped at high
                || scan_buf.size() < cap     // map exhausted
                || scan_buf[n - 1].first >= s.high;
    if (!done && s.bounded) {
      s.remaining -= n;
      done = s.remaining == 0;
    }
    if (!done) s.next_low = scan_buf[n - 1].first + 1;
    append_scan_pairs(c.out, scan_buf.data(), n, done);
    if (done) finish_scan(c);
  }

  void finish_scan(Conn& c) {
    c.scan.reset();
    counters.ops.fetch_add(1, std::memory_order_relaxed);
  }

  /// Write queued output. False = the connection was closed (hard
  /// error, or it was draining toward close and is now drained).
  bool flush_some(Conn& c) {
    while (c.out_ofs < c.out.size()) {
      const ssize_t n = ::send(c.fd, c.out.data() + c.out_ofs,
                               c.out.size() - c.out_ofs, MSG_NOSIGNAL);
      if (n > 0) {
        c.out_ofs += static_cast<std::size_t>(n);
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      close_conn(c);
      return false;
    }
    if (c.out_ofs == c.out.size()) {
      c.out.clear();
      c.out_ofs = 0;
      if (c.closing && !c.scan.has_value()) {
        close_conn(c);
        return false;
      }
    } else if (c.out_ofs > kOutHighWater) {
      c.out.erase(c.out.begin(),
                  c.out.begin() + static_cast<std::ptrdiff_t>(c.out_ofs));
      c.out_ofs = 0;
    }
    return true;
  }

  void update_interest(Conn& c) {
    std::uint32_t want = 0;
    if (!c.closing && !c.peer_eof && c.in.size() < kInHighWater) {
      want |= EPOLLIN;
    }
    if (c.out_ofs < c.out.size()) want |= EPOLLOUT;
    if (want == c.armed) return;
    epoll_event ev{};
    ev.events = want;
    ev.data.ptr = &c;
    if (::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, c.fd, &ev) != 0) {
      // The kernel rejected the change; caching `want` anyway would
      // desync `armed` from the real registration for good. The
      // connection is unsalvageable without its epoll state.
      close_conn(c);
      return;
    }
    c.armed = want;
  }
};

Server::Server(const ServerOptions& opts)
    : opts_(opts),
      map_({.shards = opts.shards, .params = opts.params}, opts.key_lo,
           opts.key_hi) {}

Server::~Server() { stop(); }

bool Server::start(std::string* error) {
  if (!opts_.data_dir.empty()) {
    // Recovery runs before the socket exists: by the time a client can
    // connect, every acknowledged pre-crash write is back in the map.
    store::StoreOptions sopts;
    sopts.data_dir = opts_.data_dir;
    sopts.fsync_mode = opts_.fsync_mode;
    sopts.checkpoint_bytes = opts_.checkpoint_bytes;
    sopts.io = opts_.store_io;
    store_ = std::make_unique<store::Store>(map_, sopts);
    if (!store_->open(error)) {
      store_.reset();
      return false;
    }
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) {
    if (error) *error = "socket() failed";
    return false;
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(opts_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 1024) != 0) {
    if (error) *error = std::string("bind/listen failed: ") + strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);

  running_.store(true, std::memory_order_release);
  const unsigned workers = opts_.workers < 1 ? 1 : opts_.workers;
  for (unsigned w = 0; w < workers; ++w) {
    auto worker = std::make_unique<Worker>(*this);
    if (!worker->init(error)) {
      running_.store(false, std::memory_order_release);
      stop();
      return false;
    }
    workers_.push_back(std::move(worker));
  }
  for (auto& worker : workers_) {
    worker->thread = std::thread([w = worker.get()] { w->run(); });
  }
  return true;
}

void Server::stop() {
  running_.store(false, std::memory_order_release);
  for (auto& worker : workers_) worker->wake();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  // Fold the per-worker counters into the Server's totals so stats()
  // stays truthful after the workers are gone.
  for (auto& worker : workers_) {
    const Worker::Counters& c = worker->counters;
    ops_.fetch_add(c.ops.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    errored_.fetch_add(c.errored.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    shed_.fetch_add(c.shed.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    stm_retries_.fetch_add(c.stm_retries.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
    batches_.fetch_add(c.batches.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    batch_ops_.fetch_add(c.batch_ops.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    accept_pauses_.fetch_add(c.accept_pauses.load(std::memory_order_relaxed),
                             std::memory_order_relaxed);
    emfile_sheds_.fetch_add(c.emfile_sheds.load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
    const std::uint64_t hwm = c.queue_hwm.load(std::memory_order_relaxed);
    if (hwm > queue_hwm_.load(std::memory_order_relaxed)) {
      queue_hwm_.store(hwm, std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < kBatchHistBuckets; ++i) {
      batch_hist_[i].fetch_add(
          c.batch_hist[i].load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
  }
  workers_.clear();  // Worker dtors close epoll/event/conn fds
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (store_) {
    store_->close();
    store_final_ = store_->stats();
    store_.reset();
  }
}

ServerStats Server::stats() const {
  ServerStats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.queued_now = queued_.load(std::memory_order_relaxed);
  s.ops = ops_.load(std::memory_order_relaxed);
  s.errored = errored_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.stm_retries = stm_retries_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.batch_ops = batch_ops_.load(std::memory_order_relaxed);
  s.queue_hwm = queue_hwm_.load(std::memory_order_relaxed);
  s.accept_pauses = accept_pauses_.load(std::memory_order_relaxed);
  s.emfile_sheds = emfile_sheds_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kBatchHistBuckets; ++i) {
    s.batch_hist[i] = batch_hist_[i].load(std::memory_order_relaxed);
  }
  for (const auto& worker : workers_) {
    const Worker::Counters& c = worker->counters;
    s.ops += c.ops.load(std::memory_order_relaxed);
    s.errored += c.errored.load(std::memory_order_relaxed);
    s.shed += c.shed.load(std::memory_order_relaxed);
    s.stm_retries += c.stm_retries.load(std::memory_order_relaxed);
    s.batches += c.batches.load(std::memory_order_relaxed);
    s.batch_ops += c.batch_ops.load(std::memory_order_relaxed);
    s.accept_pauses += c.accept_pauses.load(std::memory_order_relaxed);
    s.emfile_sheds += c.emfile_sheds.load(std::memory_order_relaxed);
    s.queue_hwm =
        std::max(s.queue_hwm, c.queue_hwm.load(std::memory_order_relaxed));
    for (std::size_t i = 0; i < kBatchHistBuckets; ++i) {
      s.batch_hist[i] += c.batch_hist[i].load(std::memory_order_relaxed);
    }
  }
  const store::StoreStats st = store_ ? store_->stats() : store_final_;
  s.wal_appends = st.wal_appends;
  s.wal_fsyncs = st.wal_fsyncs;
  s.wal_group_ops = st.wal_group_ops;
  s.store_flushes = st.flushes;
  s.store_runs = st.runs;
  s.bloom_negatives = st.bloom_negatives;
  s.cold_hits = st.cold_hits;
  s.recovered_ops = st.recovered_ops;
  s.store_fail_stop = st.fail_stop;
  s.corrupt_blocks = st.corrupt_blocks;
  s.checkpoint_retries = st.checkpoint_retries;
  return s;
}

}  // namespace leap::net
