// Ablation: the node-size (K) trade-off that justifies the paper's
// K = 300 (§3, footnote 2: "experimentally found these values achieve
// good performance").
//
// Large K makes range queries cheaper (fewer instrumented node hops per
// span) but updates dearer (every update copies a whole node). The sweep
// prints LT throughput per K for a modify-only, a range-only, and the
// paper's mixed workload.
#include "fig_common.hpp"

using namespace leap::bench;

int main() {
  const auto duration = leap::harness::bench_duration(
      std::chrono::milliseconds(200));
  const int repeats = leap::harness::bench_repeats(1);
  const unsigned threads = leap::harness::thread_sweep().back();
  const std::size_t node_sizes[] = {16, 64, 150, 300, 600};

  print_figure_header(
      std::cout, "Ablation: node size K",
      "Leap-LT, 100K elements, 4 lists, max threads",
      "updates degrade with K (node copies); range queries improve with K "
      "(fewer hops); K~300 balances the paper's mixed workload");

  Table table({"K", "100% modify", "100% range", "40/40/20 mix",
               "nodes/list"});
  for (const std::size_t node_size : node_sizes) {
    WorkloadConfig cfg = paper_config();
    cfg.params.node_size = node_size;
    cfg.threads = threads;
    cfg.duration = duration;

    cfg.mix = Mix::modify_only();
    const double modify =
        harness::run_workload<MapAdapter<LTMap>>(cfg, repeats).ops_per_sec;
    cfg.mix = Mix::range_only();
    const double range =
        harness::run_workload<MapAdapter<LTMap>>(cfg, repeats).ops_per_sec;
    cfg.mix = Mix::read_dominated();
    const double mixed =
        harness::run_workload<MapAdapter<LTMap>>(cfg, repeats).ops_per_sec;

    const std::size_t nodes =
        cfg.initial_size / std::max<std::size_t>(1, node_size / 2);
    table.add_row({std::to_string(node_size), Table::format_ops(modify),
                   Table::format_ops(range), Table::format_ops(mixed),
                   std::to_string(nodes)});
  }
  table.print(std::cout);
  return 0;
}
