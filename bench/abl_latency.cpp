// Ablation: operation latency percentiles under the paper's mixed
// workload (40% lookup / 40% range / 20% modify, 100K elements, 4
// lists). The paper reports throughput only; tail latency is what an
// in-memory-database integrator (§4) would ask next. Expected shape:
// Leap-LT's transaction-free lookups give the flattest lookup tail; its
// short locking transactions keep update p99 well below COP/tm, whose
// transactions carry full node-content write sets; the rwlock variant
// shows the classic convoy tail on reads whenever a writer holds the
// lock.
#include <iomanip>
#include <sstream>

#include "fig_common.hpp"

using namespace leap::bench;

namespace {

std::string us(std::uint64_t nanos) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(1)
      << static_cast<double>(nanos) / 1000.0;
  return out.str();
}

template <typename MapT>
void add_rows(Table& table, const char* name, const WorkloadConfig& cfg) {
  harness::MapAdapter<MapT> adapter(cfg);
  WorkloadConfig warmup = cfg;
  warmup.duration = leap::harness::warmup_duration(cfg.duration);
  (void)harness::run_throughput(adapter, warmup);
  const harness::LatencyResult result = harness::run_latency(adapter, cfg);
  const auto row = [&](const char* op, const harness::LatencyHistogram& h) {
    table.add_row({std::string(name) + " " + op, us(h.percentile(0.50)),
                   us(h.percentile(0.95)), us(h.percentile(0.99)),
                   us(h.percentile(0.999)), std::to_string(h.samples())});
  };
  row("update", result.update);
  row("lookup", result.lookup);
  row("range", result.range);
}

}  // namespace

int main() {
  WorkloadConfig cfg = paper_config();
  cfg.mix = Mix::read_dominated();
  cfg.threads = leap::harness::thread_sweep().back();
  cfg.duration = leap::harness::bench_duration(std::chrono::milliseconds(400));

  print_figure_header(
      std::cout, "Ablation: latency percentiles (us)",
      "40/40/20 mix, 100K elements, 4 lists, " +
          std::to_string(cfg.threads) + " threads",
      "LT: flat lookup tail (no transactions) and short-txn update tail; "
      "COP/tm updates drag content-sized write sets into p99");

  Table table({"variant op", "p50", "p95", "p99", "p99.9", "samples"});
  add_rows<LTMap>(table, "LT", cfg);
  add_rows<COPMap>(table, "COP", cfg);
  add_rows<TMMap>(table, "tm", cfg);
  add_rows<RWMap>(table, "rwlock", cfg);
  table.print(std::cout);
  return 0;
}
