// Ablation: shard-count sweep for leap::ShardedMap (PR 5).
//
// One structure, 100K preloaded keys, 8 threads regardless of core
// count, partitioned over S = 1..64 shards. Two workloads:
//
//   read-mostly   90% lookup / 10% modify — point ops route to one
//                 shard with no added synchronization, so throughput
//                 should rise with S while any shared hot spot
//                 (structure head, lock, STM clock) dilutes.
//   mixed         40% lookup / 30% range / 30% modify — stitched range
//                 queries pay a per-shard segment cost (and for tm run
//                 the whole stitched scan as ONE transaction), so this
//                 bounds the sharding win under range pressure.
//
// Series: sharded LT (locked publish), sharded tm (composable, the
// stitched scans are linearizable), and sharded rwlock (the global
// reader-writer lock splits S ways — the dramatic case). S = 1 is the
// routed baseline, so ratios isolate partitioning from routing cost.
//
// bench/record_bench.sh wraps this bench's JSON (LEAP_BENCH_JSON) into
// BENCH_PR5.json; the S-scaling ratios are the PR's acceptance signal.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "fig_common.hpp"

using namespace leap::bench;

namespace {

struct Series {
  const char* key;  // JSON prefix
  const char* name;
  Mix mix;
};

template <typename MapT>
double measure(WorkloadConfig cfg, const Mix& mix, int shards,
               int repeats) {
  cfg.mix = mix;
  cfg.shards = shards;
  return harness::run_workload<MapAdapter<MapT>>(cfg, repeats).ops_per_sec;
}

}  // namespace

int main() {
  const bool smoke = leap::harness::smoke_mode();
  const auto duration =
      leap::harness::bench_duration(std::chrono::milliseconds(400));
  const int repeats = leap::harness::bench_repeats(2);
  const std::vector<int> shard_counts =
      smoke ? std::vector<int>{1, 4}
            : std::vector<int>{1, 2, 4, 8, 16, 32, 64};

  WorkloadConfig base = paper_config();
  base.lists = 1;  // one structure, scaled out instead of replicated
  base.threads = 8;
  base.duration = duration;

  const Series series[] = {
      {"read", "read-mostly: 90% lookup / 10% modify", Mix{90, 0, 0}},
      {"mixed", "mixed: 40% lookup / 30% range / 30% modify",
       Mix{40, 30, 0}},
  };

  // results[prefix][S] = ops/sec, e.g. results["lt_read"][8].
  std::map<std::string, std::map<int, double>> results;

  for (const Series& s : series) {
    print_figure_header(
        std::cout, "Ablation: shard sweep",
        std::string(s.name) + ", 100K keys, 8 threads, S = routed shards",
        "read-mostly throughput rises with S > 1; rwlock gains most "
        "(the global lock splits S ways); ranges bound the win");
    Table table({"S", "Shard-LT", "Shard-tm", "Shard-rwl", "LT S/S1",
                 "tm S/S1", "rwl S/S1"});
    for (const int shards : shard_counts) {
      const double lt =
          measure<ShardedLTMap>(base, s.mix, shards, repeats);
      const double tm =
          measure<ShardedTMMap>(base, s.mix, shards, repeats);
      const double rw =
          measure<ShardedRWMap>(base, s.mix, shards, repeats);
      results[std::string("lt_") + s.key][shards] = lt;
      results[std::string("tm_") + s.key][shards] = tm;
      results[std::string("rw_") + s.key][shards] = rw;
      const double lt1 = results[std::string("lt_") + s.key][shard_counts[0]];
      const double tm1 = results[std::string("tm_") + s.key][shard_counts[0]];
      const double rw1 = results[std::string("rw_") + s.key][shard_counts[0]];
      table.add_row({std::to_string(shards), Table::format_ops(lt),
                     Table::format_ops(tm), Table::format_ops(rw),
                     Table::format_ratio(lt / std::max(lt1, 1.0)),
                     Table::format_ratio(tm / std::max(tm1, 1.0)),
                     Table::format_ratio(rw / std::max(rw1, 1.0))});
    }
    table.print(std::cout);
  }

  if (const char* path = std::getenv("LEAP_BENCH_JSON")) {
    const int s_lo = shard_counts.front();
    const int s_hi = shard_counts.back();
    std::ofstream out(path);
    out.setf(std::ios::fixed);
    out.precision(1);
    out << "{\n"
        << "  \"bench\": \"abl_shard\",\n"
        << "  \"threads\": 8,\n"
        << "  \"key_range\": 100000,\n"
        << "  \"scaling_shards\": " << s_hi << ",\n";
    for (const auto& [prefix, by_shards] : results) {
      for (const auto& [shards, ops] : by_shards) {
        out << "  \"" << prefix << "_s" << shards << "\": " << ops
            << ",\n";
      }
    }
    out.precision(3);
    bool first = true;
    for (const auto& [prefix, by_shards] : results) {
      const double lo = by_shards.at(s_lo);
      const double hi = by_shards.at(s_hi);
      out << (first ? "" : ",\n") << "  \"" << prefix
          << "_scaling\": " << (lo > 0 ? hi / lo : 0);
      first = false;
    }
    out << "\n}\n";
  }
  return 0;
}
