// Ablation: range-query cost versus span width.
//
// Sweep 1 (the paper's claim): the LT range query pays one instrumented
// access per node, i.e. per ~K/2 keys; the Skip-cas scan pays one
// (unsynchronized) hop per key but returns a possibly-inconsistent
// result. The crossover as spans grow is the "K times faster" claim of
// the abstract.
//
// Sweep 2 (PR 10): the bundled-reference crossover. One ShardedMap
// under a mixed scan/update workload, with the SAME linearizable
// guarantee delivered two ways: policy::TM's stitched scan (one
// transaction across all covered shards — instrumented reads, conflict
// aborts against the updaters) versus for_range_bundled on the same
// map (pin one timestamp, walk as-of it, zero STM involvement in the
// traversal). Sharded LT rides along as the bundled-native series.
// Narrow spans keep the two close (fixed per-op cost dominates); wide
// spans under update pressure are where the transactional scan pays
// for its read-set and retries while the as-of walk never aborts.
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>

#include "fig_common.hpp"

using namespace leap::bench;

namespace {

/// MapAdapter clone whose range op goes through the explicit
/// STM-free bundled walk instead of the policy's default for_range —
/// on a sharded TM map that is the one-line difference between the
/// two sides of the crossover. Everything else delegates.
template <typename MapT>
class BundledRangeAdapter {
 public:
  explicit BundledRangeAdapter(const WorkloadConfig& cfg) : inner_(cfg) {}

  void op_lookup(leap::util::Xoshiro256& rng) { inner_.op_lookup(rng); }
  void op_modify(leap::util::Xoshiro256& rng) { inner_.op_modify(rng); }
  void op_txn(leap::util::Xoshiro256& rng) { inner_.op_txn(rng); }

  void op_range(leap::util::Xoshiro256& rng) {
    const WorkloadConfig& cfg = inner_.config();
    const std::uint64_t span =
        cfg.rq_span_min +
        rng.next_below(cfg.rq_span_max - cfg.rq_span_min + 1);
    const auto low =
        static_cast<std::int64_t>(1 + rng.next_below(cfg.key_range));
    auto& buf = scratch();
    buf.clear();
    inner_.map(0).for_range_bundled(
        low, static_cast<std::int64_t>(low + span), leap::append_to(buf));
  }

 private:
  static std::vector<typename MapT::value_type>& scratch() {
    static thread_local std::vector<typename MapT::value_type> buf;
    return buf;
  }

  harness::MapAdapter<MapT> inner_;
};

}  // namespace

int main() {
  const bool smoke = leap::harness::smoke_mode();
  const auto duration = leap::harness::bench_duration(
      std::chrono::milliseconds(200));
  const int repeats = leap::harness::bench_repeats(1);
  const unsigned threads = leap::harness::thread_sweep().back();
  const std::vector<std::uint64_t> spans =
      smoke ? std::vector<std::uint64_t>{10, 1000, 10000}
            : std::vector<std::uint64_t>{10, 100, 500, 1000, 2000, 10000};

  // results["lt"][span] = ops/sec, one inner map per series.
  std::map<std::string, std::map<std::uint64_t, double>> results;

  print_figure_header(
      std::cout, "Ablation: range-query span",
      "100% range queries, 100K elements, 1 list, max threads",
      "Leap-LT advantage grows with the span (one instrumented access per "
      "K-key node vs per-key hops)");

  Table table({"span", "Leap-LT", "Skip-cas", "Skip-tm", "LT/cas", "LT/tm"});
  for (const std::uint64_t span : spans) {
    WorkloadConfig cfg = paper_config();
    cfg.mix = Mix::range_only();
    cfg.lists = 1;
    cfg.threads = threads;
    cfg.duration = duration;
    cfg.rq_span_min = span;
    cfg.rq_span_max = span;
    WorkloadConfig skip_cfg = cfg;
    skip_cfg.params.max_level = 20;

    const double lt =
        harness::run_workload<MapAdapter<LTMap>>(cfg, repeats).ops_per_sec;
    const double cas =
        harness::run_workload<MapAdapter<SkipCASMap>>(skip_cfg, repeats)
            .ops_per_sec;
    const double tm =
        harness::run_workload<MapAdapter<SkipTMMap>>(skip_cfg, repeats)
            .ops_per_sec;
    results["lt"][span] = lt;
    results["skipcas"][span] = cas;
    results["skiptm"][span] = tm;
    table.add_row({std::to_string(span), Table::format_ops(lt),
                   Table::format_ops(cas), Table::format_ops(tm),
                   Table::format_ratio(lt / std::max(cas, 1.0)),
                   Table::format_ratio(lt / std::max(tm, 1.0))});
  }
  table.print(std::cout);

  // --- Sweep 2: bundled vs TM-stitched cross-shard scans --------------
  constexpr int kXoverShards = 8;
  print_figure_header(
      std::cout, "Crossover: bundled vs TM-stitched scans (PR 10)",
      "50% range / 50% modify, 100K elements, 8 shards, max threads; "
      "same ShardedMap<TM>, scans stitched as one transaction vs walked "
      "as-of one pinned bundle timestamp",
      "both sides are linearizable; the bundled walk never aborts, so "
      "its edge grows with span width and update pressure");

  Table xover({"span", "TM-stitch", "TM-bundle", "LT-bundle",
               "bundle/stitch"});
  for (const std::uint64_t span : spans) {
    WorkloadConfig cfg = paper_config();
    cfg.mix = Mix::range_modify(50);
    cfg.lists = 1;
    cfg.shards = kXoverShards;
    cfg.threads = threads;
    cfg.duration = duration;
    cfg.rq_span_min = span;
    cfg.rq_span_max = span;

    const double stitched =
        harness::run_workload<MapAdapter<ShardedTMMap>>(cfg, repeats)
            .ops_per_sec;
    const double bundled =
        harness::run_workload<BundledRangeAdapter<ShardedTMMap>>(cfg,
                                                                 repeats)
            .ops_per_sec;
    const double lt_bundled =
        harness::run_workload<MapAdapter<ShardedLTMap>>(cfg, repeats)
            .ops_per_sec;
    results["xover_tm_stitched"][span] = stitched;
    results["xover_tm_bundled"][span] = bundled;
    results["xover_lt_bundled"][span] = lt_bundled;
    xover.add_row({std::to_string(span), Table::format_ops(stitched),
                   Table::format_ops(bundled),
                   Table::format_ops(lt_bundled),
                   Table::format_ratio(bundled / std::max(stitched, 1.0))});
  }
  xover.print(std::cout);

  if (const char* path = std::getenv("LEAP_BENCH_JSON")) {
    std::ofstream out(path);
    out.setf(std::ios::fixed);
    out << "{\n"
        << "  \"bench\": \"abl_rqspan\",\n"
        << "  \"threads\": " << threads << ",\n"
        << "  \"key_range\": 100000,\n"
        << "  \"xover_shards\": " << kXoverShards << ",\n";
    out.precision(1);
    for (const auto& [prefix, by_span] : results) {
      for (const auto& [span, ops] : by_span) {
        out << "  \"" << prefix << "_span" << span << "\": " << ops
            << ",\n";
      }
    }
    out.precision(3);
    bool first = true;
    for (const auto& [span, stitched] : results["xover_tm_stitched"]) {
      const double bundled = results["xover_tm_bundled"][span];
      out << (first ? "" : ",\n") << "  \"bundled_over_stitched_span"
          << span << "\": " << (stitched > 0 ? bundled / stitched : 0);
      first = false;
    }
    out << "\n}\n";
  }
  return 0;
}
