// Ablation: range-query cost versus span width.
//
// The LT range query pays one instrumented access per node, i.e. per
// ~K/2 keys; the Skip-cas scan pays one (unsynchronized) hop per key but
// returns a possibly-inconsistent result. The crossover as spans grow is
// the "K times faster" claim of the abstract.
#include "fig_common.hpp"

using namespace leap::bench;

int main() {
  const auto duration = leap::harness::bench_duration(
      std::chrono::milliseconds(200));
  const int repeats = leap::harness::bench_repeats(1);
  const unsigned threads = leap::harness::thread_sweep().back();
  const std::uint64_t spans[] = {10, 100, 500, 1000, 2000, 10000};

  print_figure_header(
      std::cout, "Ablation: range-query span",
      "100% range queries, 100K elements, 1 list, max threads",
      "Leap-LT advantage grows with the span (one instrumented access per "
      "K-key node vs per-key hops)");

  Table table({"span", "Leap-LT", "Skip-cas", "Skip-tm", "LT/cas", "LT/tm"});
  for (const std::uint64_t span : spans) {
    WorkloadConfig cfg = paper_config();
    cfg.mix = Mix::range_only();
    cfg.lists = 1;
    cfg.threads = threads;
    cfg.duration = duration;
    cfg.rq_span_min = span;
    cfg.rq_span_max = span;
    WorkloadConfig skip_cfg = cfg;
    skip_cfg.params.max_level = 20;

    const double lt =
        harness::run_workload<MapAdapter<LTMap>>(cfg, repeats).ops_per_sec;
    const double cas =
        harness::run_workload<MapAdapter<SkipCASMap>>(skip_cfg, repeats)
            .ops_per_sec;
    const double tm =
        harness::run_workload<MapAdapter<SkipTMMap>>(skip_cfg, repeats)
            .ops_per_sec;
    table.add_row({std::to_string(span), Table::format_ops(lt),
                   Table::format_ops(cas), Table::format_ops(tm),
                   Table::format_ratio(lt / std::max(cas, 1.0)),
                   Table::format_ratio(lt / std::max(tm, 1.0))});
  }
  table.print(std::cout);
  return 0;
}
