// Ablation: the per-access cost of STM instrumentation — the number that
// motivates the whole COP/LT design (§1.2, §2.1).
//
// Compares, per shared word accessed:
//   * raw atomic read (what LT's search pays),
//   * an instrumented tx read amortized inside one long transaction
//     (what COP/tm traversals pay),
//   * a single-location read transaction (the rejected alternative of
//     §2.1: "proved to have a larger negative impact on performance"),
//   * tx writes + commit (the write-set cost COP pays for node content).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "stm/stm.hpp"

namespace {

using namespace leap::stm;

constexpr std::size_t kWords = 1024;

std::vector<TxField<std::uint64_t>>& shared_words() {
  static std::vector<TxField<std::uint64_t>> words(kWords);
  return words;
}

void BM_RawRead(benchmark::State& state) {
  auto& words = shared_words();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(words[i++ & (kWords - 1)].load());
  }
}
BENCHMARK(BM_RawRead);

void BM_TxReadAmortized(benchmark::State& state) {
  auto& words = shared_words();
  Tx& tx = tls_tx();
  std::size_t i = 0;
  for (auto _ : state) {
    atomically(tx, [&](Tx& t) {
      for (std::size_t k = 0; k < 256; ++k) {
        benchmark::DoNotOptimize(words[i++ & (kWords - 1)].tx_read(t));
      }
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_TxReadAmortized);

void BM_SingleLocationReadTxn(benchmark::State& state) {
  auto& words = shared_words();
  Tx& tx = tls_tx();
  std::size_t i = 0;
  for (auto _ : state) {
    atomically(tx, [&](Tx& t) {
      benchmark::DoNotOptimize(words[i++ & (kWords - 1)].tx_read(t));
    });
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SingleLocationReadTxn);

void BM_TxWriteCommit(benchmark::State& state) {
  auto& words = shared_words();
  Tx& tx = tls_tx();
  const auto batch = static_cast<std::size_t>(state.range(0));
  std::size_t i = 0;
  for (auto _ : state) {
    atomically(tx, [&](Tx& t) {
      for (std::size_t k = 0; k < batch; ++k) {
        words[i++ & (kWords - 1)].tx_write(t, i);
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
// 16 ~ an LT locking transaction; 600 ~ a COP 300-pair node construction.
BENCHMARK(BM_TxWriteCommit)->Arg(16)->Arg(600);

// Write-set membership and read-your-writes at width W (Arg): the
// open-addressing stamp/index behind Tx::has_write, which composable
// typed-map ops probe once per level per operation — a linear scan
// here goes quadratic for wide multi-op transactions. The loop
// micro-asserts membership (present hits, absent misses) so an index
// regression fails the smoke run loudly instead of just slowly.
void BM_WriteSetProbe(benchmark::State& state) {
  auto& words = shared_words();
  Tx& tx = tls_tx();
  const auto width = static_cast<std::size_t>(state.range(0));
  std::uint64_t bad = 0;
  for (auto _ : state) {
    atomically(tx, [&](Tx& t) {
      for (std::size_t k = 0; k < width; ++k) {
        words[k].tx_write(t, k);
      }
      for (std::size_t k = 0; k < width; ++k) {
        if (!t.has_write(words[k])) ++bad;
        benchmark::DoNotOptimize(words[k].tx_read(t));  // read-your-writes
      }
      if (t.has_write(words[width])) ++bad;  // never written this txn
    });
  }
  if (bad != 0) {
    std::fprintf(stderr, "BM_WriteSetProbe: %llu membership errors\n",
                 static_cast<unsigned long long>(bad));
    std::abort();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * width));
}
// 16 ~ one leap-list update's swing; 512 ~ a wide typed-map transaction.
BENCHMARK(BM_WriteSetProbe)->Arg(16)->Arg(128)->Arg(512);

void BM_RawWrite(benchmark::State& state) {
  auto& words = shared_words();
  std::size_t i = 0;
  for (auto _ : state) {
    words[i & (kWords - 1)].store(i);
    ++i;
  }
}
BENCHMARK(BM_RawWrite);

}  // namespace

BENCHMARK_MAIN();
