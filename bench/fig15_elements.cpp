// Figure 15 reproduction: throughput of the four Leap-List variants while
// varying the initial number of elements per list (x-axis log scale in
// the paper: 1K .. 10M), at the maximum thread count.
//   (a) 100% modify   — paper: peak at 1M elements (fewer conflicts),
//                        drop at 10M (long predecessor searches)
//   (b) 100% lookup   — paper: peak at 10K elements, dropping with size
//
// Set LEAP_BENCH_HUGE=1 to include the 10M point (needs ~2 GB RAM and a
// long preload).
#include <cstdlib>

#include "fig_common.hpp"

using namespace leap::bench;

int main() {
  const auto duration = leap::harness::bench_duration(
      std::chrono::milliseconds(200));
  const int repeats = leap::harness::bench_repeats(1);
  const unsigned threads = leap::harness::thread_sweep().back();

  std::vector<std::size_t> sizes{1000, 10000, 100000, 1000000};
  if (std::getenv("LEAP_BENCH_HUGE") != nullptr) sizes.push_back(10000000);

  const struct {
    const char* id;
    const char* name;
    Mix mix;
    const char* expectation;
  } panels[] = {
      {"Fig 15(a)", "100% modify, element-count sweep", Mix::modify_only(),
       "throughput peaks around 1M elements (fewer conflicts), falls at "
       "10M (longer searches)"},
      {"Fig 15(b)", "100% lookup, element-count sweep", Mix::lookup_only(),
       "throughput peaks around 10K elements and falls with size"},
  };

  for (const auto& panel : panels) {
    print_figure_header(std::cout, panel.id, panel.name, panel.expectation);
    Table table(leap_table_headers("elements"));
    for (const std::size_t elements : sizes) {
      WorkloadConfig cfg = paper_config();
      cfg.mix = panel.mix;
      cfg.threads = threads;
      cfg.duration = duration;
      cfg.initial_size = elements;
      // Keep the update rate meaningful: keys are drawn from a range that
      // scales with the population, as in the paper's element sweep.
      cfg.key_range = std::max<std::uint64_t>(elements, 1000);
      const LeapRow row = measure_leap_row(cfg, repeats);
      table.add_row(leap_row_cells(std::to_string(elements), row));
    }
    table.print(std::cout);
  }
  return 0;
}
