// leap-loadgen — the network load generator for leapd (PR 6).
//
// Drives the wire protocol (leaplist/net/protocol.hpp) over loopback
// or a remote host, in two arrival models per connection:
//
//   closed loop   --pipeline D outstanding requests per connection;
//                 D = 1 is classic unpipelined request/response, D > 1
//                 exercises the server's burst batching (a pipelined
//                 burst of point ops commits as ONE server txn).
//   open loop     --rate R total ops/sec scheduled on a clock;
//                 latency is measured from the SCHEDULED send instant,
//                 so queueing delay under overload is charged to the
//                 server (no coordinated omission). The schedule is
//                 monotone even when the outstanding window is full:
//                 an op whose slot can't be sent is counted DROPPED
//                 and the clock still advances — never frozen.
//
// Each thread owns one connection and an event-driven poll() loop;
// latency is recorded per response (a multi-chunk scan counts once, at
// its ScanDone) into the harness log-domain histogram, reported as
// p50/p99/p999 with goodput. A response of Err::kOverloaded counts as
// SHED (the op completed unsuccessfully but honestly), not a failure.
// --sweep runs the recorded-trajectory grid (threads x pipeline) used
// by bench/record_bench.sh; --loadcurve first saturates the server
// closed-loop to calibrate, then replays an open-loop offered-load
// grid at fractions of that saturation rate (the tail-latency-vs-load
// curve). Exit status is nonzero when any connection failed or no ops
// completed, so CI can gate on it. After the runs, the server's own
// counters are fetched via the Stats opcode and printed as one line.
//
//   leap-loadgen --port P [--host 127.0.0.1] [--threads N] [--seconds S]
//     [--pipeline D] [--rate R] [--keys K] [--preload N]
//     [--mix get:put:erase:scan:txn] [--sweep] [--loadcurve]
//     [--putrange A:B] [--verifyrange A:B] [--tolerate-storefail]
//     [--timeout-ms MS]
//
// --putrange / --verifyrange are the crash-recovery oracle modes (no
// load phase runs): putrange writes every key in [A, B) with the
// DETERMINISTIC value key*31+7 — each put individually acknowledged —
// and verifyrange asserts every one of those keys reads back exactly
// that value, exiting nonzero on any mismatch. Because the value is a
// pure function of the key, a verifier needs no state from the writer:
// scripts/net_smoke.sh writes, kill -9s leapd, restarts it on the same
// --data-dir, and verifies from a fresh process.
//
// An Err::kStoreFailed response (the store went read-only fail-stop)
// is, like kOverloaded, an honest per-op answer: the load phase counts
// it shed. putrange normally fails hard on it; with
// --tolerate-storefail it counts acked vs store-failed puts and prints
//   leap-loadgen: putrange acked=N storefailed=M
// (how net_smoke's fault-injection phase asserts writes shed while the
// connection and the gets keep working). --timeout-ms (default 10000)
// bounds connect AND every socket read/write on the blocking clients,
// so a wedged server fails the run instead of hanging it.
#include <poll.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "fig_common.hpp"
#include "leaplist/net/client.hpp"
#include "leaplist/net/protocol.hpp"

using namespace leap::net;

namespace {

struct MixPct {
  int get = 75;
  int put = 15;
  int erase = 5;
  int scan = 2;
  int txn = 3;
};

struct GenConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  unsigned threads = 4;
  double seconds = 5.0;
  std::size_t pipeline = 16;  // closed-loop outstanding cap
  double rate = 0;            // total ops/sec; > 0 switches to open loop
  std::int64_t keys = 1'000'000;
  std::int64_t preload = 100'000;
  MixPct mix;
  int timeout_ms = 10'000;  // connect + socket read/write bound
};

struct GenResult {
  std::uint64_t ops = 0;       // completed responses (goodput)
  std::uint64_t shed = 0;      // Err::kOverloaded responses
  std::uint64_t dropped = 0;   // open-loop slots skipped, window full
  std::uint64_t failures = 0;  // connection-level failures
  double seconds = 0;
  leap::harness::LatencyHistogram hist;
};

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Build one request drawn from the mix; returns how many response
/// frames complete it (scans stream, everything else answers once —
/// tracked via a per-request pending marker instead; so this returns
/// void and pushes the frame).
void build_request(std::vector<std::uint8_t>& out, const GenConfig& cfg,
                   leap::util::Xoshiro256& rng) {
  const int dial = static_cast<int>(rng.next_below(100));
  const MixPct& mix = cfg.mix;
  const std::int64_t key = static_cast<std::int64_t>(
      rng.next_below(static_cast<std::uint64_t>(cfg.keys)));
  if (dial < mix.get) {
    append_get(out, key);
  } else if (dial < mix.get + mix.put) {
    append_put(out, key, static_cast<std::int64_t>(rng.next()));
  } else if (dial < mix.get + mix.put + mix.erase) {
    append_erase(out, key);
  } else if (dial < mix.get + mix.put + mix.erase + mix.scan) {
    append_scan(out, key, key + 256, 128);
  } else {
    // The headline opcode: a 3-key read-modify-move in one server txn.
    const std::int64_t k2 = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(cfg.keys)));
    const std::int64_t k3 = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(cfg.keys)));
    const std::vector<TxnOp> ops = {
        {Op::kGet, key, 0},
        {Op::kPut, k2, static_cast<std::int64_t>(rng.next())},
        {Op::kErase, k3, 0},
    };
    append_txn(out, ops);
  }
}

/// One connection's event loop: nonblocking socket, poll()-driven,
/// shared by both arrival models.
GenResult run_conn(const GenConfig& cfg, unsigned index,
                   std::uint64_t start_ns, std::uint64_t deadline_ns) {
  GenResult result;
  Client client;
  if (!client.connect(cfg.host, cfg.port, cfg.timeout_ms)) {
    result.failures = 1;
    return result;
  }
  const int fd = client.fd();
  leap::util::Xoshiro256 rng(0x10ad0000 + index);
  std::vector<std::uint8_t> out;
  std::size_t out_ofs = 0;
  std::vector<std::uint8_t> in;
  std::size_t in_ofs = 0;
  std::deque<std::uint64_t> pending;  // send (or scheduled) timestamps

  const bool open_loop = cfg.rate > 0;
  const double per_thread_rate =
      open_loop ? cfg.rate / static_cast<double>(cfg.threads) : 0;
  const std::uint64_t interval_ns =
      open_loop ? static_cast<std::uint64_t>(1e9 / per_thread_rate) : 0;
  // Stagger the open-loop clocks so threads don't fire in phase.
  std::uint64_t next_sched =
      start_ns + (open_loop ? interval_ns * index / cfg.threads : 0);
  constexpr std::size_t kMaxOutstanding = 4096;

  bool sending = true;
  std::uint64_t drain_deadline = 0;
  for (;;) {
    const std::uint64_t now = now_ns();
    if (sending && now >= deadline_ns) {
      sending = false;
      drain_deadline = now + 2'000'000'000ull;  // 2 s response grace
    }
    if (!sending && (pending.empty() || now >= drain_deadline)) break;

    // Enqueue new requests per the arrival model.
    if (sending) {
      if (open_loop) {
        // The schedule advances unconditionally — freezing next_sched
        // while the window is full would time later ops from a
        // postponed schedule and under-report latency at exactly the
        // loads where it matters (coordinated omission). A slot that
        // finds the window full is a DROPPED send, counted and
        // reported, and the clock keeps ticking.
        while (next_sched <= now) {
          if (pending.size() >= kMaxOutstanding) {
            result.dropped += 1;
            next_sched += interval_ns;
            continue;
          }
          build_request(out, cfg, rng);
          pending.push_back(next_sched);
          next_sched += interval_ns;
        }
      } else {
        while (pending.size() < cfg.pipeline) {
          build_request(out, cfg, rng);
          pending.push_back(now_ns());
        }
      }
    }

    // Nonblocking flush of whatever is queued.
    while (out_ofs < out.size()) {
      const ssize_t n = ::send(fd, out.data() + out_ofs,
                               out.size() - out_ofs,
                               MSG_NOSIGNAL | MSG_DONTWAIT);
      if (n > 0) {
        out_ofs += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      result.failures += 1;
      return result;
    }
    if (out_ofs == out.size()) {
      out.clear();
      out_ofs = 0;
    }

    // Wait for readability / writability / the next scheduled send.
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    if (out_ofs < out.size()) pfd.events |= POLLOUT;
    int timeout_ms = 50;
    if (open_loop && sending) {
      const std::uint64_t gap =
          next_sched > now ? (next_sched - now) / 1'000'000 : 0;
      timeout_ms = static_cast<int>(gap < 50 ? gap : 50);
    }
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0 && errno != EINTR) {
      result.failures += 1;
      return result;
    }
    if (ready <= 0 || !(pfd.revents & (POLLIN | POLLHUP | POLLERR))) {
      continue;
    }

    // Drain responses; complete one pending op per non-chunk frame.
    std::uint8_t chunk[64 * 1024];
    for (;;) {
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), MSG_DONTWAIT);
      if (n > 0) {
        in.insert(in.end(), chunk, chunk + n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      result.failures += 1;  // EOF or reset with requests outstanding
      return result;
    }
    const std::uint64_t recv_ns = now_ns();
    for (;;) {
      std::size_t len = 0;
      const FrameState state =
          split_frame(in.data() + in_ofs, in.size() - in_ofs, len);
      if (state == FrameState::kBad) {
        result.failures += 1;
        return result;
      }
      if (state == FrameState::kNeedMore) break;
      const Status status = static_cast<Status>(in[in_ofs + 4]);
      const std::uint8_t err_code = len >= 2 ? in[in_ofs + 5] : 0;
      in_ofs += 4 + len;
      if (status == Status::kScanChunk) continue;  // op not complete yet
      if (status == Status::kError &&
          (static_cast<Err>(err_code) == Err::kOverloaded ||
           static_cast<Err>(err_code) == Err::kStoreFailed) &&
          !pending.empty()) {
        // Admission control (kOverloaded) or a fail-stopped store
        // (kStoreFailed) answered this op in its FIFO slot; the
        // connection survives. Count it shed — not goodput, not a
        // failure — and keep going.
        pending.pop_front();
        result.shed += 1;
        continue;
      }
      if (status == Status::kError || pending.empty()) {
        result.failures += 1;
        return result;
      }
      const std::uint64_t sent = pending.front();
      pending.pop_front();
      result.hist.record(recv_ns > sent ? recv_ns - sent : 0);
      result.ops += 1;
    }
    if (in_ofs == in.size()) {
      in.clear();
      in_ofs = 0;
    } else if (in_ofs > sizeof(chunk)) {
      in.erase(in.begin(), in.begin() + static_cast<std::ptrdiff_t>(in_ofs));
      in_ofs = 0;
    }
  }
  result.seconds =
      static_cast<double>(now_ns() - start_ns) / 1e9;
  return result;
}

/// Fill the key space before measuring: pipelined puts on one blocking
/// connection, spread over [0, keys) by stride.
bool preload(const GenConfig& cfg) {
  if (cfg.preload <= 0) return true;
  Client client;
  if (!client.connect(cfg.host, cfg.port, cfg.timeout_ms)) return false;
  const std::int64_t count = std::min(cfg.preload, cfg.keys);
  const std::int64_t stride = std::max<std::int64_t>(1, cfg.keys / count);
  constexpr std::int64_t kBurst = 512;
  std::int64_t done = 0;
  while (done < count) {
    const std::int64_t n = std::min(kBurst, count - done);
    for (std::int64_t i = 0; i < n; ++i) {
      client.queue_put((done + i) * stride, done + i);
    }
    if (!client.flush()) return false;
    for (std::int64_t i = 0; i < n; ++i) {
      const auto resp = client.read_response();
      if (!resp || resp->status != Status::kOk) return false;
    }
    done += n;
  }
  return true;
}

/// The deterministic oracle value for --putrange / --verifyrange
/// (mirrored by tests/test_store.cpp's value_of).
std::int64_t oracle_value(std::int64_t key) { return key * 31 + 7; }

/// Write every key in [lo, hi) with its oracle value, pipelined in
/// bursts, every put acknowledged before the function returns true.
/// With `tolerate_storefail`, an Err::kStoreFailed response is counted
/// (the store went read-only mid-range) instead of failing the run;
/// the acked/storefailed split is printed either way when nonzero.
bool put_range(const GenConfig& cfg, std::int64_t lo, std::int64_t hi,
               bool tolerate_storefail) {
  Client client;
  if (!client.connect(cfg.host, cfg.port, cfg.timeout_ms)) return false;
  constexpr std::int64_t kBurst = 256;
  std::uint64_t acked = 0, storefailed = 0;
  for (std::int64_t at = lo; at < hi;) {
    const std::int64_t n = std::min(kBurst, hi - at);
    for (std::int64_t i = 0; i < n; ++i) {
      client.queue_put(at + i, oracle_value(at + i));
    }
    if (!client.flush()) return false;
    for (std::int64_t i = 0; i < n; ++i) {
      const auto resp = client.read_response();
      if (!resp) return false;
      if (resp->status == Status::kOk) {
        acked += 1;
        continue;
      }
      if (tolerate_storefail && resp->status == Status::kError &&
          static_cast<Err>(resp->error) == Err::kStoreFailed) {
        storefailed += 1;
        continue;
      }
      return false;
    }
    at += n;
  }
  if (storefailed > 0 || tolerate_storefail) {
    std::printf("leap-loadgen: putrange acked=%llu storefailed=%llu\n",
                static_cast<unsigned long long>(acked),
                static_cast<unsigned long long>(storefailed));
  }
  return true;
}

/// Assert every key in [lo, hi) reads back its oracle value. Prints
/// the first mismatch; returns false on any.
bool verify_range(const GenConfig& cfg, std::int64_t lo, std::int64_t hi) {
  Client client;
  if (!client.connect(cfg.host, cfg.port, cfg.timeout_ms)) return false;
  constexpr std::int64_t kBurst = 256;
  for (std::int64_t at = lo; at < hi;) {
    const std::int64_t n = std::min(kBurst, hi - at);
    for (std::int64_t i = 0; i < n; ++i) client.queue_get(at + i);
    if (!client.flush()) return false;
    for (std::int64_t i = 0; i < n; ++i) {
      const auto resp = client.read_response();
      const std::int64_t key = at + i;
      if (!resp || resp->status != Status::kFound) {
        std::fprintf(stderr,
                     "leap-loadgen: verifyrange: key %lld missing\n",
                     static_cast<long long>(key));
        return false;
      }
      if (resp->value != oracle_value(key)) {
        std::fprintf(
            stderr,
            "leap-loadgen: verifyrange: key %lld = %lld, want %lld\n",
            static_cast<long long>(key),
            static_cast<long long>(resp->value),
            static_cast<long long>(oracle_value(key)));
        return false;
      }
    }
    at += n;
  }
  return true;
}

GenResult run_config(const GenConfig& cfg) {
  const std::uint64_t start = now_ns();
  const std::uint64_t deadline =
      start + static_cast<std::uint64_t>(cfg.seconds * 1e9);
  std::vector<GenResult> per_thread(cfg.threads);
  std::vector<std::thread> threads;
  threads.reserve(cfg.threads);
  for (unsigned t = 0; t < cfg.threads; ++t) {
    threads.emplace_back([&, t] {
      per_thread[t] = run_conn(cfg, t, start, deadline);
    });
  }
  for (auto& thread : threads) thread.join();
  GenResult merged;
  merged.seconds = static_cast<double>(now_ns() - start) / 1e9;
  for (const GenResult& r : per_thread) {
    merged.ops += r.ops;
    merged.shed += r.shed;
    merged.dropped += r.dropped;
    merged.failures += r.failures;
    merged.hist.merge(r.hist);
  }
  return merged;
}

double value_arg(int argc, char** argv, const char* flag, double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return std::atof(argv[i + 1]);
  }
  return fallback;
}

bool flag_arg(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = leap::harness::smoke_mode();
  GenConfig base;
  base.host = [&] {
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::strcmp(argv[i], "--host") == 0) return std::string(argv[i + 1]);
    }
    return std::string("127.0.0.1");
  }();
  base.port =
      static_cast<std::uint16_t>(value_arg(argc, argv, "--port", 0));
  base.threads =
      static_cast<unsigned>(value_arg(argc, argv, "--threads", 4));
  base.seconds = value_arg(argc, argv, "--seconds", smoke ? 0.5 : 5.0);
  base.pipeline =
      static_cast<std::size_t>(value_arg(argc, argv, "--pipeline", 16));
  base.rate = value_arg(argc, argv, "--rate", 0);
  base.keys = static_cast<std::int64_t>(
      value_arg(argc, argv, "--keys", smoke ? 65536 : 1'000'000));
  base.preload = static_cast<std::int64_t>(
      value_arg(argc, argv, "--preload", smoke ? 4096 : 100'000));
  base.timeout_ms =
      static_cast<int>(value_arg(argc, argv, "--timeout-ms", 10'000));
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--mix") == 0) {
      MixPct mix;
      if (std::sscanf(argv[i + 1], "%d:%d:%d:%d:%d", &mix.get, &mix.put,
                      &mix.erase, &mix.scan, &mix.txn) == 5) {
        base.mix = mix;
      }
    }
  }
  if (base.port == 0) {
    std::fprintf(stderr, "leap-loadgen: --port is required\n");
    return 1;
  }

  // Oracle modes short-circuit the load phase entirely.
  const bool tolerate_storefail = flag_arg(argc, argv, "--tolerate-storefail");
  for (int i = 1; i + 1 < argc; ++i) {
    const bool is_put = std::strcmp(argv[i], "--putrange") == 0;
    const bool is_verify = std::strcmp(argv[i], "--verifyrange") == 0;
    if (!is_put && !is_verify) continue;
    long long lo = 0, hi = 0;
    if (std::sscanf(argv[i + 1], "%lld:%lld", &lo, &hi) != 2 || hi < lo) {
      std::fprintf(stderr, "leap-loadgen: bad range '%s' (want A:B)\n",
                   argv[i + 1]);
      return 1;
    }
    const bool ok = is_put ? put_range(base, lo, hi, tolerate_storefail)
                           : verify_range(base, lo, hi);
    if (!ok) {
      std::fprintf(stderr, "leap-loadgen: %s [%lld,%lld) FAILED\n",
                   is_put ? "putrange" : "verifyrange", lo, hi);
      return 1;
    }
    std::printf("leap-loadgen: %s [%lld,%lld) ok\n",
                is_put ? "putrange" : "verifyrange", lo, hi);
    return 0;
  }

  if (!preload(base)) {
    std::fprintf(stderr,
                 "leap-loadgen: preload failed (is leapd up on %s:%u?)\n",
                 base.host.c_str(), static_cast<unsigned>(base.port));
    return 1;
  }

  /// One measured configuration: a label for the table/JSON plus the
  /// config to run (rate > 0 = open loop at that offered load).
  struct Run {
    std::string label;
    GenConfig cfg;
  };
  std::vector<Run> runs;
  const bool loadcurve = flag_arg(argc, argv, "--loadcurve");
  double saturation_ops = 0;
  if (loadcurve) {
    // Calibrate: saturate closed-loop to find this host's ceiling,
    // then offer open-loop load at fractions of it — the honest
    // tail-latency-vs-offered-load curve (below and past saturation).
    GenConfig cal = base;
    cal.rate = 0;
    cal.seconds = smoke ? 0.5 : std::min(base.seconds, 3.0);
    const GenResult calres = run_config(cal);
    if (calres.seconds <= 0 || calres.ops == 0) {
      std::fprintf(stderr, "leap-loadgen: calibration run failed\n");
      return 1;
    }
    saturation_ops = static_cast<double>(calres.ops) / calres.seconds;
    const std::vector<double> fractions =
        smoke ? std::vector<double>{1.0, 2.0}
              : std::vector<double>{0.5, 0.9, 1.5, 2.0};
    for (const double f : fractions) {
      GenConfig cfg = base;
      cfg.rate = saturation_ops * f;
      runs.push_back(
          {"load" + std::to_string(static_cast<int>(f * 100)), cfg});
    }
  } else if (flag_arg(argc, argv, "--sweep")) {
    const std::vector<unsigned> thread_list =
        smoke ? std::vector<unsigned>{1, 2} : std::vector<unsigned>{1, 4, 8};
    const std::vector<std::size_t> pipe_list =
        smoke ? std::vector<std::size_t>{1, 8}
              : std::vector<std::size_t>{1, 16};
    for (const unsigned t : thread_list) {
      for (const std::size_t p : pipe_list) {
        GenConfig cfg = base;
        cfg.threads = t;
        cfg.pipeline = p;
        runs.push_back(
            {"t" + std::to_string(t) + "_p" + std::to_string(p), cfg});
      }
    }
    if (smoke) {
      for (Run& r : runs) r.cfg.seconds = std::min(r.cfg.seconds, 0.5);
    }
  } else {
    runs.push_back({"t" + std::to_string(base.threads) + "_p" +
                        std::to_string(base.pipeline),
                    base});
  }

  leap::harness::print_figure_header(
      std::cout, "leap-loadgen: leapd throughput + tail latency",
      loadcurve ? "offered-load curve (open loop vs calibrated saturation)"
                : (base.rate > 0 ? "open loop (scheduled arrivals)"
                                 : "closed loop (pipelined)"),
      "pipelining multiplies throughput per connection (burst batching "
      "commits a whole pipelined window in one server txn); under "
      "overload, shed counts admission-controlled ops and dropped "
      "counts sends the full window forced the schedule to skip");
  leap::harness::Table table({"label", "offered/s", "goodput/s", "shed",
                              "dropped", "p50 us", "p99 us", "p999 us"});

  struct Recorded {
    std::string label;
    double offered;  // ops/s offered (0 = closed loop)
    GenResult result;
  };
  std::vector<Recorded> recorded;
  std::uint64_t total_ops = 0;
  std::uint64_t total_failures = 0;
  for (const Run& run : runs) {
    const GenResult result = run_config(run.cfg);
    total_ops += result.ops;
    total_failures += result.failures;
    const double ops_per_sec =
        result.seconds > 0 ? static_cast<double>(result.ops) / result.seconds
                           : 0;
    auto us = [](std::uint64_t ns) {
      std::ostringstream out;
      out << std::fixed << std::setprecision(1)
          << static_cast<double>(ns) / 1e3;
      return out.str();
    };
    table.add_row({run.label,
                   run.cfg.rate > 0
                       ? leap::harness::Table::format_ops(run.cfg.rate)
                       : "closed",
                   leap::harness::Table::format_ops(ops_per_sec),
                   std::to_string(result.shed),
                   std::to_string(result.dropped),
                   us(result.hist.percentile(0.50)),
                   us(result.hist.percentile(0.99)),
                   us(result.hist.percentile(0.999))});
    recorded.push_back({run.label, run.cfg.rate, result});
  }
  table.print(std::cout);
  if (total_failures > 0) {
    std::fprintf(stderr, "leap-loadgen: %llu connection failures\n",
                 static_cast<unsigned long long>(total_failures));
  }

  // Fetch the server's own counters (the Stats opcode) so the run
  // reports both sides of the story; scripts/net_smoke.sh greps this.
  {
    Client probe;
    if (probe.connect(base.host, base.port, base.timeout_ms)) {
      if (const auto s = probe.stats()) {
        std::printf(
            "leap-loadgen: server stats ops=%llu shed=%llu "
            "queue_hwm=%llu stm_retries=%llu accept_pauses=%llu "
            "emfile_sheds=%llu wal_appends=%llu wal_fsyncs=%llu "
            "group_ops=%llu flushes=%llu runs=%llu cold_hits=%llu "
            "recovered=%llu fail_stop=%llu corrupt=%llu "
            "ckpt_retries=%llu\n",
            static_cast<unsigned long long>(s->ops),
            static_cast<unsigned long long>(s->shed),
            static_cast<unsigned long long>(s->queue_hwm),
            static_cast<unsigned long long>(s->stm_retries),
            static_cast<unsigned long long>(s->accept_pauses),
            static_cast<unsigned long long>(s->emfile_sheds),
            static_cast<unsigned long long>(s->wal_appends),
            static_cast<unsigned long long>(s->wal_fsyncs),
            static_cast<unsigned long long>(s->wal_group_ops),
            static_cast<unsigned long long>(s->store_flushes),
            static_cast<unsigned long long>(s->store_runs),
            static_cast<unsigned long long>(s->cold_hits),
            static_cast<unsigned long long>(s->recovered_ops),
            static_cast<unsigned long long>(s->store_fail_stop),
            static_cast<unsigned long long>(s->corrupt_blocks),
            static_cast<unsigned long long>(s->checkpoint_retries));
      }
    }
  }

  if (const char* path = std::getenv("LEAP_BENCH_JSON")) {
    std::ofstream out(path);
    out << "{\n"
        << "  \"bench\": \"net_loadgen\",\n"
        << "  \"keys\": " << base.keys << ",\n"
        << "  \"preload\": " << base.preload << ",\n"
        << "  \"mix_get_put_erase_scan_txn\": \"" << base.mix.get << ":"
        << base.mix.put << ":" << base.mix.erase << ":" << base.mix.scan
        << ":" << base.mix.txn << "\",\n"
        << "  \"seconds_per_point\": " << base.seconds << ",\n";
    out << std::fixed;
    if (loadcurve) {
      out.precision(1);
      out << "  \"saturation_ops_per_sec\": " << saturation_ops << ",\n";
    }
    bool first = true;
    for (const Recorded& r : recorded) {
      const double ops_per_sec =
          r.result.seconds > 0
              ? static_cast<double>(r.result.ops) / r.result.seconds
              : 0;
      out << (first ? "" : ",\n");
      out.precision(1);
      out << "  \"" << r.label << "_offered_per_sec\": " << r.offered
          << ",\n"
          << "  \"" << r.label << "_ops_per_sec\": " << ops_per_sec << ",\n"
          << "  \"" << r.label << "_shed\": " << r.result.shed << ",\n"
          << "  \"" << r.label << "_dropped\": " << r.result.dropped
          << ",\n"
          << "  \"" << r.label
          << "_p50_ns\": " << r.result.hist.percentile(0.50) << ",\n"
          << "  \"" << r.label
          << "_p99_ns\": " << r.result.hist.percentile(0.99) << ",\n"
          << "  \"" << r.label
          << "_p999_ns\": " << r.result.hist.percentile(0.999);
      first = false;
    }
    out << "\n}\n";
  }

  if (total_ops == 0 || total_failures > 0) return 1;
  std::printf("leap-loadgen: %llu ops total, clean run\n",
              static_cast<unsigned long long>(total_ops));
  return 0;
}
