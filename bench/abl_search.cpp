// Ablation: predecessor-search synchronization modes (§2.1).
//
// The paper considered three ways to make the uninstrumented traversal
// safe and picked marked pointers:
//   * marked pointers + raw reads      (shipped: Leap-LT's search)
//   * single-location read transaction per pointer hop — "this
//     alternative proved to have a larger negative impact on performance
//     with the current GCC-TM implementation. Nevertheless, we expect it
//     will exhibit the best performance with HTM support."
//   * the fully instrumented search    (what Leap-tm pays)
//
// This bench measures all three against the same preloaded list.
#include <chrono>
#include <iostream>

#include "harness/table.hpp"
#include "harness/workload.hpp"
#include "leaplist/leaplist.hpp"
#include "util/random.hpp"

using namespace leap::core;
using leap::harness::Table;

namespace {

/// Test-only head access (searches need the head sentinel).
struct ProbeList : LeapListLT {
  using LeapListLT::LeapListLT;
  Node* head() { return head_; }
};

/// The §2.1 alternative: every pointer hop is its own tiny transaction
/// (begin; read one word; commit). With lazy TL2 this is a begin +
/// orec-validated read per hop.
SearchResult search_predecessors_slrt(Node* head, int max_level, Key key) {
  SearchResult result;
  leap::stm::Tx& tx = leap::stm::tls_tx();
  while (true) {
    bool restart = false;
    Node* x = head;
    for (int i = max_level - 1; i >= 0 && !restart; --i) {
      Node* x_next = nullptr;
      while (true) {
        std::uint64_t word = 0;
        const bool committed =
            leap::stm::try_atomically(tx, [&](leap::stm::Tx& t) {
              word = x->next[i].tx_read(t);
            });
        if (!committed || leap::util::is_marked(word)) {
          restart = true;
          break;
        }
        x_next = leap::util::to_ptr<Node>(word);
        if (!x_next->live.load()) {
          restart = true;
          break;
        }
        if (x_next->high_raw() >= key) break;
        x = x_next;
      }
      result.pa[i] = x;
      result.na[i] = x_next;
    }
    if (!restart) return result;
  }
}

template <typename SearchFn>
double measure_searches(ProbeList& list, SearchFn&& search, int seconds_ms) {
  leap::util::Xoshiro256 rng(4242);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(seconds_ms);
  std::uint64_t count = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    for (int i = 0; i < 512; ++i) {
      const Key key = static_cast<Key>(1 + rng.next_below(100000));
      const SearchResult sr = search(key);
      asm volatile("" : : "g"(&sr) : "memory");
      ++count;
    }
  }
  return static_cast<double>(count) /
         (static_cast<double>(seconds_ms) / 1000.0);
}

}  // namespace

int main() {
  const auto duration = leap::harness::bench_duration(
      std::chrono::milliseconds(200));
  const int window = static_cast<int>(duration.count());

  leap::harness::print_figure_header(
      std::cout, "Ablation: search synchronization mode",
      "predecessor searches/sec, 100K elements, single thread",
      "raw+marks fastest; per-hop single-location txns notably slower "
      "(the paper's rejected alternative); full instrumentation slowest");

  ProbeList list(Params{.node_size = 300, .max_level = 10});
  {
    std::vector<KV> pairs;
    for (Key k = 1; k <= 100000; ++k) pairs.push_back(KV{k, Value(k)});
    list.bulk_load(pairs);
  }
  Node* head = list.head();
  const int max_level = list.params().max_level;

  const double raw = measure_searches(
      list,
      [&](Key k) { return search_predecessors(head, max_level, k); },
      window);
  const double slrt = measure_searches(
      list,
      [&](Key k) { return search_predecessors_slrt(head, max_level, k); },
      window);
  const double instrumented = measure_searches(
      list,
      [&](Key k) {
        leap::stm::Tx& tx = leap::stm::tls_tx();
        SearchResult sr;
        leap::stm::atomically(tx, [&](leap::stm::Tx& t) {
          sr = search_predecessors_tx(t, head, max_level, k);
        });
        return sr;
      },
      window);

  Table table({"mode", "searches/s", "vs raw"});
  table.add_row({"raw + marks (LT)", Table::format_ops(raw),
                 Table::format_ratio(1.0)});
  table.add_row({"single-location txn/hop", Table::format_ops(slrt),
                 Table::format_ratio(slrt / raw)});
  table.add_row({"fully instrumented (tm)", Table::format_ops(instrumented),
                 Table::format_ratio(instrumented / raw)});
  table.print(std::cout);
  return 0;
}
