// Ablation: predecessor-search synchronization modes (§2.1).
//
// The paper considered three ways to make the uninstrumented traversal
// safe and picked marked pointers:
//   * marked pointers + raw reads      (shipped: Leap-LT's search)
//   * single-location read transaction per pointer hop — "this
//     alternative proved to have a larger negative impact on performance
//     with the current GCC-TM implementation. Nevertheless, we expect it
//     will exhibit the best performance with HTM support."
//   * the fully instrumented search    (what Leap-tm pays)
//
// This bench measures all three against the same preloaded list.
//
// It also settles the ROADMAP's trie question: the second table sweeps
// node_size for in-node key resolution — std::lower_bound vs the
// shipped branchless flat_lower_bound vs the PATRICIA BitTrie
// (trie/bit_trie.hpp, probe only AND probe+rebuild amortized at one
// rebuild per node replacement) — looking for the crossover where the
// trie would earn a place inside the node. See ROADMAP.md for the
// recorded decision.
#include <algorithm>
#include <chrono>
#include <iostream>

#include "harness/table.hpp"
#include "harness/workload.hpp"
#include "leaplist/leaplist.hpp"
#include "trie/bit_trie.hpp"
#include "util/random.hpp"

using namespace leap::core;
using leap::harness::Table;

namespace {

/// Test-only head access (searches need the head sentinel).
struct ProbeList : LeapListLT {
  using LeapListLT::LeapListLT;
  Node* head() { return head_; }
};

/// The §2.1 alternative: every pointer hop is its own tiny transaction
/// (begin; read one word; commit). With lazy TL2 this is a begin +
/// orec-validated read per hop.
SearchResult search_predecessors_slrt(Node* head, int max_level, Key key) {
  SearchResult result;
  leap::stm::Tx& tx = leap::stm::tls_tx();
  while (true) {
    bool restart = false;
    Node* x = head;
    for (int i = max_level - 1; i >= 0 && !restart; --i) {
      Node* x_next = nullptr;
      while (true) {
        std::uint64_t word = 0;
        const bool committed =
            leap::stm::try_atomically(tx, [&](leap::stm::Tx& t) {
              word = x->next(i).tx_read(t);
            });
        if (!committed || leap::util::is_marked(word)) {
          restart = true;
          break;
        }
        x_next = leap::util::to_ptr<Node>(word);
        if (!x_next->live.load()) {
          restart = true;
          break;
        }
        if (x_next->high_raw() >= key) break;
        x = x_next;
      }
      result.pa[i] = x;
      result.na[i] = x_next;
    }
    if (!restart) return result;
  }
}

template <typename SearchFn>
double measure_searches(ProbeList& list, SearchFn&& search, int seconds_ms) {
  leap::util::Xoshiro256 rng(4242);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(seconds_ms);
  std::uint64_t count = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    for (int i = 0; i < 512; ++i) {
      const Key key = static_cast<Key>(1 + rng.next_below(100000));
      const SearchResult sr = search(key);
      asm volatile("" : : "g"(&sr) : "memory");
      ++count;
    }
  }
  return static_cast<double>(count) /
         (static_cast<double>(seconds_ms) / 1000.0);
}

}  // namespace

int main() {
  const auto duration = leap::harness::bench_duration(
      std::chrono::milliseconds(200));
  const int window = static_cast<int>(duration.count());

  leap::harness::print_figure_header(
      std::cout, "Ablation: search synchronization mode",
      "predecessor searches/sec, 100K elements, single thread",
      "raw+marks fastest; per-hop single-location txns notably slower "
      "(the paper's rejected alternative); full instrumentation slowest");

  ProbeList list(Params{.node_size = 300, .max_level = 10});
  {
    std::vector<KV> pairs;
    for (Key k = 1; k <= 100000; ++k) pairs.push_back(KV{k, Value(k)});
    list.bulk_load(pairs);
  }
  Node* head = list.head();
  const int max_level = list.params().max_level;

  const double raw = measure_searches(
      list,
      [&](Key k) { return search_predecessors(head, max_level, k); },
      window);
  const double slrt = measure_searches(
      list,
      [&](Key k) { return search_predecessors_slrt(head, max_level, k); },
      window);
  const double instrumented = measure_searches(
      list,
      [&](Key k) {
        leap::stm::Tx& tx = leap::stm::tls_tx();
        SearchResult sr;
        leap::stm::atomically(tx, [&](leap::stm::Tx& t) {
          sr = search_predecessors_tx(t, head, max_level, k);
        });
        return sr;
      },
      window);

  Table table({"mode", "searches/s", "vs raw"});
  table.add_row({"raw + marks (LT)", Table::format_ops(raw),
                 Table::format_ratio(1.0)});
  table.add_row({"single-location txn/hop", Table::format_ops(slrt),
                 Table::format_ratio(slrt / raw)});
  table.add_row({"fully instrumented (tm)", Table::format_ops(instrumented),
                 Table::format_ratio(instrumented / raw)});
  table.print(std::cout);

  leap::harness::print_figure_header(
      std::cout, "Ablation: in-node key search across node_size",
      "probes/sec on node-resident key arrays; trie shown probe-only and "
      "with its per-replacement rebuild amortized over 10 probes",
      "branchless lower_bound wins every K the node layout supports; the "
      "trie's pointer-chasing descent plus rebuild-per-update never "
      "crosses over (ROADMAP trie item: negative result)");
  {
    Table innode({"node_size", "std::lower_bound", "branchless",
                  "trie probe", "trie probe+build/10", "branchless/trie"});
    leap::util::Xoshiro256 gen(99);
    for (const std::size_t k : {16u, 64u, 300u, 1000u, 4096u}) {
      // Keys the way nodes see them: a dense range slice.
      std::vector<Key> keys;
      Key next = static_cast<Key>(gen.next_below(1000));
      for (std::size_t i = 0; i < k; ++i) {
        next += 1 + static_cast<Key>(gen.next_below(5));
        keys.push_back(next);
      }
      const leap::trie::BitTrie trie = leap::trie::BitTrie::build(keys);
      const auto measure = [&](auto&& probe) {
        leap::util::Xoshiro256 rng(7);
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::milliseconds(window);
        std::uint64_t count = 0;
        long sink = 0;
        while (std::chrono::steady_clock::now() < deadline) {
          for (int i = 0; i < 512; ++i) {
            sink += probe(keys[rng.next_below(keys.size())]);
            ++count;
          }
        }
        asm volatile("" : : "g"(&sink) : "memory");
        return static_cast<double>(count) /
               (static_cast<double>(window) / 1000.0);
      };
      const double std_lb = measure([&](Key probe) {
        const auto it = std::lower_bound(keys.begin(), keys.end(), probe);
        return static_cast<long>(it - keys.begin());
      });
      const double branchless = measure([&](Key probe) {
        return static_cast<long>(leap::core::detail::flat_lower_bound(
            keys.data(), keys.size(), probe));
      });
      const double trie_probe = measure([&](Key probe) {
        return static_cast<long>(trie.get_index(keys, probe));
      });
      // Nodes are immutable: wiring the trie in means one build per
      // replacement. Amortize one build per 10 probes (a read-heavy
      // 90/10 mix) on top of the probe cost.
      double trie_amortized = 0;
      {
        leap::util::Xoshiro256 rng(7);
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::milliseconds(window);
        std::uint64_t count = 0;
        long sink = 0;
        while (std::chrono::steady_clock::now() < deadline) {
          for (int i = 0; i < 512; ++i) {
            if (count % 10 == 9) {
              const auto rebuilt = leap::trie::BitTrie::build(keys);
              sink += static_cast<long>(rebuilt.internal_nodes());
            }
            sink += trie.get_index(keys, keys[rng.next_below(keys.size())]);
            ++count;
          }
        }
        asm volatile("" : : "g"(&sink) : "memory");
        trie_amortized = static_cast<double>(count) /
                         (static_cast<double>(window) / 1000.0);
      }
      innode.add_row({std::to_string(k), Table::format_ops(std_lb),
                      Table::format_ops(branchless),
                      Table::format_ops(trie_probe),
                      Table::format_ops(trie_amortized),
                      Table::format_ratio(branchless /
                                          std::max(trie_probe, 1.0))});
    }
    innode.print(std::cout);
  }
  return 0;
}
