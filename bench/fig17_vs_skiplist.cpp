// Figure 17 reproduction: a single Leap-LT list (L = 1) against the two
// skip-list baselines, 1M initial elements, thread sweep:
//   (a) 100% modify        — paper: Skip-cas wins clearly (cheap in-place
//                             single-pair updates), Skip-tm second
//   (b) 40/40/20 mixed     — paper: Leap-LT up to 2x over Skip-cas and
//                             38x over Skip-tm
//   (c) 100% lookup        — paper: Leap-LT and Skip-cas comparable,
//                             both far above Skip-tm
//   (d) 100% range-query   — paper: Leap-LT up to 35x over Skip-cas,
//                             while also being linearizable
//
// LEAP_FIG17_ELEMENTS overrides the population (default 1000000).
#include <cstdlib>

#include "fig_common.hpp"

using namespace leap::bench;

namespace {

std::size_t fig17_elements() {
  const char* raw = std::getenv("LEAP_FIG17_ELEMENTS");
  if (raw == nullptr) return 1000000;
  const long value = std::strtol(raw, nullptr, 10);
  return value > 0 ? static_cast<std::size_t>(value) : 1000000;
}

}  // namespace

int main() {
  const auto duration = leap::harness::bench_duration(
      std::chrono::milliseconds(200));
  const int repeats = leap::harness::bench_repeats(1);
  const std::size_t elements = fig17_elements();

  const struct {
    const char* id;
    const char* name;
    Mix mix;
    const char* expectation;
  } panels[] = {
      {"Fig 17(a)", "100% modify", Mix::modify_only(),
       "Skip-cas much faster (single mutable pair per op); Leap-LT slowest"},
      {"Fig 17(b)", "40% lookup / 40% range / 20% modify",
       Mix::read_dominated(), "Leap-LT up to 2x Skip-cas, 38x Skip-tm"},
      {"Fig 17(c)", "100% lookup", Mix::lookup_only(),
       "Leap-LT and Skip-cas comparable; Skip-tm far behind"},
      {"Fig 17(d)", "100% range-query", Mix::range_only(),
       "Leap-LT up to 35x Skip-cas — and linearizable (Skip-cas is not)"},
  };

  for (const auto& panel : panels) {
    print_figure_header(std::cout, panel.id,
                        std::string(panel.name) + ", 1 list, " +
                            std::to_string(elements) + " elements",
                        panel.expectation);
    Table table({"threads", "Leap-LT", "Skip-cas", "Skip-tm", "LT/cas",
                 "LT/tm"});
    for (const unsigned threads : leap::harness::thread_sweep()) {
      WorkloadConfig cfg = paper_config();
      cfg.mix = panel.mix;
      cfg.lists = 1;  // single-list comparison (paper §3.1)
      cfg.threads = threads;
      cfg.duration = duration;
      cfg.initial_size = elements;
      cfg.key_range = std::max<std::uint64_t>(elements, 1000);
      // Skip lists store one pair per node: give them the tower height
      // a structure of this size needs.
      WorkloadConfig skip_cfg = cfg;
      skip_cfg.params.max_level = 20;

      const double lt =
          harness::run_workload<MapAdapter<LTMap>>(cfg, repeats).ops_per_sec;
      const double cas =
          harness::run_workload<MapAdapter<SkipCASMap>>(skip_cfg, repeats)
              .ops_per_sec;
      const double tm =
          harness::run_workload<MapAdapter<SkipTMMap>>(skip_cfg, repeats)
              .ops_per_sec;
      table.add_row({std::to_string(threads), Table::format_ops(lt),
                     Table::format_ops(cas), Table::format_ops(tm),
                     Table::format_ratio(lt / std::max(cas, 1.0)),
                     Table::format_ratio(lt / std::max(tm, 1.0))});
    }
    table.print(std::cout);
  }
  return 0;
}
