// Figure 16 reproduction: throughput at the maximum thread count, 100K
// elements, varying the read-operation rate from 0% to 90%:
//   (a) lookup% sweep, no range queries, rest modify
//   (b) range-query% sweep, no lookups, rest modify
//
// Paper findings: throughput of every variant rises as the modify rate
// falls; Leap-LT leads COP by ~1.9x..2.6x on (a) and ~2.4x..2.0x on (b).
#include "fig_common.hpp"

using namespace leap::bench;

int main() {
  const auto duration = leap::harness::bench_duration(
      std::chrono::milliseconds(200));
  const int repeats = leap::harness::bench_repeats(1);
  const unsigned threads = leap::harness::thread_sweep().back();

  constexpr int kShards = 8;
  print_figure_header(
      std::cout, "Fig 16(a)",
      "lookup% sweep (no range queries), 100K, max threads",
      "all variants speed up as modify% drops; LT 1.9x-2.6x over COP");
  {
    Table table(leap_table_headers("lookup%"));
    Table sharded(sharded_table_headers("lookup%", kShards));
    for (int pct = 0; pct <= 90; pct += 10) {
      WorkloadConfig cfg = paper_config();
      cfg.mix = Mix::lookup_modify(pct);
      cfg.threads = threads;
      cfg.duration = duration;
      const LeapRow row = measure_leap_row(cfg, repeats);
      table.add_row(leap_row_cells(std::to_string(pct), row));
      const ShardedRow srow =
          measure_sharded_row(cfg, repeats, kShards, row.lt);
      sharded.add_row(sharded_row_cells(std::to_string(pct), srow));
    }
    table.print(std::cout);
    std::cout << "   scale-out series: same sweep over " << kShards
              << "-shard leap::ShardedMap (see abl_shard for the sweep)\n\n";
    sharded.print(std::cout);
  }

  print_figure_header(
      std::cout, "Fig 16(b)",
      "range-query% sweep (no lookups), 100K, max threads",
      "all variants speed up as modify% drops; LT 2.4x-2.0x over COP");
  {
    Table table(leap_table_headers("range%"));
    for (int pct = 0; pct <= 90; pct += 10) {
      WorkloadConfig cfg = paper_config();
      cfg.mix = Mix::range_modify(pct);
      cfg.threads = threads;
      cfg.duration = duration;
      const LeapRow row = measure_leap_row(cfg, repeats);
      table.add_row(leap_row_cells(std::to_string(pct), row));
    }
    table.print(std::cout);
  }

  // The paper's §3 note: at 100% lookup / 100% range-query rates the LT
  // advantage grows further (650% and 320% over COP).
  print_figure_header(std::cout, "Fig 16 (text)",
                      "100% lookup and 100% range-query points",
                      "LT 6.5x over COP at 100% lookup, 3.2x at 100% RQ");
  {
    Table table(leap_table_headers("mix"));
    for (const auto& [label, mix] :
         {std::pair<const char*, Mix>{"100% lookup", Mix::lookup_only()},
          std::pair<const char*, Mix>{"100% range", Mix::range_only()}}) {
      WorkloadConfig cfg = paper_config();
      cfg.mix = mix;
      cfg.threads = threads;
      cfg.duration = duration;
      const LeapRow row = measure_leap_row(cfg, repeats);
      table.add_row(leap_row_cells(label, row));
    }
    table.print(std::cout);
  }
  return 0;
}
