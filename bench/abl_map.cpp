// Ablation: the typed facade's price — leap::Map<int64, int64> (codec
// traits + visitor plumbing, all compile-time) against the raw word
// engine called directly, on the fig16-style mixed workload.
//
// The facade is a zero-runtime-overhead claim: identity codecs inline
// to casts and the visitor lowers to the same node walk, so the two
// columns must sit within measurement noise of each other. Under
// LEAP_BENCH_SMOKE=1 the bench doubles as a CI parity guard: a typed/raw
// ratio below 1/LEAP_MAP_PARITY_FACTOR (default 2.0, generous for smoke
// noise; 0 disables) fails the run.
#include <cstdlib>

#include "fig_common.hpp"

using namespace leap::bench;

namespace {

/// Raw-engine adapter: the pre-facade calling convention (int64 words,
/// vector-filling range_query) on the naked variant classes.
template <typename ListT>
class RawAdapter {
 public:
  explicit RawAdapter(const WorkloadConfig& cfg) : cfg_(cfg) {
    // Same population source as MapAdapter — the parity comparison is
    // only meaningful over identical preloads.
    std::vector<leap::core::KV> pairs;
    const std::vector<std::uint64_t> keys =
        leap::harness::preload_keys(cfg_);
    pairs.reserve(keys.size());
    for (const std::uint64_t key : keys) {
      pairs.push_back(leap::core::KV{static_cast<leap::core::Key>(key),
                                     static_cast<leap::core::Value>(key)});
    }
    for (int i = 0; i < cfg_.lists; ++i) {
      lists_.push_back(std::make_unique<ListT>(cfg_.params));
      lists_.back()->bulk_load(pairs);
    }
  }

  void op_lookup(leap::util::Xoshiro256& rng) {
    const auto value = pick(rng).get(random_key(rng));
    asm volatile("" : : "g"(&value) : "memory");
  }

  void op_range(leap::util::Xoshiro256& rng) {
    const std::uint64_t span =
        cfg_.rq_span_min +
        rng.next_below(cfg_.rq_span_max - cfg_.rq_span_min + 1);
    const leap::core::Key low = random_key(rng);
    static thread_local std::vector<leap::core::KV> buf;
    pick(rng).range_query(low, low + static_cast<leap::core::Key>(span),
                          buf);
  }

  void op_modify(leap::util::Xoshiro256& rng) {
    const leap::core::Key key = random_key(rng);
    ListT& list = pick(rng);
    if ((rng.next() & 1) != 0) {
      list.insert(key, static_cast<leap::core::Value>(key));
    } else {
      list.erase(key);
    }
  }

  void op_txn(leap::util::Xoshiro256& rng) { op_modify(rng); }

 private:
  ListT& pick(leap::util::Xoshiro256& rng) {
    return cfg_.lists == 1
               ? *lists_[0]
               : *lists_[rng.next_below(static_cast<std::uint64_t>(
                     cfg_.lists))];
  }

  leap::core::Key random_key(leap::util::Xoshiro256& rng) {
    return static_cast<leap::core::Key>(1 + rng.next_below(cfg_.key_range));
  }

  WorkloadConfig cfg_;
  std::vector<std::unique_ptr<ListT>> lists_;
};

double parity_factor() {
  if (const char* raw = std::getenv("LEAP_MAP_PARITY_FACTOR")) {
    return std::strtod(raw, nullptr);
  }
#ifdef NDEBUG
  return 2.0;
#else
  // The zero-overhead claim is about optimized builds: at -O0 (Debug,
  // sanitizers) the facade's inlining-dependent layers stay as calls —
  // notably std::pair assignment inside the bulk range append — while
  // the raw engine's flat loops don't, so the ratio measures the
  // optimizer, not the facade. Smoke-run only; no guard.
  return 0.0;
#endif
}

}  // namespace

int main() {
  const auto duration = leap::harness::bench_duration(
      std::chrono::milliseconds(200));
  const int repeats = std::max(2, leap::harness::bench_repeats(2));
  const unsigned threads = leap::harness::thread_sweep().back();

  print_figure_header(
      std::cout, "Ablation: typed facade parity (leap::Map vs raw engine)",
      "40/40/20 mix, 100K elements, 4 lists, max threads",
      "codecs and visitors are compile-time: typed == raw within noise");

  struct VariantRow {
    const char* name;
    double typed;
    double raw;
  };
  WorkloadConfig cfg = paper_config();
  cfg.mix = Mix::read_dominated();
  cfg.threads = threads;
  cfg.duration = duration;

  const VariantRow rows[] = {
      {"LT",
       harness::run_workload<MapAdapter<LTMap>>(cfg, repeats).ops_per_sec,
       harness::run_workload<RawAdapter<leap::core::LeapListLT>>(cfg, repeats)
           .ops_per_sec},
      {"tm",
       harness::run_workload<MapAdapter<TMMap>>(cfg, repeats).ops_per_sec,
       harness::run_workload<RawAdapter<leap::core::LeapListTM>>(cfg, repeats)
           .ops_per_sec},
  };

  Table table({"variant", "typed Map", "raw engine", "typed/raw"});
  bool parity_ok = true;
  const double factor = parity_factor();
  for (const VariantRow& row : rows) {
    const double ratio = row.typed / std::max(row.raw, 1.0);
    table.add_row({row.name, Table::format_ops(row.typed),
                   Table::format_ops(row.raw), Table::format_ratio(ratio)});
    if (factor > 0 && ratio * factor < 1.0) parity_ok = false;
  }
  table.print(std::cout);

  if (leap::harness::smoke_mode() && !parity_ok) {
    std::cerr << "PARITY GUARD: typed facade fell more than " << factor
              << "x below the raw engine\n";
    return 1;
  }
  return 0;
}
