// Application benchmark: the paper's future-work claim — Leap-List
// indexes replacing locked ordered-tree (B-tree-class) indexes in an
// in-memory database.
//
// Workloads over a products table (3 indexed columns):
//   ingest   100% row-replace churn — for LeapTable each replace is ONE
//            leap::txn across the primary and all 3 secondary indexes
//   lookup   100% primary-key gets
//   report   100% secondary-index range scans
//   mixed    60% get / 30% scan / 10% churn
//
// Series: LeapTable (composable Leap-tm indexes, one transaction per
// row op) vs LockedTreeTable (std::map red-black trees behind one
// reader-writer lock).
#include <atomic>
#include <iostream>
#include <thread>

#include "db/leap_table.hpp"
#include "db/locked_table.hpp"
#include "harness/driver.hpp"
#include "harness/table.hpp"
#include "harness/workload.hpp"
#include "util/random.hpp"
#include "util/spin_barrier.hpp"

using namespace leap::db;
using leap::harness::Table;

namespace {

constexpr RowId kRows = 50000;

Schema product_schema() {
  Schema schema;
  schema.columns = {"price", "stock", "category"};
  schema.indexed_columns = {0, 1, 2};
  return schema;
}

Row random_row(RowId id, leap::util::Xoshiro256& rng) {
  return Row{id,
             {static_cast<ColumnValue>(rng.next_below(100000)),
              static_cast<ColumnValue>(rng.next_below(1000)),
              static_cast<ColumnValue>(rng.next_below(16))}};
}

struct MixSpec {
  const char* name;
  int get_pct;
  int scan_pct;  // rest = churn (erase+insert)
};

template <typename TableT>
double run_db_workload(const MixSpec& mix, unsigned threads,
                       std::chrono::milliseconds duration) {
  TableT table(product_schema());
  {
    leap::util::Xoshiro256 rng(11);
    for (RowId id = 1; id <= kRows; ++id) table.insert(random_row(id, rng));
  }
  std::atomic<bool> stop{false};
  std::atomic<bool> measuring{false};
  std::vector<std::uint64_t> ops(threads, 0);
  leap::util::SpinBarrier barrier(threads + 1);
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      leap::util::Xoshiro256 rng(7000 + t);
      std::vector<Row> out;
      const auto work_one = [&] {
        const int dial = static_cast<int>(rng.next_below(100));
        const RowId id = 1 + rng.next_below(kRows);
        if (dial < mix.get_pct) {
          const auto row = table.get(id);
          asm volatile("" : : "g"(&row) : "memory");
        } else if (dial < mix.get_pct + mix.scan_pct) {
          const auto low = static_cast<ColumnValue>(rng.next_below(95000));
          table.scan(0, low, low + 2000, out);
        } else {
          // Atomic replace: insert erases the old row version and
          // installs the new one across every index in one transaction.
          table.insert(random_row(id, rng));
        }
      };
      barrier.arrive_and_wait();
      // Unmeasured warm-up (allocator pools, caches, page faults).
      while (!measuring.load(std::memory_order_acquire)) work_one();
      std::uint64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        work_one();
        ++local;
      }
      ops[t] = local;
    });
  }
  barrier.arrive_and_wait();
  std::this_thread::sleep_for(leap::harness::warmup_duration(duration));
  measuring.store(true, std::memory_order_release);
  const auto start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(duration);
  stop.store(true);
  for (auto& worker : workers) worker.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::uint64_t total = 0;
  for (const auto count : ops) total += count;
  return static_cast<double>(total) / seconds;
}

}  // namespace

int main() {
  const auto duration = leap::harness::bench_duration(
      std::chrono::milliseconds(300));
  const unsigned threads = leap::harness::thread_sweep().back();

  leap::harness::print_figure_header(
      std::cout, "Application: in-memory DB indexes (paper sec 4 future work)",
      "50K-row table, 3 secondary indexes, " + std::to_string(threads) +
          " threads",
      "Leap-List indexes should win once scans/gets run concurrently with "
      "churn; the locked tree serializes everything");

  const MixSpec mixes[] = {
      {"ingest (100% churn)", 0, 0},
      {"lookup (100% get)", 100, 0},
      {"report (100% scan)", 0, 100},
      {"mixed (60/30/10)", 60, 30},
  };
  Table table({"workload", "LeapTable", "LockedTree", "Leap/Locked"});
  for (const MixSpec& mix : mixes) {
    const double leap_ops = run_db_workload<LeapTable>(mix, threads, duration);
    const double locked_ops =
        run_db_workload<LockedTreeTable>(mix, threads, duration);
    table.add_row({mix.name, Table::format_ops(leap_ops),
                   Table::format_ops(locked_ops),
                   Table::format_ratio(leap_ops / std::max(locked_ops, 1.0))});
  }
  table.print(std::cout);
  return 0;
}
