// Ablation: multi-list transactions — the paper's headline API.
//
// Workloads over 2 lists where Mix::txn_pct draws cross-list work
// (atomic key moves and two-list range snapshots). Leap-tm runs each
// as ONE leap::txn over both lists; Leap-LT and Leap-COP have no
// composable form, so the adapter runs the same steps as independent
// single-list operations — faster per step but NOT atomic (a reader
// can see the moved key in both lists or neither). The gap between the
// two columns is the price of cross-list atomicity; the tm/LT ratio
// under the mixed workload is the headline number.
#include "fig_common.hpp"

using namespace leap::bench;

int main() {
  const auto duration = leap::harness::bench_duration(
      std::chrono::milliseconds(200));
  const int repeats = leap::harness::bench_repeats(1);

  print_figure_header(
      std::cout, "Ablation: multi-list transactions (leap::txn)",
      "2 lists x 100K elements; txn = cross-list move or 2-list snapshot",
      "Leap-tm pays instrumentation for atomic cross-list ops; the "
      "single-list baselines run the same steps non-atomically");

  struct MixSpec {
    const char* name;
    Mix mix;
  };
  const MixSpec mixes[] = {
      {"move+snap (100% txn)", Mix::txn_only()},
      {"mixed (40/20/20/20)", Mix::multi_list(40, 20, 20)},
  };

  for (const MixSpec& spec : mixes) {
    Table table({"threads", "tm atomic", "LT split", "COP split", "tm/LT"});
    for (const unsigned threads : leap::harness::thread_sweep()) {
      WorkloadConfig cfg = paper_config();
      cfg.lists = 2;
      cfg.mix = spec.mix;
      cfg.threads = threads;
      cfg.duration = duration;

      const double tm =
          harness::run_workload<MapAdapter<TMMap>>(cfg, repeats).ops_per_sec;
      const double lt =
          harness::run_workload<MapAdapter<LTMap>>(cfg, repeats).ops_per_sec;
      const double cop =
          harness::run_workload<MapAdapter<COPMap>>(cfg, repeats).ops_per_sec;
      table.add_row({std::to_string(threads), Table::format_ops(tm),
                     Table::format_ops(lt), Table::format_ops(cop),
                     Table::format_ratio(tm / std::max(lt, 1.0))});
    }
    std::cout << "\n-- " << spec.name << "\n";
    table.print(std::cout);
  }
  return 0;
}
