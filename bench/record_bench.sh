#!/usr/bin/env bash
# Record the repo's perf trajectory: run the shard-count sweep, the
# network loadgen sweep, and the offered-load (overload) curve, and
# write one combined JSON at the repo root.
#
#   [BENCH_NAME=...] bench/record_bench.sh [build-dir]   (default: ./build)
#
# BENCH_NAME names the output file (default BENCH_LATEST → the rolling
# CI artifact, gitignored). A PR that commits its trajectory sets a
# frozen name instead, e.g. `BENCH_NAME=BENCH_PR7 bench/record_bench.sh`.
#
# Five sweeps feed the file:
#   * bench/abl_shard.cpp — leap::ShardedMap at S = 1..64 shards,
#     8 threads, read-mostly and mixed. The *_scaling ratios (top S
#     over S = 1, same machine, same run) are the portable signal —
#     absolute ops/sec are machine-dependent.
#   * bench/abl_rqspan.cpp (PR 10) — range-query span sweep plus the
#     bundled-references crossover: one 8-shard ShardedMap under 50%
#     range / 50% modify, the TM-stitched transactional scan vs the
#     for_range_bundled as-of walk on the same map. Both sides are
#     linearizable; bundled_over_stitched_spanN per span width is the
#     portable signal (the as-of walk never aborts, so its edge grows
#     with span and update pressure).
#   * bench/net_loadgen.cpp --sweep — leapd over loopback, a
#     threads × pipeline grid (1/4/8 clients, unpipelined vs depth 16),
#     throughput + p50/p99/p999 per point. The pipelined-vs-unpipelined
#     ratio at equal threads isolates the server's burst batching.
#   * bench/net_loadgen.cpp --loadcurve, twice — tail latency vs
#     offered load (open loop at 0.5/0.9/1.5/2x the calibrated
#     saturation rate), once against leapd's default admission control
#     and once with every cap disabled. The portable signal: p99 stays
#     bounded past saturation WITH admission (requests shed instead of
#     queueing without bound) and blows up WITHOUT.
#   * persistence (PR 8) — the same write-heavy workload against four
#     leapd configurations: pure in-memory, --fsync-mode off, group,
#     and always. MEDIAN of 3 trials per mode (this VM's throughput is
#     noisy); the portable signals are the ratios group/mem (the price
#     of an fsync-acked write under group commit) and off/mem (the
#     price of WAL buffering alone). One shard concentrates the WAL
#     into a single fsync chain — maximal group-commit amortization —
#     and a huge --checkpoint-bytes keeps checkpoint flushes out of
#     the measured window. Then a crash cycle: write a key range,
#     kill -9, time the restart (listen-line wall time minus an
#     empty-dir baseline = WAL replay cost), and measure hot
#     (in-memory) vs cold (post-checkpoint, bloom+run) read latency.
#
# Earlier committed trajectories (BENCH_PR4.json from abl_alloc,
# BENCH_PR5.json from abl_shard alone, BENCH_PR6.json without the
# overload curve) stay as history; their guards still run in ctest.
#
# LEAP_BENCH_SMOKE=1 shrinks all sweeps (tiny windows, small grids).
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-"$ROOT/build"}"
NAME="${BENCH_NAME:-BENCH_LATEST}"
OUT="$ROOT/$NAME.json"
CUR_SHARD="$(mktemp)"
CUR_RQSPAN="$(mktemp)"
CUR_NET="$(mktemp)"
CUR_CURVE_ON="$(mktemp)"
CUR_CURVE_OFF="$(mktemp)"
CUR_TRIAL="$(mktemp)"
SERVER_LOG="$(mktemp)"
SERVER_PID=""
DATADIR=""

cleanup() {
  if [[ -n "$SERVER_PID" ]] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill -9 "$SERVER_PID" 2>/dev/null || true
  fi
  rm -f "$CUR_SHARD" "$CUR_RQSPAN" "$CUR_NET" "$CUR_CURVE_ON" \
    "$CUR_CURVE_OFF" "$CUR_TRIAL" "$SERVER_LOG"
  [[ -n "$DATADIR" ]] && rm -rf "$DATADIR"
}
trap cleanup EXIT

for bin in abl_shard abl_rqspan leapd leap-loadgen; do
  if [[ ! -x "$BUILD/$bin" ]]; then
    echo "record_bench: $BUILD/$bin not built (cmake --build $BUILD)" >&2
    exit 1
  fi
done

# Start leapd with the given extra flags; sets SERVER_PID and PORT.
start_leapd() {
  : > "$SERVER_LOG"
  "$BUILD/leapd" --port 0 --workers 2 --shards 8 --stats-interval 0 \
    "$@" > "$SERVER_LOG" &
  SERVER_PID=$!
  PORT=""
  # 20 ms poll: the persistence sweep times recovery off this loop, so
  # its granularity bounds the replay-time measurement error.
  for _ in $(seq 1 1500); do
    PORT="$(sed -n 's/^leapd: listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
            "$SERVER_LOG" | head -n1)"
    [[ -n "$PORT" ]] && break
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
      echo "record_bench: leapd died before listening:" >&2
      cat "$SERVER_LOG" >&2
      exit 1
    fi
    sleep 0.02
  done
  if [[ -z "$PORT" ]]; then
    echo "record_bench: leapd never printed its listen line" >&2
    exit 1
  fi
}

stop_leapd() {
  kill -TERM "$SERVER_PID"
  local status=0
  wait "$SERVER_PID" || status=$?
  SERVER_PID=""
  if [[ "$status" -ne 0 ]] || ! grep -q "clean shutdown" "$SERVER_LOG"; then
    echo "record_bench: leapd did not shut down cleanly (exit $status):" >&2
    cat "$SERVER_LOG" >&2
    exit 1
  fi
}

# --- sweep 1: shard scaling -------------------------------------------
LEAP_BENCH_JSON="$CUR_SHARD" "$BUILD/abl_shard"

# --- sweep 1b: range-query span + bundled-vs-stitched crossover -------
LEAP_BENCH_JSON="$CUR_RQSPAN" "$BUILD/abl_rqspan"

# --- sweep 2: serving layer over loopback -----------------------------
start_leapd
LEAP_BENCH_JSON="$CUR_NET" "$BUILD/leap-loadgen" --port "$PORT" --sweep
stop_leapd

# --- sweep 3: offered-load curve, admission on vs off -----------------
# Same workload, two servers: leapd's default caps (shed at the queue),
# then every cap disabled (queues grow; the loadgen's monotone open-
# loop schedule charges the backlog to latency honestly).
start_leapd  # default admission control ON
LEAP_BENCH_JSON="$CUR_CURVE_ON" "$BUILD/leap-loadgen" --port "$PORT" \
  --threads 2 --loadcurve
stop_leapd

start_leapd --max-queue 0 --max-global 0 --accept-pause 0
LEAP_BENCH_JSON="$CUR_CURVE_OFF" "$BUILD/leap-loadgen" --port "$PORT" \
  --threads 2 --loadcurve
stop_leapd

MODE="full"
[[ -n "${LEAP_BENCH_SMOKE:-}" ]] && MODE="smoke"

# --- sweep 4: persistence — fsync-mode overhead, recovery, cold reads --
# Write-heavy fixed config: one map shard (one WAL = one fsync chain,
# maximal group amortization), deep pipelines + large batch cap so
# whole bursts commit and sync together, checkpoint threshold far
# above the bytes a trial writes (flushes would steal the single core
# mid-measurement and pollute the WAL-overhead signal).
PERSIST_ARGS=(--shards 1 --batch 512 --checkpoint-bytes 268435456)
GEN_ARGS=(--threads 2 --pipeline 512 --mix 0:100:0:0:0 --preload 0)
TRIALS=3
GEN_SECONDS=4
if [[ "$MODE" == "smoke" ]]; then
  TRIALS=1
  GEN_SECONDS=1
fi

# Median goodput (ops/s) over $TRIALS trials of one mode; leapd flag
# args follow. Each trial is a fresh server and (when durable) a fresh
# data dir, so trials never replay each other's WAL.
persist_median() {
  local trials=()
  local t
  for ((t = 0; t < TRIALS; ++t)); do
    local dir_args=()
    if [[ "$1" != "mem" ]]; then
      DATADIR="$(mktemp -d)"
      dir_args=(--data-dir "$DATADIR" --fsync-mode "$1")
    fi
    start_leapd "${PERSIST_ARGS[@]}" "${dir_args[@]}"
    LEAP_BENCH_JSON="$CUR_TRIAL" "$BUILD/leap-loadgen" --port "$PORT" \
      "${GEN_ARGS[@]}" --seconds "$GEN_SECONDS" > /dev/null
    stop_leapd
    if [[ -n "$DATADIR" ]]; then
      rm -rf "$DATADIR"
      DATADIR=""
    fi
    trials+=("$(sed -n 's/.*_ops_per_sec": \([0-9.]*\).*/\1/p' \
                "$CUR_TRIAL" | head -n1)")
  done
  printf '%s\n' "${trials[@]}" | sort -n | \
    awk -v n="$TRIALS" 'NR == int((n + 1) / 2) { print; exit }'
}

MEM_OPS="$(persist_median mem)"
OFF_OPS="$(persist_median off)"
GROUP_OPS="$(persist_median group)"
ALWAYS_OPS="$(persist_median always)"

# Recovery: write a key range durably, kill -9, time the restart's
# listen line (recovery replays before it prints), subtract the same
# measure on an empty dir (process startup). Then read latency hot
# (everything in the memtable) vs cold (tiny checkpoint bar flushed +
# evicted everything into runs; get_cold does not re-warm, so every
# cold get stays a run read).
NKEYS=200000
[[ "$MODE" == "smoke" ]] && NKEYS=20000

# start leapd "$@" and set LISTEN_MS to the wall ms until its listen
# line appeared (NOT a subshell — start_leapd must set SERVER_PID/PORT
# in this shell).
listen_ms() {
  local t0 t1
  t0="$(date +%s%N)"
  start_leapd "$@"
  t1="$(date +%s%N)"
  LISTEN_MS=$(((t1 - t0) / 1000000))
}

DATADIR="$(mktemp -d)"
listen_ms "${PERSIST_ARGS[@]}" --data-dir "$DATADIR" --fsync-mode group
BASELINE_MS="$LISTEN_MS"
"$BUILD/leap-loadgen" --port "$PORT" --putrange "0:$NKEYS" > /dev/null
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

listen_ms "${PERSIST_ARGS[@]}" --data-dir "$DATADIR" --fsync-mode group
RESTART_MS="$LISTEN_MS"
RECOVERED="$(sed -n 's/^leapd: store open .*recovered=\([0-9]*\).*/\1/p' \
             "$SERVER_LOG" | head -n1)"

# Cold reads: checkpoint everything into runs (a tiny bar makes the
# background flusher evict the replayed memtable almost immediately),
# then an all-get run over the written range.
stop_leapd
start_leapd --shards 1 --batch 512 --checkpoint-bytes 65536 \
  --data-dir "$DATADIR" --fsync-mode group
sleep 1  # let the flusher finish evicting
LEAP_BENCH_JSON="$CUR_TRIAL" "$BUILD/leap-loadgen" --port "$PORT" \
  --threads 2 --pipeline 16 --mix 100:0:0:0:0 --preload 0 \
  --keys "$NKEYS" --seconds "$GEN_SECONDS" > /dev/null
COLD_P50="$(sed -n 's/.*_p50_ns": \([0-9.]*\).*/\1/p' "$CUR_TRIAL" | head -n1)"
COLD_P99="$(sed -n 's/.*_p99_ns": \([0-9.]*\).*/\1/p' "$CUR_TRIAL" | head -n1)"
COLD_OPS="$(sed -n 's/.*_ops_per_sec": \([0-9.]*\).*/\1/p' "$CUR_TRIAL" | head -n1)"
stop_leapd
rm -rf "$DATADIR"
DATADIR=""

# Hot baseline: same reads, pure in-memory server, preloaded range.
start_leapd "${PERSIST_ARGS[@]}"
"$BUILD/leap-loadgen" --port "$PORT" --putrange "0:$NKEYS" > /dev/null
LEAP_BENCH_JSON="$CUR_TRIAL" "$BUILD/leap-loadgen" --port "$PORT" \
  --threads 2 --pipeline 16 --mix 100:0:0:0:0 --preload 0 \
  --keys "$NKEYS" --seconds "$GEN_SECONDS" > /dev/null
HOT_P50="$(sed -n 's/.*_p50_ns": \([0-9.]*\).*/\1/p' "$CUR_TRIAL" | head -n1)"
HOT_P99="$(sed -n 's/.*_p99_ns": \([0-9.]*\).*/\1/p' "$CUR_TRIAL" | head -n1)"
HOT_OPS="$(sed -n 's/.*_ops_per_sec": \([0-9.]*\).*/\1/p' "$CUR_TRIAL" | head -n1)"
stop_leapd

ratio() { awk -v a="$1" -v b="$2" 'BEGIN { printf "%.3f", (b > 0) ? a / b : 0 }'; }
REPLAY_MS=$((RESTART_MS > BASELINE_MS ? RESTART_MS - BASELINE_MS : 0))

{
  echo '{'
  echo "  \"bench\": \"$NAME\","
  echo "  \"current_mode\": \"$MODE\","
  echo '  "note": "shard-sweep scaling ratios compare top-S to S=1 within this run (same machine) and are the portable signal; net-sweep pipelined-vs-unpipelined ratios at equal threads isolate burst batching; the overload curves compare p99 past saturation with admission control on (bounded, requests shed) vs off (backlogged); absolute ops/sec are machine-dependent",'
  echo '  "shard_sweep_workload": "1 structure, 100K keys, 8 threads; read-mostly 90/0/10 and mixed 40/30/30; sharded LT / tm / rwlock",'
  echo -n '  "shard_sweep": '
  sed 's/^/  /' "$CUR_SHARD" | sed '1s/^  //'
  echo ','
  echo '  "rqspan_workload": "one structure, 100K keys, max threads; sweep 1: 100% range queries, LT vs skip baselines, per span; sweep 2 (crossover): 50% range / 50% modify on one 8-shard ShardedMap, TM-stitched transactional scan vs for_range_bundled as-of walk on the SAME map (both linearizable), plus sharded-LT bundled-native; the bundled_over_stitched_spanN ratios are the portable signal",'
  echo -n '  "rqspan": '
  sed 's/^/  /' "$CUR_RQSPAN" | sed '1s/^  //'
  echo ','
  echo '  "net_sweep_workload": "leapd over loopback, 2 workers, 8 shards; threads x pipeline grid, default mix; p50/p99/p999 per point",'
  echo -n '  "net_sweep": '
  sed 's/^/  /' "$CUR_NET" | sed '1s/^  //'
  echo ','
  echo '  "overload_workload": "leapd over loopback, 2 workers, 8 shards, 2 loadgen threads; open loop at 0.5/0.9/1.5/2x calibrated saturation (1x/2x in smoke); goodput + shed + dropped + p50/p99/p999 per offered load",'
  echo -n '  "overload_admission_on": '
  sed 's/^/  /' "$CUR_CURVE_ON" | sed '1s/^  //'
  echo ','
  echo -n '  "overload_admission_off": '
  sed 's/^/  /' "$CUR_CURVE_OFF" | sed '1s/^  //'
  echo ','
  echo '  "persistence_workload": "leapd 2 workers, 1 shard, batch 512, checkpoint-bytes 256M; loadgen 2 threads, pipeline 512, all-put mix; median of '"$TRIALS"' trials x '"$GEN_SECONDS"'s per mode; recovery = kill -9 after putrange 0:'"$NKEYS"', replay_ms = restart listen-line wall time minus empty-dir baseline; cold reads = all-get over a fully checkpointed+evicted range (runs, bloom-gated) vs the same range hot in a pure in-memory server",'
  echo '  "persistence": {'
  echo "    \"mem_ops_per_sec\": $MEM_OPS,"
  echo "    \"off_ops_per_sec\": $OFF_OPS,"
  echo "    \"group_ops_per_sec\": $GROUP_OPS,"
  echo "    \"always_ops_per_sec\": $ALWAYS_OPS,"
  echo "    \"off_over_mem\": $(ratio "$OFF_OPS" "$MEM_OPS"),"
  echo "    \"group_over_mem\": $(ratio "$GROUP_OPS" "$MEM_OPS"),"
  echo "    \"always_over_mem\": $(ratio "$ALWAYS_OPS" "$MEM_OPS"),"
  echo "    \"mem_over_group_slowdown_x\": $(ratio "$MEM_OPS" "$GROUP_OPS"),"
  echo "    \"recovery_keys\": $NKEYS,"
  echo "    \"recovered_ops\": ${RECOVERED:-0},"
  echo "    \"startup_baseline_ms\": $BASELINE_MS,"
  echo "    \"restart_with_replay_ms\": $RESTART_MS,"
  echo "    \"replay_ms\": $REPLAY_MS,"
  echo "    \"hot_read_ops_per_sec\": $HOT_OPS,"
  echo "    \"hot_read_p50_ns\": $HOT_P50,"
  echo "    \"hot_read_p99_ns\": $HOT_P99,"
  echo "    \"cold_read_ops_per_sec\": $COLD_OPS,"
  echo "    \"cold_read_p50_ns\": $COLD_P50,"
  echo "    \"cold_read_p99_ns\": $COLD_P99,"
  echo "    \"cold_over_hot_p50\": $(ratio "$COLD_P50" "$HOT_P50"),"
  echo "    \"cold_over_hot_p99\": $(ratio "$COLD_P99" "$HOT_P99")"
  echo '  }'
  echo '}'
} > "$OUT"

echo "record_bench: wrote $OUT ($MODE run)"
