#!/usr/bin/env bash
# Record the repo's perf trajectory: run the shard-count sweep, the
# network loadgen sweep, and the offered-load (overload) curve, and
# write one combined JSON at the repo root.
#
#   [BENCH_NAME=...] bench/record_bench.sh [build-dir]   (default: ./build)
#
# BENCH_NAME names the output file (default BENCH_LATEST → the rolling
# CI artifact, gitignored). A PR that commits its trajectory sets a
# frozen name instead, e.g. `BENCH_NAME=BENCH_PR7 bench/record_bench.sh`.
#
# Three sweeps feed the file:
#   * bench/abl_shard.cpp — leap::ShardedMap at S = 1..64 shards,
#     8 threads, read-mostly and mixed. The *_scaling ratios (top S
#     over S = 1, same machine, same run) are the portable signal —
#     absolute ops/sec are machine-dependent.
#   * bench/net_loadgen.cpp --sweep — leapd over loopback, a
#     threads × pipeline grid (1/4/8 clients, unpipelined vs depth 16),
#     throughput + p50/p99/p999 per point. The pipelined-vs-unpipelined
#     ratio at equal threads isolates the server's burst batching.
#   * bench/net_loadgen.cpp --loadcurve, twice — tail latency vs
#     offered load (open loop at 0.5/0.9/1.5/2x the calibrated
#     saturation rate), once against leapd's default admission control
#     and once with every cap disabled. The portable signal: p99 stays
#     bounded past saturation WITH admission (requests shed instead of
#     queueing without bound) and blows up WITHOUT.
#
# Earlier committed trajectories (BENCH_PR4.json from abl_alloc,
# BENCH_PR5.json from abl_shard alone, BENCH_PR6.json without the
# overload curve) stay as history; their guards still run in ctest.
#
# LEAP_BENCH_SMOKE=1 shrinks all sweeps (tiny windows, small grids).
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-"$ROOT/build"}"
NAME="${BENCH_NAME:-BENCH_LATEST}"
OUT="$ROOT/$NAME.json"
CUR_SHARD="$(mktemp)"
CUR_NET="$(mktemp)"
CUR_CURVE_ON="$(mktemp)"
CUR_CURVE_OFF="$(mktemp)"
SERVER_LOG="$(mktemp)"
SERVER_PID=""

cleanup() {
  if [[ -n "$SERVER_PID" ]] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill -9 "$SERVER_PID" 2>/dev/null || true
  fi
  rm -f "$CUR_SHARD" "$CUR_NET" "$CUR_CURVE_ON" "$CUR_CURVE_OFF" \
    "$SERVER_LOG"
}
trap cleanup EXIT

for bin in abl_shard leapd leap-loadgen; do
  if [[ ! -x "$BUILD/$bin" ]]; then
    echo "record_bench: $BUILD/$bin not built (cmake --build $BUILD)" >&2
    exit 1
  fi
done

# Start leapd with the given extra flags; sets SERVER_PID and PORT.
start_leapd() {
  : > "$SERVER_LOG"
  "$BUILD/leapd" --port 0 --workers 2 --shards 8 --stats-interval 0 \
    "$@" > "$SERVER_LOG" &
  SERVER_PID=$!
  PORT=""
  for _ in $(seq 1 100); do
    PORT="$(sed -n 's/^leapd: listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
            "$SERVER_LOG" | head -n1)"
    [[ -n "$PORT" ]] && break
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
      echo "record_bench: leapd died before listening:" >&2
      cat "$SERVER_LOG" >&2
      exit 1
    fi
    sleep 0.1
  done
  if [[ -z "$PORT" ]]; then
    echo "record_bench: leapd never printed its listen line" >&2
    exit 1
  fi
}

stop_leapd() {
  kill -TERM "$SERVER_PID"
  local status=0
  wait "$SERVER_PID" || status=$?
  SERVER_PID=""
  if [[ "$status" -ne 0 ]] || ! grep -q "clean shutdown" "$SERVER_LOG"; then
    echo "record_bench: leapd did not shut down cleanly (exit $status):" >&2
    cat "$SERVER_LOG" >&2
    exit 1
  fi
}

# --- sweep 1: shard scaling -------------------------------------------
LEAP_BENCH_JSON="$CUR_SHARD" "$BUILD/abl_shard"

# --- sweep 2: serving layer over loopback -----------------------------
start_leapd
LEAP_BENCH_JSON="$CUR_NET" "$BUILD/leap-loadgen" --port "$PORT" --sweep
stop_leapd

# --- sweep 3: offered-load curve, admission on vs off -----------------
# Same workload, two servers: leapd's default caps (shed at the queue),
# then every cap disabled (queues grow; the loadgen's monotone open-
# loop schedule charges the backlog to latency honestly).
start_leapd  # default admission control ON
LEAP_BENCH_JSON="$CUR_CURVE_ON" "$BUILD/leap-loadgen" --port "$PORT" \
  --threads 2 --loadcurve
stop_leapd

start_leapd --max-queue 0 --max-global 0 --accept-pause 0
LEAP_BENCH_JSON="$CUR_CURVE_OFF" "$BUILD/leap-loadgen" --port "$PORT" \
  --threads 2 --loadcurve
stop_leapd

MODE="full"
[[ -n "${LEAP_BENCH_SMOKE:-}" ]] && MODE="smoke"

{
  echo '{'
  echo "  \"bench\": \"$NAME\","
  echo "  \"current_mode\": \"$MODE\","
  echo '  "note": "shard-sweep scaling ratios compare top-S to S=1 within this run (same machine) and are the portable signal; net-sweep pipelined-vs-unpipelined ratios at equal threads isolate burst batching; the overload curves compare p99 past saturation with admission control on (bounded, requests shed) vs off (backlogged); absolute ops/sec are machine-dependent",'
  echo '  "shard_sweep_workload": "1 structure, 100K keys, 8 threads; read-mostly 90/0/10 and mixed 40/30/30; sharded LT / tm / rwlock",'
  echo -n '  "shard_sweep": '
  sed 's/^/  /' "$CUR_SHARD" | sed '1s/^  //'
  echo ','
  echo '  "net_sweep_workload": "leapd over loopback, 2 workers, 8 shards; threads x pipeline grid, default mix; p50/p99/p999 per point",'
  echo -n '  "net_sweep": '
  sed 's/^/  /' "$CUR_NET" | sed '1s/^  //'
  echo ','
  echo '  "overload_workload": "leapd over loopback, 2 workers, 8 shards, 2 loadgen threads; open loop at 0.5/0.9/1.5/2x calibrated saturation (1x/2x in smoke); goodput + shed + dropped + p50/p99/p999 per offered load",'
  echo -n '  "overload_admission_on": '
  sed 's/^/  /' "$CUR_CURVE_ON" | sed '1s/^  //'
  echo ','
  echo -n '  "overload_admission_off": '
  sed 's/^/  /' "$CUR_CURVE_OFF" | sed '1s/^  //'
  echo '}'
} > "$OUT"

echo "record_bench: wrote $OUT ($MODE run)"
