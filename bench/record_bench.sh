#!/usr/bin/env bash
# Record the repo's perf trajectory: run the shard-count sweep and the
# network loadgen sweep, and write one combined JSON at the repo root.
#
#   [BENCH_NAME=...] bench/record_bench.sh [build-dir]   (default: ./build)
#
# BENCH_NAME names the output file (default BENCH_LATEST → the rolling
# CI artifact, gitignored). A PR that commits its trajectory sets a
# frozen name instead, e.g. `BENCH_NAME=BENCH_PR6 bench/record_bench.sh`.
#
# Two sweeps feed the file:
#   * bench/abl_shard.cpp — leap::ShardedMap at S = 1..64 shards,
#     8 threads, read-mostly and mixed. The *_scaling ratios (top S
#     over S = 1, same machine, same run) are the portable signal —
#     absolute ops/sec are machine-dependent.
#   * bench/net_loadgen.cpp --sweep — leapd over loopback, a
#     threads × pipeline grid (1/4/8 clients, unpipelined vs depth 16),
#     throughput + p50/p99/p999 per point. The pipelined-vs-unpipelined
#     ratio at equal threads isolates the server's burst batching.
#
# Earlier committed trajectories (BENCH_PR4.json from abl_alloc,
# BENCH_PR5.json from abl_shard alone) stay as history; their guards
# still run in ctest.
#
# LEAP_BENCH_SMOKE=1 shrinks both sweeps (tiny windows, small grids).
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-"$ROOT/build"}"
NAME="${BENCH_NAME:-BENCH_LATEST}"
OUT="$ROOT/$NAME.json"
CUR_SHARD="$(mktemp)"
CUR_NET="$(mktemp)"
SERVER_LOG="$(mktemp)"
SERVER_PID=""

cleanup() {
  if [[ -n "$SERVER_PID" ]] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill -9 "$SERVER_PID" 2>/dev/null || true
  fi
  rm -f "$CUR_SHARD" "$CUR_NET" "$SERVER_LOG"
}
trap cleanup EXIT

for bin in abl_shard leapd leap-loadgen; do
  if [[ ! -x "$BUILD/$bin" ]]; then
    echo "record_bench: $BUILD/$bin not built (cmake --build $BUILD)" >&2
    exit 1
  fi
done

# --- sweep 1: shard scaling -------------------------------------------
LEAP_BENCH_JSON="$CUR_SHARD" "$BUILD/abl_shard"

# --- sweep 2: serving layer over loopback -----------------------------
"$BUILD/leapd" --port 0 --workers 2 --shards 8 > "$SERVER_LOG" &
SERVER_PID=$!
PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/^leapd: listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
          "$SERVER_LOG" | head -n1)"
  [[ -n "$PORT" ]] && break
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "record_bench: leapd died before listening:" >&2
    cat "$SERVER_LOG" >&2
    exit 1
  fi
  sleep 0.1
done
if [[ -z "$PORT" ]]; then
  echo "record_bench: leapd never printed its listen line" >&2
  exit 1
fi

LEAP_BENCH_JSON="$CUR_NET" "$BUILD/leap-loadgen" --port "$PORT" --sweep

kill -TERM "$SERVER_PID"
STATUS=0
wait "$SERVER_PID" || STATUS=$?
SERVER_PID=""
if [[ "$STATUS" -ne 0 ]] || ! grep -q "clean shutdown" "$SERVER_LOG"; then
  echo "record_bench: leapd did not shut down cleanly (exit $STATUS):" >&2
  cat "$SERVER_LOG" >&2
  exit 1
fi

MODE="full"
[[ -n "${LEAP_BENCH_SMOKE:-}" ]] && MODE="smoke"

{
  echo '{'
  echo "  \"bench\": \"$NAME\","
  echo "  \"current_mode\": \"$MODE\","
  echo '  "note": "shard-sweep scaling ratios compare top-S to S=1 within this run (same machine) and are the portable signal; net-sweep pipelined-vs-unpipelined ratios at equal threads isolate burst batching; absolute ops/sec are machine-dependent",'
  echo '  "shard_sweep_workload": "1 structure, 100K keys, 8 threads; read-mostly 90/0/10 and mixed 40/30/30; sharded LT / tm / rwlock",'
  echo -n '  "shard_sweep": '
  sed 's/^/  /' "$CUR_SHARD" | sed '1s/^  //'
  echo ','
  echo '  "net_sweep_workload": "leapd over loopback, 2 workers, 8 shards; threads x pipeline grid, default mix; p50/p99/p999 per point",'
  echo -n '  "net_sweep": '
  sed 's/^/  /' "$CUR_NET" | sed '1s/^  //'
  echo '}'
} > "$OUT"

echo "record_bench: wrote $OUT ($MODE run)"
