#!/usr/bin/env bash
# Record the PR 4 perf trajectory: run the allocation/throughput bench
# and write BENCH_PR4.json at the repo root with before/after numbers.
#
#   bench/record_bench.sh [build-dir]     (default: ./build)
#
# The "before" block is the pre-PR main baseline (commit 5842128, fat
# nodes: Node + three vectors = 4 heap allocations per update) measured
# with this same bench on the PR author's container. Allocation counts
# are deterministic and machine-independent; the throughput ratio is
# machine-dependent — regenerate the current block on your hardware by
# re-running this script, and read the alloc counts as the portable
# evidence. CI uploads the refreshed file as a build artifact.
#
# LEAP_BENCH_SMOKE=1 shrinks the throughput windows (alloc counts keep
# a reduced but still steady-state op count).
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-"$ROOT/build"}"
OUT="$ROOT/BENCH_PR4.json"
CUR="$(mktemp)"
trap 'rm -f "$CUR"' EXIT

if [[ ! -x "$BUILD/abl_alloc" ]]; then
  echo "record_bench: $BUILD/abl_alloc not built (cmake --build $BUILD)" >&2
  exit 1
fi

LEAP_BENCH_JSON="$CUR" "$BUILD/abl_alloc"

# Pre-PR baseline: best of 3 runs of this bench built at commit 5842128
# (the parent of this PR), same workload definition.
BASELINE='{
    "lt_allocs_per_update": 4.000,
    "cop_allocs_per_update": 4.000,
    "tm_allocs_per_update": 4.000,
    "lt_bytes_per_update": 4976.5,
    "cop_bytes_per_update": 4975.5,
    "tm_bytes_per_update": 4975.0,
    "mixed_threads": 8,
    "mixed_modify_pct": 30,
    "lt_mixed_ops_per_sec": 343246,
    "cop_mixed_ops_per_sec": 373814,
    "tm_mixed_ops_per_sec": 394136
  }'

json_get() {
  grep "\"$2\"" "$1" | head -1 | sed 's/.*: *//; s/,$//'
}

ratio() {
  awk -v a="$1" -v b="$2" 'BEGIN { printf "%.3f", (b > 0) ? a / b : 0 }'
}

# Single source for the baseline values the ratios divide by.
BASE="$(mktemp)"
trap 'rm -f "$CUR" "$BASE"' EXIT
printf '%s\n' "$BASELINE" > "$BASE"

LT_CUR=$(json_get "$CUR" lt_mixed_ops_per_sec)
COP_CUR=$(json_get "$CUR" cop_mixed_ops_per_sec)
TM_CUR=$(json_get "$CUR" tm_mixed_ops_per_sec)
LT_BASE=$(json_get "$BASE" lt_mixed_ops_per_sec)
COP_BASE=$(json_get "$BASE" cop_mixed_ops_per_sec)
TM_BASE=$(json_get "$BASE" tm_mixed_ops_per_sec)

MODE="full"
[[ -n "${LEAP_BENCH_SMOKE:-}" ]] && MODE="smoke"

{
  echo '{'
  echo '  "bench": "BENCH_PR4",'
  echo '  "workload": "fig16-style mixed, 40% lookup / 30% range / 30% modify, 8 threads, 4 lists, node_size 300, 100K keys",'
  echo "  \"current_mode\": \"$MODE\","
  echo '  "speedup_note": "alloc counts are deterministic and portable; speedup_mixed is only meaningful when current was measured on the same machine with full windows as baseline_pre_pr (see script header)",'
  echo "  \"baseline_pre_pr\": $BASELINE,"
  echo -n '  "current": '
  sed 's/^/  /' "$CUR" | sed '1s/^  //'
  echo '  ,'
  echo '  "speedup_mixed": {'
  echo "    \"lt\": $(ratio "$LT_CUR" "$LT_BASE"),"
  echo "    \"cop\": $(ratio "$COP_CUR" "$COP_BASE"),"
  echo "    \"tm\": $(ratio "$TM_CUR" "$TM_BASE")"
  echo '  }'
  echo '}'
} > "$OUT"

echo "record_bench: wrote $OUT ($MODE run)"
