#!/usr/bin/env bash
# Record the PR 5 perf trajectory: run the shard-count sweep and write
# BENCH_PR5.json at the repo root.
#
#   bench/record_bench.sh [build-dir]     (default: ./build)
#
# The sweep (bench/abl_shard.cpp) measures leap::ShardedMap at
# S = 1..64 shards, 8 threads, read-mostly and mixed workloads; the
# *_scaling ratios (top S over S = 1, same machine, same run) are the
# portable signal — absolute ops/sec are machine-dependent. CI uploads
# the refreshed file as a build artifact. The PR 4 allocation-trajectory
# file (BENCH_PR4.json, written by this script's previous revision from
# abl_alloc) stays committed as history; abl_alloc still guards the
# alloc-per-update bound in ctest.
#
# LEAP_BENCH_SMOKE=1 shrinks the sweep to S = {1, 4} with tiny windows.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-"$ROOT/build"}"
OUT="$ROOT/BENCH_PR5.json"
CUR="$(mktemp)"
trap 'rm -f "$CUR"' EXIT

if [[ ! -x "$BUILD/abl_shard" ]]; then
  echo "record_bench: $BUILD/abl_shard not built (cmake --build $BUILD)" >&2
  exit 1
fi

LEAP_BENCH_JSON="$CUR" "$BUILD/abl_shard"

MODE="full"
[[ -n "${LEAP_BENCH_SMOKE:-}" ]] && MODE="smoke"

{
  echo '{'
  echo '  "bench": "BENCH_PR5",'
  echo '  "workload": "shard sweep: 1 structure, 100K keys, 8 threads; read-mostly 90/0/10 and mixed 40/30/30; sharded LT / tm / rwlock",'
  echo "  \"current_mode\": \"$MODE\","
  echo '  "note": "scaling ratios compare top-S to S=1 within this run (same machine) and are the portable signal; absolute ops/sec are machine-dependent",'
  echo -n '  "sweep": '
  sed 's/^/  /' "$CUR" | sed '1s/^  //'
  echo '}'
} > "$OUT"

echo "record_bench: wrote $OUT ($MODE run)"
