// Figure 14 reproduction: throughput of the four Leap-List variants while
// varying the number of threads. Four lists, 100K initial elements each.
//   (a) 100% modify (50% update / 50% remove)
//   (b) 40% lookup, 40% range-query, 20% modify
//
// Paper findings to reproduce (shape, not absolute numbers): Leap-LT wins
// both workloads — up to 2.2x/3.55x/9.3x over COP/tm/rwlock on (a) and
// 2.0x/3.3x/9.8x on (b); the read-dominated mix has higher absolute
// throughput than the write-only one.
#include "fig_common.hpp"

using namespace leap::bench;

int main() {
  const auto duration = leap::harness::bench_duration(
      std::chrono::milliseconds(200));
  const int repeats = leap::harness::bench_repeats(1);

  const struct {
    const char* id;
    const char* name;
    Mix mix;
    const char* expectation;
  } panels[] = {
      {"Fig 14(a)", "100% modify, 4 lists, 100K elements each",
       Mix::modify_only(),
       "Leap-LT best; up to 2.2x vs COP, 3.55x vs tm, 9.3x vs rwlock"},
      {"Fig 14(b)", "40% lookup / 40% range / 20% modify",
       Mix::read_dominated(),
       "Leap-LT best; up to 2.0x vs COP, 3.3x vs tm, 9.8x vs rwlock; "
       "higher absolute throughput than (a)"},
  };

  constexpr int kShards = 8;
  for (const auto& panel : panels) {
    print_figure_header(std::cout, panel.id, panel.name, panel.expectation);
    Table table(leap_table_headers("threads"));
    Table sharded(sharded_table_headers("threads", kShards));
    for (const unsigned threads : leap::harness::thread_sweep()) {
      WorkloadConfig cfg = paper_config();
      cfg.mix = panel.mix;
      cfg.threads = threads;
      cfg.duration = duration;
      const LeapRow row = measure_leap_row(cfg, repeats);
      table.add_row(leap_row_cells(std::to_string(threads), row));
      const ShardedRow srow =
          measure_sharded_row(cfg, repeats, kShards, row.lt);
      sharded.add_row(sharded_row_cells(std::to_string(threads), srow));
    }
    table.print(std::cout);
    std::cout << "   scale-out series: same workload over " << kShards
              << "-shard leap::ShardedMap (see abl_shard for the sweep)\n\n";
    sharded.print(std::cout);
  }
  return 0;
}
