// Shared helpers for the figure-reproduction benchmarks.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "harness/adapters.hpp"
#include "harness/driver.hpp"
#include "harness/table.hpp"

namespace leap::bench {

using harness::MapAdapter;
using harness::Mix;
using harness::print_figure_header;
using harness::Table;
using harness::ThroughputResult;
using harness::WorkloadConfig;

/// The benches drive every structure through the typed facade: one
/// int64 -> int64 leap::Map per policy (identity codecs, so this is
/// the raw engine plus an inlined cast).
using LTMap = leap::Map<std::int64_t, std::int64_t, leap::policy::LT>;
using COPMap = leap::Map<std::int64_t, std::int64_t, leap::policy::COP>;
using TMMap = leap::Map<std::int64_t, std::int64_t, leap::policy::TM>;
using RWMap = leap::Map<std::int64_t, std::int64_t, leap::policy::RW>;
using SkipCASMap =
    leap::Map<std::int64_t, std::int64_t, leap::policy::SkipCAS>;
using SkipTMMap =
    leap::Map<std::int64_t, std::int64_t, leap::policy::SkipTM>;

/// Sharded instantiations (WorkloadConfig::shards picks the count; the
/// adapter hints the partition window from key_range).
using ShardedLTMap =
    leap::ShardedMap<std::int64_t, std::int64_t, leap::policy::LT>;
using ShardedTMMap =
    leap::ShardedMap<std::int64_t, std::int64_t, leap::policy::TM>;
using ShardedRWMap =
    leap::ShardedMap<std::int64_t, std::int64_t, leap::policy::RW>;

/// Results for the four Leap-List variants on one configuration, in the
/// paper's order: LT, COP, tm, rwlock.
struct LeapRow {
  double lt = 0;
  double cop = 0;
  double tm = 0;
  double rwlock = 0;
};

inline LeapRow measure_leap_row(const WorkloadConfig& cfg, int repeats) {
  LeapRow row;
  row.lt = harness::run_workload<MapAdapter<LTMap>>(cfg, repeats).ops_per_sec;
  row.cop =
      harness::run_workload<MapAdapter<COPMap>>(cfg, repeats).ops_per_sec;
  row.tm = harness::run_workload<MapAdapter<TMMap>>(cfg, repeats).ops_per_sec;
  row.rwlock =
      harness::run_workload<MapAdapter<RWMap>>(cfg, repeats).ops_per_sec;
  return row;
}

inline std::vector<std::string> leap_row_cells(const std::string& label,
                                               const LeapRow& row) {
  return {label, Table::format_ops(row.lt), Table::format_ops(row.cop),
          Table::format_ops(row.tm), Table::format_ops(row.rwlock),
          Table::format_ratio(row.lt / std::max(row.cop, 1.0)),
          Table::format_ratio(row.lt / std::max(row.tm, 1.0)),
          Table::format_ratio(row.lt / std::max(row.rwlock, 1.0))};
}

inline std::vector<std::string> leap_table_headers(const std::string& x_axis) {
  return {x_axis,     "Leap-LT", "Leap-COP", "Leap-tm",
          "Leap-rwl", "LT/COP",  "LT/tm",    "LT/rwl"};
}

/// The scale-out companion row: sharded LT and tm at `shards`
/// partitions on the same workload, against a caller-supplied plain-LT
/// baseline (measured once in the main series — not re-run here).
struct ShardedRow {
  double lt = 0;  // plain Leap-LT baseline
  double sharded_lt = 0;
  double sharded_tm = 0;
};

inline ShardedRow measure_sharded_row(WorkloadConfig cfg, int repeats,
                                      int shards, double lt_baseline) {
  ShardedRow row;
  row.lt = lt_baseline;
  cfg.shards = shards;
  row.sharded_lt =
      harness::run_workload<MapAdapter<ShardedLTMap>>(cfg, repeats)
          .ops_per_sec;
  row.sharded_tm =
      harness::run_workload<MapAdapter<ShardedTMMap>>(cfg, repeats)
          .ops_per_sec;
  return row;
}

inline std::vector<std::string> sharded_row_cells(const std::string& label,
                                                  const ShardedRow& row) {
  return {label, Table::format_ops(row.lt),
          Table::format_ops(row.sharded_lt),
          Table::format_ops(row.sharded_tm),
          Table::format_ratio(row.sharded_lt / std::max(row.lt, 1.0)),
          Table::format_ratio(row.sharded_tm / std::max(row.lt, 1.0))};
}

inline std::vector<std::string> sharded_table_headers(
    const std::string& x_axis, int shards) {
  const std::string s = std::to_string(shards);
  return {x_axis,        "Leap-LT",     "ShLT(" + s + ")",
          "ShTM(" + s + ")", "ShLT/LT", "ShTM/LT"};
}

/// The paper's common settings (§3): L = 4 lists, node size 300, max
/// level 10, keys 0..100000, range spans 1000..2000.
inline WorkloadConfig paper_config() {
  WorkloadConfig cfg;
  cfg.lists = 4;
  cfg.params = core::Params{.node_size = 300, .max_level = 10};
  cfg.key_range = 100000;
  cfg.rq_span_min = 1000;
  cfg.rq_span_max = 2000;
  cfg.initial_size = 100000;
  return cfg;
}

}  // namespace leap::bench

/// Benches are leaf translation units; a short alias keeps call sites
/// readable.
namespace harness = leap::harness;
