// Shared helpers for the figure-reproduction benchmarks.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "harness/adapters.hpp"
#include "harness/driver.hpp"
#include "harness/table.hpp"

namespace leap::bench {

using harness::LeapAdapter;
using harness::Mix;
using harness::print_figure_header;
using harness::SkipAdapter;
using harness::Table;
using harness::ThroughputResult;
using harness::WorkloadConfig;

/// Results for the four Leap-List variants on one configuration, in the
/// paper's order: LT, COP, tm, rwlock.
struct LeapRow {
  double lt = 0;
  double cop = 0;
  double tm = 0;
  double rwlock = 0;
};

inline LeapRow measure_leap_row(const WorkloadConfig& cfg, int repeats) {
  LeapRow row;
  row.lt =
      harness::run_workload<LeapAdapter<core::LeapListLT>>(cfg, repeats)
          .ops_per_sec;
  row.cop =
      harness::run_workload<LeapAdapter<core::LeapListCOP>>(cfg, repeats)
          .ops_per_sec;
  row.tm =
      harness::run_workload<LeapAdapter<core::LeapListTM>>(cfg, repeats)
          .ops_per_sec;
  row.rwlock =
      harness::run_workload<LeapAdapter<core::LeapListRW>>(cfg, repeats)
          .ops_per_sec;
  return row;
}

inline std::vector<std::string> leap_row_cells(const std::string& label,
                                               const LeapRow& row) {
  return {label, Table::format_ops(row.lt), Table::format_ops(row.cop),
          Table::format_ops(row.tm), Table::format_ops(row.rwlock),
          Table::format_ratio(row.lt / std::max(row.cop, 1.0)),
          Table::format_ratio(row.lt / std::max(row.tm, 1.0)),
          Table::format_ratio(row.lt / std::max(row.rwlock, 1.0))};
}

inline std::vector<std::string> leap_table_headers(const std::string& x_axis) {
  return {x_axis,     "Leap-LT", "Leap-COP", "Leap-tm",
          "Leap-rwl", "LT/COP",  "LT/tm",    "LT/rwl"};
}

/// The paper's common settings (§3): L = 4 lists, node size 300, max
/// level 10, keys 0..100000, range spans 1000..2000.
inline WorkloadConfig paper_config() {
  WorkloadConfig cfg;
  cfg.lists = 4;
  cfg.params = core::Params{.node_size = 300, .max_level = 10};
  cfg.key_range = 100000;
  cfg.rq_span_min = 1000;
  cfg.rq_span_max = 2000;
  cfg.initial_size = 100000;
  return cfg;
}

}  // namespace leap::bench

/// Benches are leaf translation units; a short alias keeps call sites
/// readable.
namespace harness = leap::harness;
