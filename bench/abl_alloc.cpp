// Ablation: allocator traffic per update operation (PR 4).
//
// The paper's update model never edits a published node: every
// insert/erase builds replacement node(s), so allocation IS the update
// hot path. This bench overrides global operator new/delete with
// counting wrappers and drives a steady-state insert/erase churn
// through the typed maps, reporting amortized heap allocations, bytes,
// and frees per MUTATING update (ops that actually replaced a node).
// The flat single-allocation node plus its two bundled-reference
// entries (PR 10: the new node's seed entry and the predecessor-bundle
// entry, both pool blocks) should cost ≤ 3 allocations per update
// without the recycling pool (ASan builds, where the pool is
// pass-through) and ~0 with it; the pre-PR-4 fat node cost 4 (Node +
// next/keys/values vectors). Both bounds are enforced as a guard
// (the pass-through bound is 3.25 — 3 pool blocks plus amortized EBR
// bin-vector growth).
//
// Also measures the fig16-style update-heavy mixed workload (30%
// modify / 40% lookup / 30% range at 8 threads) whose before/after
// ratio bench/record_bench.sh bakes into BENCH_PR4.json, and emits
// machine-readable JSON (one key per line) when LEAP_BENCH_JSON names
// a path.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <new>
#include <string>
#include <vector>

#include "fig_common.hpp"
#include "util/ebr.hpp"
#include "util/random.hpp"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};
std::atomic<std::uint64_t> g_frees{0};

void count_alloc(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  }
}

void count_free() {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_frees.fetch_add(1, std::memory_order_relaxed);
  }
}

void* checked_malloc(std::size_t size) {
  void* ptr = std::malloc(size != 0 ? size : 1);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

}  // namespace

void* operator new(std::size_t size) {
  count_alloc(size);
  return checked_malloc(size);
}

void* operator new[](std::size_t size) {
  count_alloc(size);
  return checked_malloc(size);
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  count_alloc(size);
  return std::malloc(size != 0 ? size : 1);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  count_alloc(size);
  return std::malloc(size != 0 ? size : 1);
}

void operator delete(void* ptr) noexcept {
  count_free();
  std::free(ptr);
}

void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  count_free();
  std::free(ptr);
}

void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  count_free();
  std::free(ptr);
}

void operator delete[](void* ptr) noexcept {
  count_free();
  std::free(ptr);
}

void operator delete(void* ptr, std::size_t) noexcept {
  count_free();
  std::free(ptr);
}

void operator delete[](void* ptr, std::size_t) noexcept {
  count_free();
  std::free(ptr);
}

namespace {

using namespace leap::bench;

struct AllocStats {
  double allocs_per_update = 0;
  double bytes_per_update = 0;
  double frees_per_update = 0;
};

/// Steady-state churn: random 50/50 insert/erase over the preloaded
/// key range, single-threaded, counting only the measured window (the
/// warm-up saturates the recycling pool and every internal vector).
template <typename MapT>
AllocStats measure_updates(const std::uint64_t ops) {
  const WorkloadConfig cfg = paper_config();
  MapT map(cfg.params);
  {
    std::vector<typename MapT::value_type> pairs;
    for (const std::uint64_t key : leap::harness::preload_keys(cfg)) {
      pairs.push_back({static_cast<std::int64_t>(key),
                       static_cast<std::int64_t>(key)});
    }
    map.bulk_load(pairs);
  }
  leap::util::Xoshiro256 rng(0xa110c);
  const auto churn = [&](std::uint64_t count, std::uint64_t& mutations) {
    for (std::uint64_t i = 0; i < count; ++i) {
      const auto key =
          static_cast<std::int64_t>(1 + rng.next_below(cfg.key_range));
      if ((rng.next() & 1) != 0) {
        map.insert(key, key * 2 + 1);  // hit either way: add or replace
        ++mutations;
      } else if (map.erase(key)) {
        ++mutations;
      }
    }
  };
  std::uint64_t warm_mutations = 0;
  churn(ops / 2, warm_mutations);
  g_allocs.store(0);
  g_alloc_bytes.store(0);
  g_frees.store(0);
  std::uint64_t mutations = 0;
  g_counting.store(true);
  churn(ops, mutations);
  g_counting.store(false);
  AllocStats stats;
  const auto denom = static_cast<double>(std::max<std::uint64_t>(1, mutations));
  stats.allocs_per_update = static_cast<double>(g_allocs.load()) / denom;
  stats.bytes_per_update = static_cast<double>(g_alloc_bytes.load()) / denom;
  stats.frees_per_update = static_cast<double>(g_frees.load()) / denom;
  return stats;
}

/// Fig16-style update-heavy mixed workload: 30% modify at 8 threads
/// regardless of core count (the acceptance workload for PR 4).
double measure_mixed(const char* policy_label) {
  WorkloadConfig cfg = paper_config();
  cfg.mix = Mix{40, 30, 0};  // remainder 30% modify
  cfg.threads = 8;
  cfg.duration = leap::harness::bench_duration(std::chrono::milliseconds(400));
  const int repeats = leap::harness::bench_repeats(2);
  if (std::string(policy_label) == "LT") {
    return harness::run_workload<MapAdapter<LTMap>>(cfg, repeats).ops_per_sec;
  }
  if (std::string(policy_label) == "COP") {
    return harness::run_workload<MapAdapter<COPMap>>(cfg, repeats).ops_per_sec;
  }
  return harness::run_workload<MapAdapter<TMMap>>(cfg, repeats).ops_per_sec;
}

}  // namespace

int main() {
  const bool smoke = leap::harness::smoke_mode();
  const std::uint64_t ops = smoke ? 20000 : 100000;

  print_figure_header(
      std::cout, "Ablation: allocator traffic per update",
      "heap allocations / bytes / frees per mutating update, steady state",
      "flat node + 2 bundle entries: ≤3 allocs/update heap-backed, ~0 "
      "with the recycling pool (pre-PR-4 fat nodes cost 4)");

  const AllocStats lt = measure_updates<LTMap>(ops);
  const AllocStats cop = measure_updates<COPMap>(ops);
  const AllocStats tm = measure_updates<TMMap>(ops);

  Table table({"variant", "allocs/upd", "bytes/upd", "frees/upd"});
  const auto row = [&](const char* label, const AllocStats& s) {
    char allocs[32], bytes[32], frees[32];
    std::snprintf(allocs, sizeof(allocs), "%.3f", s.allocs_per_update);
    std::snprintf(bytes, sizeof(bytes), "%.0f", s.bytes_per_update);
    std::snprintf(frees, sizeof(frees), "%.3f", s.frees_per_update);
    table.add_row({label, allocs, bytes, frees});
  };
  row("Leap-LT", lt);
  row("Leap-COP", cop);
  row("Leap-tm", tm);
  table.print(std::cout);

  const bool pooled = leap::util::ebr::pool_enabled();
  std::cout << "pool: " << (pooled ? "enabled" : "pass-through (sanitizer)")
            << ", hits " << leap::util::ebr::pool_hits() << ", misses "
            << leap::util::ebr::pool_misses() << "\n";

  const double mixed_lt = measure_mixed("LT");
  const double mixed_cop = measure_mixed("COP");
  const double mixed_tm = measure_mixed("TM");
  Table mixed({"variant", "mixed 30%upd/8thr ops/s"});
  mixed.add_row({"Leap-LT", Table::format_ops(mixed_lt)});
  mixed.add_row({"Leap-COP", Table::format_ops(mixed_cop)});
  mixed.add_row({"Leap-tm", Table::format_ops(mixed_tm)});
  mixed.print(std::cout);

  if (const char* path = std::getenv("LEAP_BENCH_JSON")) {
    std::ofstream out(path);
    out.setf(std::ios::fixed);
    out.precision(4);
    out << "{\n"
        << "  \"bench\": \"abl_alloc\",\n"
        << "  \"pool_enabled\": " << (pooled ? "true" : "false") << ",\n"
        << "  \"pool_hits\": " << leap::util::ebr::pool_hits() << ",\n"
        << "  \"pool_misses\": " << leap::util::ebr::pool_misses() << ",\n"
        << "  \"lt_allocs_per_update\": " << lt.allocs_per_update << ",\n"
        << "  \"cop_allocs_per_update\": " << cop.allocs_per_update << ",\n"
        << "  \"tm_allocs_per_update\": " << tm.allocs_per_update << ",\n"
        << "  \"lt_bytes_per_update\": " << lt.bytes_per_update << ",\n"
        << "  \"cop_bytes_per_update\": " << cop.bytes_per_update << ",\n"
        << "  \"tm_bytes_per_update\": " << tm.bytes_per_update << ",\n"
        << "  \"mixed_threads\": 8,\n"
        << "  \"mixed_modify_pct\": 30,\n"
        << "  \"lt_mixed_ops_per_sec\": " << mixed_lt << ",\n"
        << "  \"cop_mixed_ops_per_sec\": " << mixed_cop << ",\n"
        << "  \"tm_mixed_ops_per_sec\": " << mixed_tm << "\n"
        << "}\n";
  }

  // Guard: an update must stay at ≤3 heap-backed pool blocks (flat
  // node + 2 bundle entries) — bound 3.25 to absorb amortized EBR
  // bin-vector growth in pass-through (sanitizer) builds — and
  // effectively 0 when the recycling pool is live (bundle entries
  // recycle through the same size-class lists as nodes).
  const double limit = pooled ? 1.0 : 3.25;
  for (const AllocStats& s : {lt, cop, tm}) {
    if (s.allocs_per_update > limit) {
      std::cerr << "FAILED: " << s.allocs_per_update
                << " allocations per update exceeds the " << limit
                << " bound\n";
      return 1;
    }
  }
  std::cout << "alloc-per-update guard passed (bound " << limit << ")\n";
  return 0;
}
