// Ablation: is the embedded bitwise trie worth it?
//
// The paper adopts the String-B-tree trie "to facilitate fast lookups
// when K is large" (§1.2). This microbenchmark compares in-node key ->
// index resolution via the trie against plain binary search on the
// sorted key array, across node sizes, plus the build cost updates pay.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "leaplist/leaplist.hpp"
#include "trie/bit_trie.hpp"
#include "util/random.hpp"

namespace {

using leap::trie::BitTrie;

std::vector<std::int64_t> make_keys(std::size_t count, std::uint64_t seed) {
  // Keys drawn the way leap-list nodes see them: a contiguous-ish range
  // slice (paper: keys 0..100000 over ~300-key nodes).
  leap::util::Xoshiro256 rng(seed);
  std::vector<std::int64_t> keys;
  std::int64_t next = static_cast<std::int64_t>(rng.next_below(1000));
  for (std::size_t i = 0; i < count; ++i) {
    next += 1 + static_cast<std::int64_t>(rng.next_below(5));
    keys.push_back(next);
  }
  return keys;
}

void BM_TrieGetIndex(benchmark::State& state) {
  const auto keys = make_keys(static_cast<std::size_t>(state.range(0)), 42);
  const BitTrie trie = BitTrie::build(keys);
  leap::util::Xoshiro256 rng(7);
  for (auto _ : state) {
    const auto probe = keys[rng.next_below(keys.size())];
    benchmark::DoNotOptimize(trie.get_index(keys, probe));
  }
}
BENCHMARK(BM_TrieGetIndex)
    ->Arg(16)
    ->Arg(64)
    ->Arg(150)
    ->Arg(300)
    ->Arg(1000)
    ->Arg(4096);

/// The shipped in-node search (PR 4): branchless lower_bound over the
/// flat key array — the competitor the trie must beat at some K for
/// the ROADMAP trie item to wire it in.
void BM_BranchlessGetIndex(benchmark::State& state) {
  const auto keys = make_keys(static_cast<std::size_t>(state.range(0)), 42);
  leap::util::Xoshiro256 rng(7);
  for (auto _ : state) {
    const auto probe = keys[rng.next_below(keys.size())];
    const std::size_t idx = leap::core::detail::flat_lower_bound(
        keys.data(), keys.size(), probe);
    const int index =
        (idx < keys.size() && keys[idx] == probe) ? static_cast<int>(idx)
                                                  : -1;
    benchmark::DoNotOptimize(index);
  }
}
BENCHMARK(BM_BranchlessGetIndex)
    ->Arg(16)
    ->Arg(64)
    ->Arg(150)
    ->Arg(300)
    ->Arg(1000)
    ->Arg(4096);

void BM_BinarySearchGetIndex(benchmark::State& state) {
  const auto keys = make_keys(static_cast<std::size_t>(state.range(0)), 42);
  leap::util::Xoshiro256 rng(7);
  for (auto _ : state) {
    const auto probe = keys[rng.next_below(keys.size())];
    const auto it = std::lower_bound(keys.begin(), keys.end(), probe);
    const int index =
        (it != keys.end() && *it == probe)
            ? static_cast<int>(it - keys.begin())
            : -1;
    benchmark::DoNotOptimize(index);
  }
}
BENCHMARK(BM_BinarySearchGetIndex)
    ->Arg(16)
    ->Arg(64)
    ->Arg(150)
    ->Arg(300)
    ->Arg(1000)
    ->Arg(4096);

void BM_TrieGetIndexMiss(benchmark::State& state) {
  const auto keys = make_keys(static_cast<std::size_t>(state.range(0)), 42);
  const BitTrie trie = BitTrie::build(keys);
  leap::util::Xoshiro256 rng(9);
  for (auto _ : state) {
    // Probes adjacent to present keys: worst case for the leaf compare.
    const auto probe = keys[rng.next_below(keys.size())] + 1;
    benchmark::DoNotOptimize(trie.get_index(keys, probe));
  }
}
BENCHMARK(BM_TrieGetIndexMiss)->Arg(300);

void BM_TrieBuild(benchmark::State& state) {
  const auto keys = make_keys(static_cast<std::size_t>(state.range(0)), 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BitTrie::build(keys));
  }
}
BENCHMARK(BM_TrieBuild)->Arg(16)->Arg(150)->Arg(300)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
